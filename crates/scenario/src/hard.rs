//! CNF-level hard instances for the SAT kernel, with verdicts known by
//! construction.
//!
//! * [`php_cnf`] — the propositional pigeonhole principle with pairwise
//!   at-most-one clauses: the classic exponentially-hard-for-resolution
//!   UNSAT family.
//! * [`pup_sat`] / [`pup_unsat`] — a Partner Units Problem-style family
//!   (arXiv:1308.6206): zones and sensors are placed on control units of
//!   capacity 2, a connected zone and sensor must share a unit or sit on
//!   partnered units, and each unit may partner with at most 2 others.
//!   The satisfiable generator plants a hidden placement and only emits
//!   zone–sensor edges consistent with it; the unsatisfiable generator
//!   requests more zones than the units can hold, an UNSAT-by-counting
//!   core with pairwise capacity clauses (pigeonhole-hard search).

use muppet_sat::{Lit, Solver, Var};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Expected;

/// A self-contained CNF instance: the clause list (for DIMACS export),
/// a pre-loaded solver, and the verdict it was constructed to have.
pub struct CnfInstance {
    /// Number of variables (DIMACS `p cnf` header count).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// The verdict by construction.
    pub expected: Expected,
}

impl CnfInstance {
    fn new(num_vars: usize, clauses: Vec<Vec<Lit>>, expected: Expected) -> CnfInstance {
        CnfInstance {
            num_vars,
            clauses,
            expected,
        }
    }

    /// A fresh solver loaded with the instance.
    pub fn solver(&self) -> Solver {
        let mut s = Solver::new();
        s.new_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// The instance in DIMACS CNF format.
    pub fn dimacs(&self) -> String {
        muppet_sat::write_dimacs(self.num_vars, &self.clauses)
    }
}

/// Tiny arena for allocating CNF variables without a solver.
struct VarPool {
    next: usize,
}

impl VarPool {
    fn new() -> VarPool {
        VarPool { next: 0 }
    }

    fn fresh(&mut self) -> Var {
        let v = Var::from_index(self.next);
        self.next += 1;
        v
    }

    fn fresh_n(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.fresh()).collect()
    }
}

/// Pigeonhole principle PHP(`pigeons`, `holes`) with pairwise
/// at-most-one hole clauses. UNSAT iff `pigeons > holes`.
pub fn php_cnf(pigeons: usize, holes: usize) -> CnfInstance {
    let mut pool = VarPool::new();
    let p: Vec<Vec<Var>> = (0..pigeons).map(|_| pool.fresh_n(holes)).collect();
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for row in &p {
        clauses.push(row.iter().map(|&v| Lit::pos(v)).collect());
    }
    for j in 0..holes {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                clauses.push(vec![Lit::neg(row1[j]), Lit::neg(row2[j])]);
            }
        }
    }
    let expected = if pigeons > holes {
        Expected::Unsat
    } else {
        Expected::Sat
    };
    CnfInstance::new(pool.next, clauses, expected)
}

/// At-most-one over `lits`, pairwise.
fn at_most_one(lits: &[Var], clauses: &mut Vec<Vec<Lit>>) {
    for (i, &a) in lits.iter().enumerate() {
        for &b in &lits[i + 1..] {
            clauses.push(vec![Lit::neg(a), Lit::neg(b)]);
        }
    }
}

/// At-most-two over `lits`, pairwise: forbid every triple. Keeps the
/// counting argument purely combinatorial (no counter ladders that
/// would give resolution a shortcut).
fn at_most_two(lits: &[Var], clauses: &mut Vec<Vec<Lit>>) {
    for i in 0..lits.len() {
        for j in i + 1..lits.len() {
            for k in j + 1..lits.len() {
                clauses.push(vec![Lit::neg(lits[i]), Lit::neg(lits[j]), Lit::neg(lits[k])]);
            }
        }
    }
}

/// A satisfiable PUP-style instance: `zones` zones (rounded down to
/// even) and as many sensors on `zones/2` units, `edges` zone–sensor
/// connections drawn consistently with a hidden placement (zone/sensor
/// `i` on unit `i/2`, units partnered in a ring). SAT by construction.
pub fn pup_sat(zones: usize, edges: usize, seed: u64) -> CnfInstance {
    let n = (zones.max(4) / 2) * 2; // even, ≥ 4
    let units = n / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = PupBuilder::new(n, n, units);
    // Hidden placement: zone/sensor i on unit i/2; partner ring.
    // Every emitted edge (z, s) satisfies unit(z) == unit(s) or the two
    // units are ring-adjacent, so the hidden placement is a model.
    for _ in 0..edges {
        let z = rng.random_range(0..n);
        let uz = z / 2;
        let us = match rng.random_range(0..3) {
            0 => uz,
            1 => (uz + 1) % units,
            _ => (uz + units - 1) % units,
        };
        let s = 2 * us + rng.random_range(0..2usize);
        builder.edge(z, s);
    }
    builder.finish(Expected::Sat)
}

/// An unsatisfiable PUP-style instance: `2 * units + 1` zones on
/// `units` units of capacity 2 — one zone more than the fleet can hold.
/// UNSAT by counting; the pairwise capacity encoding makes the
/// refutation pigeonhole-hard.
pub fn pup_unsat(units: usize) -> CnfInstance {
    let units = units.max(2);
    let builder = PupBuilder::new(2 * units + 1, 0, units);
    builder.finish(Expected::Unsat)
}

/// Shared PUP clause construction.
struct PupBuilder {
    zones: usize,
    sensors: usize,
    units: usize,
    /// x[z][u]: zone z on unit u.
    x: Vec<Vec<Var>>,
    /// y[s][u]: sensor s on unit u.
    y: Vec<Vec<Var>>,
    /// pr[a][b] for a < b: units a and b are partners.
    pr: Vec<Vec<Option<Var>>>,
    pool: VarPool,
    clauses: Vec<Vec<Lit>>,
}

impl PupBuilder {
    fn new(zones: usize, sensors: usize, units: usize) -> PupBuilder {
        let mut pool = VarPool::new();
        let x: Vec<Vec<Var>> = (0..zones).map(|_| pool.fresh_n(units)).collect();
        let y: Vec<Vec<Var>> = (0..sensors).map(|_| pool.fresh_n(units)).collect();
        let mut pr: Vec<Vec<Option<Var>>> = vec![vec![None; units]; units];
        // Indexed loops: each fresh var lands at two mirrored positions.
        #[allow(clippy::needless_range_loop)]
        for a in 0..units {
            for b in a + 1..units {
                let v = pool.fresh();
                pr[a][b] = Some(v);
                pr[b][a] = Some(v);
            }
        }
        PupBuilder {
            zones,
            sensors,
            units,
            x,
            y,
            pr,
            pool,
            clauses: Vec::new(),
        }
    }

    /// Connect zone `z` to sensor `s`: they must share a unit or sit on
    /// partnered units.
    fn edge(&mut self, z: usize, s: usize) {
        for u in 0..self.units {
            for w in 0..self.units {
                if u == w {
                    continue;
                }
                let partners = self.pr[u][w].expect("u != w");
                self.clauses.push(vec![
                    Lit::neg(self.x[z][u]),
                    Lit::neg(self.y[s][w]),
                    Lit::pos(partners),
                ]);
            }
        }
    }

    fn finish(mut self, expected: Expected) -> CnfInstance {
        // Placement: each zone/sensor on exactly one unit.
        for row in self.x.iter().chain(self.y.iter()) {
            self.clauses.push(row.iter().map(|&v| Lit::pos(v)).collect());
            at_most_one(row, &mut self.clauses);
        }
        // Unit capacity: at most 2 zones and 2 sensors per unit.
        for u in 0..self.units {
            let zs: Vec<Var> = (0..self.zones).map(|z| self.x[z][u]).collect();
            at_most_two(&zs, &mut self.clauses);
            let ss: Vec<Var> = (0..self.sensors).map(|s| self.y[s][u]).collect();
            at_most_two(&ss, &mut self.clauses);
        }
        // Inter-unit capacity: at most 2 partners per unit.
        for u in 0..self.units {
            let ps: Vec<Var> = (0..self.units)
                .filter(|&w| w != u)
                .map(|w| self.pr[u][w].expect("off-diagonal"))
                .collect();
            at_most_two(&ps, &mut self.clauses);
        }
        CnfInstance::new(self.pool.next, self.clauses, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_sat::SolveResult;

    fn verdict(inst: &CnfInstance) -> Expected {
        match inst.solver().solve() {
            SolveResult::Sat(_) => Expected::Sat,
            SolveResult::Unsat(_) => Expected::Unsat,
            SolveResult::Unknown => panic!("unbudgeted solve cannot be unknown"),
        }
    }

    #[test]
    fn php_labels_hold() {
        for (p, h) in [(5usize, 4usize), (4, 4), (8, 7)] {
            let inst = php_cnf(p, h);
            assert_eq!(verdict(&inst), inst.expected, "PHP({p},{h})");
        }
    }

    #[test]
    fn pup_sat_label_holds() {
        let inst = pup_sat(12, 30, 7);
        assert_eq!(verdict(&inst), Expected::Sat);
        assert_eq!(inst.expected, Expected::Sat);
    }

    #[test]
    fn pup_unsat_label_holds() {
        let inst = pup_unsat(4);
        assert_eq!(verdict(&inst), Expected::Unsat);
        assert_eq!(inst.expected, Expected::Unsat);
    }

    #[test]
    fn pup_is_deterministic() {
        let a = pup_sat(16, 40, 3);
        let b = pup_sat(16, 40, 3);
        assert_eq!(a.num_vars, b.num_vars);
        assert_eq!(a.clauses, b.clauses);
        assert_eq!(a.dimacs(), b.dimacs());
    }

    #[test]
    fn dimacs_roundtrips() {
        let inst = php_cnf(4, 3);
        let parsed = muppet_sat::parse_dimacs(&inst.dimacs()).expect("own emission parses");
        assert_eq!(parsed.num_vars, inst.num_vars);
        assert_eq!(parsed.clauses.len(), inst.clauses.len());
    }
}
