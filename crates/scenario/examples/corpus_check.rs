//! Validate committed corpus labels against the solver, with timings.
//!
//! ```text
//! cargo run --release -p muppet-scenario --example corpus_check [tier ...]
//! ```
//!
//! Defaults to every tier. The harness S1 lane and the integration tests
//! do this with gating; this example is the manual/debug entry point.

use std::time::Instant;

use muppet_scenario::corpus::{self, Tier};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiers: Vec<Tier> = if args.is_empty() {
        vec![Tier::Smoke, Tier::Paper, Tier::Large, Tier::Hard]
    } else {
        args.iter()
            .map(|a| Tier::parse(a).unwrap_or_else(|| panic!("unknown tier {a:?}")))
            .collect()
    };
    let mut failures = 0usize;
    for tier in tiers {
        for entry in corpus::entries(tier) {
            let start = Instant::now();
            let got = corpus::solver_verdict(entry);
            let ms = start.elapsed().as_millis();
            let ok = got == entry.expected;
            if !ok {
                failures += 1;
            }
            println!(
                "{:5} {:18} expected={:5} got={:5} {:>8} ms  {}",
                tier.name(),
                entry.name,
                entry.expected.label(),
                got.label(),
                ms,
                if ok { "ok" } else { "MISMATCH" },
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} label mismatch(es)");
        std::process::exit(1);
    }
}
