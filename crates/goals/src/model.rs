//! Goal row types and their CSV readers.

use std::fmt;

use muppet_mesh::{Action, Selector};

use crate::csv::parse_csv;

/// Errors from goal-file parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoalParseError {
    /// Description, including the offending row.
    pub message: String,
}

impl fmt::Display for GoalParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "goal parse error: {}", self.message)
    }
}

impl std::error::Error for GoalParseError {}

fn err(msg: impl Into<String>) -> GoalParseError {
    GoalParseError {
        message: msg.into(),
    }
}

/// A K8s administrator goal row (Fig. 2): `port, perm, selector`.
///
/// * `DENY`: no flow to `port` may reach any selected destination.
/// * `ALLOW`: every selected destination listening on `port` must be
///   reachable on it from every service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct K8sGoal {
    /// The destination port the goal constrains.
    pub port: u16,
    /// Deny or allow.
    pub perm: Action,
    /// Which destination services the goal covers.
    pub selector: Selector,
}

impl K8sGoal {
    /// Parse a `port, perm, selector` CSV document (header optional).
    pub fn parse_csv(input: &str) -> Result<Vec<K8sGoal>, GoalParseError> {
        let records = parse_csv(input).map_err(err)?;
        let mut out = Vec::new();
        for rec in records {
            if rec.len() != 3 {
                return Err(err(format!(
                    "K8s goal rows need 3 fields (port, perm, selector), got {rec:?}"
                )));
            }
            if rec[0].eq_ignore_ascii_case("port") {
                continue; // header
            }
            let port: u16 = rec[0]
                .parse()
                .map_err(|_| err(format!("bad port {:?}", rec[0])))?;
            let perm = match rec[1].to_ascii_uppercase().as_str() {
                "DENY" => Action::Deny,
                "ALLOW" => Action::Allow,
                other => return Err(err(format!("bad perm {other:?}"))),
            };
            let selector = parse_goal_selector(&rec[2]);
            out.push(K8sGoal {
                port,
                perm,
                selector,
            });
        }
        Ok(out)
    }
}

/// A selector in a goal file: `*` (all), `ns=payments` (namespace),
/// `key=value` (label), or a bare service name.
fn parse_goal_selector(field: &str) -> Selector {
    if field == "*" || field.is_empty() {
        Selector::All
    } else if let Some((k, v)) = field.split_once('=') {
        let k = k.trim();
        let v = v.trim();
        if k == "ns" || k == "namespace" {
            Selector::Namespace(v.to_string())
        } else {
            Selector::label(k, v)
        }
    } else {
        Selector::Name(field.to_string())
    }
}

/// A port cell in an Istio goal row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortSpec {
    /// A concrete port.
    Port(u16),
    /// A named existential variable (`?w` / `∃w`); equal names must take
    /// equal values across rows (Fig. 4).
    Var(String),
    /// Fully flexible (`*`): any value, chosen independently.
    Any,
}

impl PortSpec {
    fn parse(field: &str) -> Result<PortSpec, GoalParseError> {
        if field == "*" {
            return Ok(PortSpec::Any);
        }
        if let Some(name) = field
            .strip_prefix('?')
            .or_else(|| field.strip_prefix('∃'))
            .or_else(|| field.strip_prefix('E').filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric())))
        {
            if name.is_empty() {
                return Err(err("existential port variable needs a name, e.g. ?w"));
            }
            return Ok(PortSpec::Var(name.to_string()));
        }
        field
            .parse::<u16>()
            .map(PortSpec::Port)
            .map_err(|_| err(format!("bad port spec {field:?}")))
    }

    /// The variable name, if this is a variable.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            PortSpec::Var(n) => Some(n),
            _ => None,
        }
    }
}

/// An Istio administrator goal row (Figs. 3–4):
/// `srcService, dstService, srcPort, dstPort` — the source must be able
/// to reach the destination with the given ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IstioGoal {
    /// Source service name.
    pub src: String,
    /// Destination service name.
    pub dst: String,
    /// Source-port cell. Recorded and bound, but the modeled policy
    /// subsets never constrain source ports (mirroring the real systems),
    /// so it does not affect satisfiability on its own.
    pub src_port: PortSpec,
    /// Destination-port cell.
    pub dst_port: PortSpec,
}

impl IstioGoal {
    /// Parse a `srcService, dstService, srcPort, dstPort` CSV document.
    pub fn parse_csv(input: &str) -> Result<Vec<IstioGoal>, GoalParseError> {
        let records = parse_csv(input).map_err(err)?;
        let mut out = Vec::new();
        for rec in records {
            if rec.len() != 4 {
                return Err(err(format!(
                    "Istio goal rows need 4 fields (src, dst, srcPort, dstPort), got {rec:?}"
                )));
            }
            if rec[0].eq_ignore_ascii_case("srcservice")
                || rec[0].eq_ignore_ascii_case("src")
                || rec[2].eq_ignore_ascii_case("srcport")
            {
                continue; // header
            }
            out.push(IstioGoal {
                src: rec[0].clone(),
                dst: rec[1].clone(),
                src_port: PortSpec::parse(&rec[2])?,
                dst_port: PortSpec::parse(&rec[3])?,
            });
        }
        Ok(out)
    }

    /// The paper's Fig. 3 goal table.
    pub fn fig3() -> Vec<IstioGoal> {
        IstioGoal::parse_csv(
            "srcService,dstService,srcPort,dstPort\n\
             test-frontend,test-backend,24,25\n\
             test-backend,test-frontend,26,23\n\
             test-backend,test-db,14000,16000\n\
             test-db,test-backend,10000,12000\n",
        )
        .expect("fig3 table parses")
    }

    /// The paper's Fig. 4 revised (relaxed) goal table.
    pub fn fig4() -> Vec<IstioGoal> {
        IstioGoal::parse_csv(
            "srcService,dstService,srcPort,dstPort\n\
             test-frontend,test-backend,?w,?x\n\
             test-backend,test-frontend,?y,?z\n\
             test-backend,test-db,14000,16000\n\
             test-db,test-backend,10000,12000\n",
        )
        .expect("fig4 table parses")
    }
}

/// The paper's Fig. 2 K8s goal table.
pub fn fig2() -> Vec<K8sGoal> {
    K8sGoal::parse_csv("port,perm,selector\n23,DENY,*\n").expect("fig2 table parses")
}

/// Render K8s goal rows as the CSV table [`K8sGoal::parse_csv`] reads
/// (`port,perm,selector` header) — the serialization dual, kept next
/// to the parser so the row grammar lives in one crate.
pub fn k8s_goals_csv(goals: &[K8sGoal]) -> String {
    let mut k8s = String::from("port,perm,selector\n");
    for g in goals {
        let perm = match g.perm {
            Action::Deny => "DENY",
            Action::Allow => "ALLOW",
        };
        let sel = match &g.selector {
            Selector::All => "*".to_string(),
            Selector::Namespace(ns) => format!("ns={ns}"),
            Selector::Name(n) => n.clone(),
            Selector::Labels(pairs) => pairs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .next()
                .unwrap_or_else(|| "*".to_string()),
        };
        k8s.push_str(&format!("{},{},{}\n", g.port, perm, sel));
    }
    k8s
}

/// Render Istio goal rows as the CSV table [`IstioGoal::parse_csv`]
/// reads (`srcService,dstService,srcPort,dstPort` header).
pub fn istio_goals_csv(goals: &[IstioGoal]) -> String {
    let mut istio = String::from("srcService,dstService,srcPort,dstPort\n");
    let cell = |p: &PortSpec| match p {
        PortSpec::Port(n) => n.to_string(),
        PortSpec::Var(name) => format!("?{name}"),
        PortSpec::Any => "*".to_string(),
    };
    for g in goals {
        istio.push_str(&format!(
            "{},{},{},{}\n",
            g.src,
            g.dst,
            cell(&g.src_port),
            cell(&g.dst_port)
        ));
    }
    istio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_parses() {
        let goals = fig2();
        assert_eq!(goals.len(), 1);
        assert_eq!(goals[0].port, 23);
        assert_eq!(goals[0].perm, Action::Deny);
        assert!(matches!(goals[0].selector, Selector::All));
    }

    #[test]
    fn fig3_parses() {
        let goals = IstioGoal::fig3();
        assert_eq!(goals.len(), 4);
        assert_eq!(goals[1].src, "test-backend");
        assert_eq!(goals[1].dst, "test-frontend");
        assert_eq!(goals[1].src_port, PortSpec::Port(26));
        assert_eq!(goals[1].dst_port, PortSpec::Port(23));
    }

    #[test]
    fn fig4_has_existential_vars() {
        let goals = IstioGoal::fig4();
        assert_eq!(goals[0].src_port, PortSpec::Var("w".into()));
        assert_eq!(goals[0].dst_port, PortSpec::Var("x".into()));
        assert_eq!(goals[1].dst_port, PortSpec::Var("z".into()));
        assert_eq!(goals[2].dst_port, PortSpec::Port(16000));
    }

    #[test]
    fn selectors_in_goal_files() {
        let goals =
            K8sGoal::parse_csv("80,ALLOW,app=web\n81,DENY,test-db\n82,DENY,ns=payments\n")
                .unwrap();
        assert_eq!(goals[0].selector, Selector::label("app", "web"));
        assert_eq!(goals[1].selector, Selector::Name("test-db".into()));
        assert_eq!(goals[2].selector, Selector::Namespace("payments".into()));
        assert_eq!(goals[0].perm, Action::Allow);
    }

    #[test]
    fn port_spec_variants() {
        assert_eq!(PortSpec::parse("25").unwrap(), PortSpec::Port(25));
        assert_eq!(PortSpec::parse("*").unwrap(), PortSpec::Any);
        assert_eq!(PortSpec::parse("?w").unwrap(), PortSpec::Var("w".into()));
        assert_eq!(PortSpec::parse("∃x").unwrap(), PortSpec::Var("x".into()));
        assert_eq!(PortSpec::parse("Ey").unwrap(), PortSpec::Var("y".into()));
        assert!(PortSpec::parse("?").is_err());
        assert!(PortSpec::parse("notaport").is_err());
        assert!(PortSpec::parse("70000").is_err());
        assert_eq!(PortSpec::Var("w".into()).var_name(), Some("w"));
        assert_eq!(PortSpec::Any.var_name(), None);
    }

    #[test]
    fn bad_rows_are_rejected() {
        assert!(K8sGoal::parse_csv("23,DENY\n").is_err());
        assert!(K8sGoal::parse_csv("x,DENY,*\n").is_err());
        assert!(K8sGoal::parse_csv("23,AUDIT,*\n").is_err());
        assert!(IstioGoal::parse_csv("a,b,1\n").is_err());
        assert!(IstioGoal::parse_csv("a,b,1,bad\n").is_err());
    }
}
