//! A small CSV reader: comma separation, optional double quotes,
//! whitespace-tolerant, `#` comment lines. Sufficient for goal tables.

/// One parsed record (row) of fields.
pub type Record = Vec<String>;

/// Parse CSV text into records. Empty lines and lines starting with `#`
/// are skipped. Fields are trimmed unless quoted.
pub fn parse_csv(input: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {}", ln + 1, e))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Record, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    loop {
        match chars.next() {
            None => {
                fields.push(finish(cur, quoted));
                return Ok(fields);
            }
            Some('"') if cur.trim().is_empty() && !quoted => {
                // Opening quote (only at field start).
                cur.clear();
                quoted = true;
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cur.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cur.push(c),
                        None => return Err("unterminated quoted field".into()),
                    }
                }
            }
            Some(',') => {
                fields.push(finish(std::mem::take(&mut cur), quoted));
                quoted = false;
            }
            Some(c) => {
                if quoted {
                    // Only whitespace may follow a closing quote.
                    if !c.is_whitespace() {
                        return Err("characters after closing quote".into());
                    }
                } else {
                    cur.push(c);
                }
            }
        }
    }
}

fn finish(cur: String, quoted: bool) -> String {
    if quoted {
        cur
    } else {
        cur.trim().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rows_with_trimming_and_comments() {
        let recs = parse_csv("# goals\nport, perm, selector\n23, DENY, *\n\n24,ALLOW,web\n")
            .unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], vec!["port", "perm", "selector"]);
        assert_eq!(recs[1], vec!["23", "DENY", "*"]);
        assert_eq!(recs[2], vec!["24", "ALLOW", "web"]);
    }

    #[test]
    fn quoted_fields_preserve_commas_and_quotes() {
        let recs = parse_csv("\"a,b\",\"say \"\"hi\"\"\",plain\n").unwrap();
        assert_eq!(recs[0], vec!["a,b", "say \"hi\"", "plain"]);
    }

    #[test]
    fn empty_fields() {
        let recs = parse_csv("a,,c\n").unwrap();
        assert_eq!(recs[0], vec!["a", "", "c"]);
    }

    #[test]
    fn errors() {
        assert!(parse_csv("\"unterminated\n").is_err());
        assert!(parse_csv("\"x\" y,z\n").is_err());
    }
}
