//! # muppet-goals — the administrator goal language
//!
//! "Administrators specify these goals as CSV files" (Sec. 3). This crate
//! implements both goal tables:
//!
//! * **K8s goals** (Fig. 2): `port, perm, selector` rows — e.g.
//!   `23, DENY, *` bans traffic to port 23 for all services.
//! * **Istio goals** (Figs. 3–4): `srcService, dstService, srcPort,
//!   dstPort` reachability rows. Ports may be concrete (`25`), fully
//!   flexible (`*`), or *named existential variables* (`?w`, rendered
//!   `∃w` in the paper) — "the variables capturing which must be the
//!   same" across rows (Fig. 4).
//!
//! Each goal row is translated "by the system, not the administrator"
//! (Sec. 4) into a bounded first-order formula over **both** parties'
//! configuration relations, via the mesh semantics in
//! [`muppet_mesh::MeshVocab::allowed_formula`]. Rows become named
//! `muppet_solver::FormulaGroup`-style pairs so that unsat cores blame
//! specific rows; rows that share an existential variable are merged into
//! one group (their meaning is coupled).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod model;
mod translate;

pub use model::{
    fig2, istio_goals_csv, k8s_goals_csv, GoalParseError, IstioGoal, K8sGoal, PortSpec,
};
pub use translate::{collect_goal_ports, translate_istio_goals, translate_k8s_goals, NamedFormula};
