//! Goal-to-formula translation (the "substitution using a formalization
//! of network and authorization policy semantics" of Sec. 4.3).

use std::collections::{BTreeMap, BTreeSet};

use muppet_logic::{simplify, Formula, Term, VarId};
use muppet_mesh::{Action, MeshVocab};

use crate::model::{GoalParseError, IstioGoal, K8sGoal, PortSpec};

/// A named formula: the unit of blame in solver queries. The name is the
/// goal row it came from (e.g. `"k8s goal 1: DENY port 23"`).
#[derive(Clone, Debug)]
pub struct NamedFormula {
    /// Display name.
    pub name: String,
    /// The translated formula (closed).
    pub formula: Formula,
    /// Human-readable names for any quantified variables introduced,
    /// for pretty-printing.
    pub var_names: Vec<(VarId, String)>,
}

impl From<NamedFormula> for muppet::NamedGoal {
    fn from(nf: NamedFormula) -> muppet::NamedGoal {
        muppet::NamedGoal {
            name: nf.name,
            formula: nf.formula,
            var_names: nf.var_names,
            hard: true,
        }
    }
}

/// Every concrete port mentioned in the goal tables — callers must put
/// these in the [`MeshVocab`] port universe.
pub fn collect_goal_ports(k8s: &[K8sGoal], istio: &[IstioGoal]) -> BTreeSet<u16> {
    let mut out = BTreeSet::new();
    for g in k8s {
        out.insert(g.port);
    }
    for g in istio {
        for spec in [&g.src_port, &g.dst_port] {
            if let PortSpec::Port(p) = spec {
                out.insert(*p);
            }
        }
    }
    out
}

/// Translate K8s goal rows. Each row becomes one named formula:
///
/// * `DENY p sel`: `∀ src, dst · sel(dst) ⇒ ¬allowed(src, dst, p)`
/// * `ALLOW p sel`: `∀ src, dst · (sel(dst) ∧ listens(dst, p) ∧ src ≠ dst)
///   ⇒ allowed(src, dst, p)`
///
/// Selectors are expanded against the mesh (they are structure, not
/// configuration), so the emitted formula quantifies only over services.
pub fn translate_k8s_goals(
    goals: &[K8sGoal],
    mv: &MeshVocab,
    vocab: &mut muppet_logic::Vocabulary,
) -> Result<Vec<NamedFormula>, GoalParseError> {
    let mut out = Vec::new();
    for (i, g) in goals.iter().enumerate() {
        let port_atom = mv.port_atom(g.port).ok_or_else(|| GoalParseError {
            message: format!("goal port {} missing from the port universe", g.port),
        })?;
        let src = vocab.fresh_var();
        let dst = vocab.fresh_var();
        // Expand the selector over the mesh: the set of covered dsts.
        let covered: Vec<_> = mv
            .mesh()
            .select(&g.selector)
            .iter()
            .map(|s| mv.svc_atom(&s.name).expect("mesh services have atoms"))
            .collect();
        let all_covered = covered.len() == mv.mesh().services().len();
        // Build the per-destination body with `dst` either a quantified
        // variable (selector covers everything — keeps the Fig. 5
        // `all dst: Service` shape) or each covered constant.
        let body_for = |dst_term: Term| match g.perm {
            Action::Deny => Formula::not(mv.allowed_formula(
                Term::Var(src),
                dst_term,
                Term::Const(port_atom),
            )),
            Action::Allow => Formula::implies(
                Formula::and([
                    Formula::pred(mv.listens, [dst_term, Term::Const(port_atom)]),
                    Formula::not(Formula::Eq(Term::Var(src), dst_term)),
                ]),
                mv.allowed_formula(Term::Var(src), dst_term, Term::Const(port_atom)),
            ),
        };
        let quantified = if all_covered {
            Formula::forall(
                src,
                mv.svc_sort,
                Formula::forall(dst, mv.svc_sort, body_for(Term::Var(dst))),
            )
        } else {
            Formula::and(
                covered
                    .iter()
                    .map(|&d| Formula::forall(src, mv.svc_sort, body_for(Term::Const(d))))
                    .collect::<Vec<_>>(),
            )
        };
        let formula = simplify(&quantified);
        let perm = match g.perm {
            Action::Deny => "DENY",
            Action::Allow => "ALLOW",
        };
        out.push(NamedFormula {
            name: format!("k8s goal {}: {} port {}", i + 1, perm, g.port),
            formula,
            var_names: vec![(src, "src".to_string()), (dst, "dst".to_string())],
        });
    }
    Ok(out)
}

/// Translate Istio goal rows.
///
/// Each row `src, dst, sp, dp` asserts reachability:
/// `∃ (vars) · allowed(src, dst, dp)` — with concrete ports used
/// directly, `*` cells given fresh private variables, and named `?v`
/// cells sharing one variable per name *across the whole table* (Fig. 4:
/// "the variables capturing which must be the same"). Rows connected by
/// a shared variable are merged into one named formula, because their
/// truth is coupled; independent rows stay separate for precise blame.
pub fn translate_istio_goals(
    goals: &[IstioGoal],
    mv: &MeshVocab,
    vocab: &mut muppet_logic::Vocabulary,
) -> Result<Vec<NamedFormula>, GoalParseError> {
    // Union-find-lite over rows sharing variable names.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut var_owner: BTreeMap<String, usize> = BTreeMap::new();
    let mut row_group: Vec<usize> = Vec::with_capacity(goals.len());
    for (i, g) in goals.iter().enumerate() {
        let names: Vec<&str> = [&g.src_port, &g.dst_port]
            .into_iter()
            .filter_map(PortSpec::var_name)
            .collect();
        let mut target: Option<usize> = None;
        for n in &names {
            if let Some(&gidx) = var_owner.get(*n) {
                target = Some(match target {
                    Some(t) if t != gidx => {
                        // Merge gidx into t.
                        let moved = std::mem::take(&mut groups[gidx]);
                        for &r in &moved {
                            row_group[r] = t;
                        }
                        groups[t].extend(moved);
                        for owner in var_owner.values_mut() {
                            if *owner == gidx {
                                *owner = t;
                            }
                        }
                        t
                    }
                    Some(t) => t,
                    None => gidx,
                });
            }
        }
        let gidx = match target {
            Some(t) => t,
            None => {
                groups.push(Vec::new());
                groups.len() - 1
            }
        };
        groups[gidx].push(i);
        row_group.push(gidx);
        for n in names {
            var_owner.insert(n.to_string(), gidx);
        }
    }

    let mut out = Vec::new();
    for rows in groups.iter().filter(|g| !g.is_empty()) {
        let mut vars: BTreeMap<String, VarId> = BTreeMap::new();
        let mut var_names = Vec::new();
        let mut order: Vec<VarId> = Vec::new();
        let mut conjuncts = Vec::new();
        for &i in rows {
            let g = &goals[i];
            let src_atom = mv.svc_atom(&g.src).ok_or_else(|| GoalParseError {
                message: format!("unknown source service {:?}", g.src),
            })?;
            let dst_atom = mv.svc_atom(&g.dst).ok_or_else(|| GoalParseError {
                message: format!("unknown destination service {:?}", g.dst),
            })?;
            // Bind both port cells (src ports bind but do not constrain).
            let mut bind = |spec: &PortSpec,
                            label: &str|
             -> Result<Term, GoalParseError> {
                match spec {
                    PortSpec::Port(p) => {
                        let atom = mv.port_atom(*p).ok_or_else(|| GoalParseError {
                            message: format!("goal port {p} missing from the port universe"),
                        })?;
                        Ok(Term::Const(atom))
                    }
                    PortSpec::Var(name) => {
                        let v = *vars.entry(name.clone()).or_insert_with(|| {
                            let v = vocab.fresh_var();
                            order.push(v);
                            var_names.push((v, name.clone()));
                            v
                        });
                        Ok(Term::Var(v))
                    }
                    PortSpec::Any => {
                        let v = vocab.fresh_var();
                        order.push(v);
                        var_names.push((v, format!("any_{label}_{i}")));
                        Ok(Term::Var(v))
                    }
                }
            };
            let _sp = bind(&g.src_port, "sp")?;
            let dp = bind(&g.dst_port, "dp")?;
            conjuncts.push(mv.allowed_formula(
                Term::Const(src_atom),
                Term::Const(dst_atom),
                dp,
            ));
        }
        let mut formula = Formula::and(conjuncts);
        for v in order.into_iter().rev() {
            formula = Formula::exists(v, mv.port_sort, formula);
        }
        let formula = simplify(&formula);
        let name = if rows.len() == 1 {
            let g = &goals[rows[0]];
            format!(
                "istio goal {}: {} -> {} ({})",
                rows[0] + 1,
                g.src,
                g.dst,
                describe_port(&g.dst_port)
            )
        } else {
            format!(
                "istio goals {} (coupled by shared port variables)",
                rows.iter()
                    .map(|i| (i + 1).to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            )
        };
        out.push(NamedFormula {
            name,
            formula,
            var_names,
        });
    }
    Ok(out)
}

fn describe_port(spec: &PortSpec) -> String {
    match spec {
        PortSpec::Port(p) => format!("port {p}"),
        PortSpec::Var(v) => format!("port ∃{v}"),
        PortSpec::Any => "any port".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig2;
    use muppet_logic::evaluate_closed;
    use muppet_mesh::NetworkPolicy;

    fn mv() -> MeshVocab {
        MeshVocab::paper_example()
    }

    #[test]
    fn k8s_deny_goal_holds_iff_ban_deployed() {
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = translate_k8s_goals(&fig2(), &mv, &mut vocab).unwrap();
        assert_eq!(goals.len(), 1);
        let f = &goals[0].formula;
        // Open mesh: backend can reach frontend:23, so the DENY goal fails.
        let st = mv.structure_instance();
        assert!(!evaluate_closed(f, &st, &mv.universe).unwrap());
        // With the ban compiled in, the goal holds.
        let ban = mv
            .compile_k8s(&[NetworkPolicy::deny_port_for_all("ban", 23)])
            .unwrap();
        assert!(evaluate_closed(f, &st.union(&ban), &mv.universe).unwrap());
    }

    #[test]
    fn istio_fig3_goals_hold_on_open_mesh() {
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = translate_istio_goals(&IstioGoal::fig3(), &mv, &mut vocab).unwrap();
        assert_eq!(goals.len(), 4); // no shared vars: one group per row
        let st = mv.structure_instance();
        for g in &goals {
            assert!(
                evaluate_closed(&g.formula, &st, &mv.universe).unwrap(),
                "goal {} should hold on the open mesh",
                g.name
            );
        }
    }

    #[test]
    fn fig3_goal2_fails_under_port_ban() {
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = translate_istio_goals(&IstioGoal::fig3(), &mv, &mut vocab).unwrap();
        let st = mv.structure_instance();
        let ban = mv
            .compile_k8s(&[NetworkPolicy::deny_port_for_all("ban", 23)])
            .unwrap();
        let combined = st.union(&ban);
        let results: Vec<bool> = goals
            .iter()
            .map(|g| evaluate_closed(&g.formula, &combined, &mv.universe).unwrap())
            .collect();
        // Only the backend → frontend:23 goal (row 2) breaks.
        assert_eq!(results, vec![true, false, true, true]);
    }

    #[test]
    fn fig4_relaxed_goals_survive_port_ban() {
        // The existential port variables let the backend → frontend goal
        // be met on a different port... but only if frontend listens on
        // one. Frontend only listens on 23 in the paper mesh, so the ∃
        // must range over ports where `listens` can hold — with structure
        // fixed, the goal is *not* satisfiable by evaluation alone, which
        // is exactly why Fig. 4 relaxation needs the synthesizer to pick
        // ports harmonious with both sides. Here we check the formula
        // shape: rows 1–2 have existential quantifiers.
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = translate_istio_goals(&IstioGoal::fig4(), &mv, &mut vocab).unwrap();
        assert_eq!(goals.len(), 4);
        let quantified = goals
            .iter()
            .filter(|g| matches!(g.formula, Formula::Exists(_, _, _)))
            .count();
        assert_eq!(quantified, 2);
    }

    #[test]
    fn shared_variables_couple_rows() {
        let rows = IstioGoal::parse_csv(
            "srcService,dstService,srcPort,dstPort\n\
             test-frontend,test-backend,*,?p\n\
             test-backend,test-db,*,?p\n\
             test-db,test-backend,*,12000\n",
        )
        .unwrap();
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = translate_istio_goals(&rows, &mv, &mut vocab).unwrap();
        // Rows 1 and 2 share ?p: merged; row 3 separate.
        assert_eq!(goals.len(), 2);
        assert!(goals.iter().any(|g| g.name.contains("1+2")));
    }

    #[test]
    fn transitive_variable_sharing_merges_groups() {
        let rows = IstioGoal::parse_csv(
            "srcService,dstService,srcPort,dstPort\n\
             test-frontend,test-backend,?a,?b\n\
             test-backend,test-db,?c,?a\n\
             test-db,test-backend,?b,?c\n",
        )
        .unwrap();
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = translate_istio_goals(&rows, &mv, &mut vocab).unwrap();
        assert_eq!(goals.len(), 1);
    }

    #[test]
    fn unknown_services_and_ports_are_errors() {
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let rows = IstioGoal::parse_csv("ghost,test-db,1,16000\n").unwrap();
        assert!(translate_istio_goals(&rows, &mv, &mut vocab).is_err());
        let rows = IstioGoal::parse_csv("test-db,test-backend,1,40000\n").unwrap();
        assert!(translate_istio_goals(&rows, &mv, &mut vocab).is_err());
        let bad_port_goal = K8sGoal::parse_csv("40000,DENY,*\n").unwrap();
        assert!(translate_k8s_goals(&bad_port_goal, &mv, &mut vocab).is_err());
    }

    #[test]
    fn goal_ports_collector() {
        let k8s = fig2();
        let istio = IstioGoal::fig4();
        let ports = collect_goal_ports(&k8s, &istio);
        assert!(ports.contains(&23));
        assert!(ports.contains(&16000));
        assert!(ports.contains(&10000));
        assert!(!ports.contains(&24)); // fig4 replaced 24 with ?w
    }

    #[test]
    fn k8s_allow_goal_semantics() {
        // ALLOW 25 on test-backend: every other service must reach
        // backend:25.
        let mv = mv();
        let mut vocab = mv.vocab.clone();
        let goals = K8sGoal::parse_csv("25,ALLOW,test-backend\n").unwrap();
        let named = translate_k8s_goals(&goals, &mv, &mut vocab).unwrap();
        let st = mv.structure_instance();
        assert!(evaluate_closed(&named[0].formula, &st, &mv.universe).unwrap());
        // An Istio egress lockdown on the frontend breaks it.
        let lockdown = mv
            .compile_istio(&[muppet_mesh::AuthorizationPolicy {
                name: "fe-lockdown".into(),
                selector: muppet_mesh::Selector::Name("test-frontend".into()),
                direction: muppet_mesh::Direction::Egress,
                action: muppet_mesh::Action::Allow,
                rules: vec![], // allow nothing
            }])
            .unwrap();
        assert!(
            !evaluate_closed(&named[0].formula, &st.union(&lockdown), &mv.universe).unwrap()
        );
    }
}
