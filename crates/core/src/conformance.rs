//! The solver-aided conformance workflow (Fig. 7).
//!
//! "A central provider's settings override all others' goals, so tenants
//! must work around these inflexible demands." The provider states its
//! goals and (partial) configuration once; the system checks local
//! consistency (Alg. 1), computes the envelope (Alg. 3) — which "need
//! never be recomputed" — and each tenant then configures against it,
//! with Fig. 8's solver aid (synthesis, envelope checking, minimal-edit
//! counter-offers) on their side.

use muppet_logic::{Domain, Instance, PartyId};
use muppet_solver::{Outcome, PartialResult, PreparedStore};

use crate::envelope::Envelope;
use crate::session::{MuppetError, Session};

/// Fig. 8 counter-offer helper: the minimal-edit distance from `target`
/// to the nearest envelope-satisfying configuration. Degrades: when the
/// query budget runs out mid-search, the best-so-far (possibly
/// non-minimal) edit distance is reported instead of nothing.
fn counter_offer_distance(
    (outcome, dist): (Outcome, usize),
    tname: &str,
    log: &mut Vec<String>,
) -> Option<usize> {
    match outcome {
        Outcome::Sat { .. } => {
            log.push(format!(
                "{tname}: nearest envelope-satisfying config is {dist} edit(s) away"
            ));
            Some(dist)
        }
        Outcome::Unknown {
            partial: Some(PartialResult::Model { distance, .. }),
            phase,
            ..
        } => {
            log.push(format!(
                "{tname}: budget exhausted at phase {phase} while minimizing; \
                 an envelope-satisfying config exists within {distance} edit(s)"
            ));
            Some(distance)
        }
        Outcome::Unknown { phase, .. } => {
            log.push(format!(
                "{tname}: budget exhausted at phase {phase}; no counter-offer"
            ));
            None
        }
        Outcome::Unsat { .. } => None,
    }
}

/// What happened in one conformance run.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Was the provider's own offer consistent with its goals (Alg. 1)?
    pub provider_consistent: bool,
    /// The provider's fixed configuration (the Alg. 1 witness).
    pub provider_config: Option<Instance>,
    /// The envelope sent to the tenant.
    pub envelope: Option<Envelope>,
    /// Did the tenant find a conforming configuration?
    pub success: bool,
    /// The tenant's synthesized configuration on success.
    pub tenant_config: Option<Instance>,
    /// On failure: blame (group names from the tenant-side query).
    pub blame: Vec<String>,
    /// On failure: the minimal-edit counter-offer distance, if one
    /// exists (how far the tenant's preferred config is from the nearest
    /// envelope-satisfying one).
    pub counter_offer_distance: Option<usize>,
    /// Human-readable log of the workflow steps.
    pub log: Vec<String>,
}

/// Run the Fig. 7 conformance workflow: `provider` computes an envelope
/// once; `tenant` synthesizes against it. `tenant_preferred` (if any) is
/// the tenant's current configuration, used as the target for
/// minimal-edit feedback when synthesis fails.
///
/// The workflow holds one warm incremental engine per query shape in
/// an internal [`PreparedStore`] — see [`run_conformance_with_store`]
/// to keep that state alive across calls, and [`run_conformance_cold`]
/// for the one-shot reference path (byte-identical results).
pub fn run_conformance(
    session: &Session<'_>,
    provider: PartyId,
    tenant: PartyId,
    tenant_preferred: Option<&Instance>,
) -> Result<ConformanceReport, MuppetError> {
    let mut store = PreparedStore::new();
    run_conformance_impl(session, provider, tenant, tenant_preferred, Some(&mut store))
}

/// [`run_conformance`] with a caller-held [`PreparedStore`]: repeated
/// conformance checks (revision loops, daemon sessions) reuse the warm
/// ground/encode state and solver clauses across calls.
pub fn run_conformance_with_store(
    session: &Session<'_>,
    provider: PartyId,
    tenant: PartyId,
    tenant_preferred: Option<&Instance>,
    store: &mut PreparedStore,
) -> Result<ConformanceReport, MuppetError> {
    run_conformance_impl(session, provider, tenant, tenant_preferred, Some(store))
}

/// The one-shot reference path: every query compiles a fresh engine.
/// Exists for differential testing against the warm path — results
/// must be byte-identical.
pub fn run_conformance_cold(
    session: &Session<'_>,
    provider: PartyId,
    tenant: PartyId,
    tenant_preferred: Option<&Instance>,
) -> Result<ConformanceReport, MuppetError> {
    run_conformance_impl(session, provider, tenant, tenant_preferred, None)
}

fn run_conformance_impl(
    session: &Session<'_>,
    provider: PartyId,
    tenant: PartyId,
    tenant_preferred: Option<&Instance>,
    mut warm: Option<&mut PreparedStore>,
) -> Result<ConformanceReport, MuppetError> {
    let names = session.party_names();
    let pname = names.get(&provider).cloned().unwrap_or_default();
    let tname = names.get(&tenant).cloned().unwrap_or_default();
    let mut log = Vec::new();

    // Step 1 (Alg. 1): provider's local consistency.
    let lc = match warm.as_deref_mut() {
        Some(store) => session.local_consistency_warm(provider, store)?,
        None => session.local_consistency(provider)?,
    };
    if !lc.ok {
        log.push(format!(
            "{pname}: offer is locally inconsistent; blame: {:?}",
            lc.core
        ));
        return Ok(ConformanceReport {
            provider_consistent: false,
            provider_config: None,
            envelope: None,
            success: false,
            tenant_config: None,
            blame: lc.core,
            counter_offer_distance: None,
            log,
        });
    }
    let provider_config = lc.witness.expect("consistent check returns a witness");
    log.push(format!(
        "{pname}: locally consistent; fixed configuration has {} settings",
        provider_config.total_tuples()
    ));

    // Step 2 (Alg. 3): compute the envelope once.
    let envelope = session.compute_envelope(provider, tenant, &provider_config)?;
    log.push(format!(
        "computed E_{{{pname}→{tname}}}: {} predicate(s), {} impossible goal(s)",
        envelope.predicates.len(),
        envelope.impossible.len()
    ));

    tenant_step(
        session,
        tenant,
        &tname,
        provider_config,
        envelope,
        tenant_preferred,
        warm,
        log,
    )
}

/// Step 3 of the Fig. 7 workflow (Fig. 8 solver aid), given an
/// already-validated provider: the tenant synthesizes against the
/// envelope plus its own goals, with minimal-edit counter-offer
/// feedback on failure. Factored out so the revision loop can re-run
/// only this step — the provider check and envelope "need never be
/// recomputed".
#[allow(clippy::too_many_arguments)]
fn tenant_step(
    session: &Session<'_>,
    tenant: PartyId,
    tname: &str,
    provider_config: Instance,
    envelope: Envelope,
    tenant_preferred: Option<&Instance>,
    mut warm: Option<&mut PreparedStore>,
    mut log: Vec<String>,
) -> Result<ConformanceReport, MuppetError> {
    let synth = match warm.as_deref_mut() {
        Some(store) => session.synthesize_against_warm(tenant, &envelope, store)?,
        None => session.synthesize_against(tenant, &envelope)?,
    };
    let mut counter_offer = |target: &Instance,
                             log: &mut Vec<String>|
     -> Result<Option<usize>, MuppetError> {
        let edit = match warm.as_deref_mut() {
            Some(store) => session.minimal_edit_warm(tenant, &envelope, target, store)?,
            None => session.minimal_edit(tenant, &envelope, target)?,
        };
        Ok(counter_offer_distance(edit, tname, log))
    };
    match synth {
        Outcome::Sat { solution, .. } => {
            let tenant_config =
                solution.restrict_to_domain(session.vocab(), Domain::Party(tenant));
            log.push(format!(
                "{tname}: synthesized a conforming configuration ({} settings)",
                tenant_config.total_tuples()
            ));
            Ok(ConformanceReport {
                provider_consistent: true,
                provider_config: Some(provider_config),
                envelope: Some(envelope),
                success: true,
                tenant_config: Some(tenant_config),
                blame: Vec::new(),
                counter_offer_distance: None,
                log,
            })
        }
        Outcome::Unsat { core, .. } => {
            log.push(format!("{tname}: synthesis failed; blame: {core:?}"));
            // Fig. 8 counter-offer: minimal edit of the preferred config
            // that satisfies the envelope alone.
            let counter = match tenant_preferred {
                Some(target) => counter_offer(target, &mut log)?,
                None => None,
            };
            Ok(ConformanceReport {
                provider_consistent: true,
                provider_config: Some(provider_config),
                envelope: Some(envelope),
                success: false,
                tenant_config: None,
                blame: core,
                counter_offer_distance: counter,
                log,
            })
        }
        Outcome::Unknown { phase, stats, partial } => {
            // Degraded: no verdict within budget. Surface where the
            // budget went and any partial core, and still try the
            // (independently budgeted) counter-offer query.
            log.push(format!(
                "{tname}: synthesis budget exhausted at phase {phase} ({stats}); \
                 raise the session budget or retry policy for a verdict"
            ));
            let blame = match partial {
                Some(PartialResult::Core(core)) => core,
                _ => Vec::new(),
            };
            let counter = match tenant_preferred {
                Some(target) => counter_offer(target, &mut log)?,
                None => None,
            };
            Ok(ConformanceReport {
                provider_consistent: true,
                provider_config: Some(provider_config),
                envelope: Some(envelope),
                success: false,
                tenant_config: None,
                blame,
                counter_offer_distance: counter,
                log,
            })
        }
    }
}

/// One tenant's line in a [`MultiTenantReport`].
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// The tenant party.
    pub tenant: PartyId,
    /// Did this tenant find a conforming configuration?
    pub success: bool,
    /// Its synthesized configuration on success.
    pub config: Option<Instance>,
    /// Blame on failure.
    pub blame: Vec<String>,
}

/// The outcome of provider-to-many-tenants conformance.
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Was the provider's offer locally consistent?
    pub provider_consistent: bool,
    /// The provider's fixed configuration.
    pub provider_config: Option<Instance>,
    /// Per-tenant envelopes (one per recipient domain) — each computed
    /// exactly once.
    pub envelopes: BTreeMap<PartyId, Envelope>,
    /// Per-tenant results.
    pub tenants: Vec<TenantOutcome>,
}

use std::collections::BTreeMap;

/// Conformance with many tenants: "the K8s administrator sends
/// E_{K8s→Istio} to **all** their Istio customers" (Sec. 3). The
/// provider's consistency is checked and its configuration fixed once;
/// every tenant then synthesizes independently against its own envelope
/// (envelopes differ per tenant because each tenant owns a different
/// configuration domain).
pub fn run_conformance_multi_tenant(
    session: &Session<'_>,
    provider: PartyId,
    tenants: &[PartyId],
) -> Result<MultiTenantReport, MuppetError> {
    // One warm store for the whole fan-out: the provider check and each
    // tenant's synthesis shape stay warm across the loop.
    let mut store = PreparedStore::new();
    let lc = session.local_consistency_warm(provider, &mut store)?;
    if !lc.ok {
        return Ok(MultiTenantReport {
            provider_consistent: false,
            provider_config: None,
            envelopes: BTreeMap::new(),
            tenants: tenants
                .iter()
                .map(|&t| TenantOutcome {
                    tenant: t,
                    success: false,
                    config: None,
                    blame: lc.core.clone(),
                })
                .collect(),
        });
    }
    let provider_config = lc.witness.expect("consistent check returns a witness");
    let mut envelopes = BTreeMap::new();
    let mut outcomes = Vec::new();
    for &tenant in tenants {
        let envelope = session.compute_envelope(provider, tenant, &provider_config)?;
        let outcome = match session.synthesize_against_warm(tenant, &envelope, &mut store)? {
            Outcome::Sat { solution, .. } => TenantOutcome {
                tenant,
                success: true,
                config: Some(
                    solution.restrict_to_domain(session.vocab(), Domain::Party(tenant)),
                ),
                blame: Vec::new(),
            },
            Outcome::Unsat { core, .. } => TenantOutcome {
                tenant,
                success: false,
                config: None,
                blame: core,
            },
            // One tenant's exhausted budget must not abort the other
            // tenants' runs: record a degraded (unproven) failure.
            Outcome::Unknown { partial, .. } => TenantOutcome {
                tenant,
                success: false,
                config: None,
                blame: match partial {
                    Some(PartialResult::Core(core)) => core,
                    _ => Vec::new(),
                },
            },
        };
        envelopes.insert(tenant, envelope);
        outcomes.push(outcome);
    }
    Ok(MultiTenantReport {
        provider_consistent: true,
        provider_config: Some(provider_config),
        envelopes,
        tenants: outcomes,
    })
}

/// The full Fig. 7 loop with tenant revisions: run conformance; on
/// failure hand the tenant's [`crate::negotiate::Negotiator`] the blame
/// plus envelope as feedback and retry, up to `max_revisions` times.
/// The envelope is computed once and reused across retries ("the
/// envelope E_{A→B} need never be recomputed").
pub fn run_conformance_with_revisions(
    session: &mut Session<'_>,
    provider: PartyId,
    tenant: PartyId,
    tenant_preferred: Option<&Instance>,
    strategy: &mut dyn crate::negotiate::Negotiator,
    max_revisions: usize,
) -> Result<ConformanceReport, MuppetError> {
    // One warm store for the whole loop: the provider is checked and
    // the envelope computed exactly once (tenant revisions touch only
    // tenant-owned goals and offers, which enter neither), and every
    // retry re-runs only the tenant-side step on the warm engine.
    let mut store = PreparedStore::new();
    let mut report =
        run_conformance_with_store(session, provider, tenant, tenant_preferred, &mut store)?;
    let mut revisions = 0usize;
    while !report.success && report.provider_consistent && revisions < max_revisions {
        let envelope = report
            .envelope
            .clone()
            .expect("provider consistent ⇒ envelope exists");
        // The mediator's counter-offer for the tenant: minimal edit of
        // the preferred configuration that satisfies the envelope.
        let counter_offer = match tenant_preferred {
            Some(target) => {
                match session.minimal_edit_warm(tenant, &envelope, target, &mut store)? {
                    (muppet_solver::Outcome::Sat { solution, .. }, dist) => Some((
                        solution.restrict_to_domain(
                            session.vocab(),
                            muppet_logic::Domain::Party(tenant),
                        ),
                        dist,
                    )),
                    // Budget fired mid-minimization: the best-so-far model
                    // is still envelope-satisfying, just maybe not minimal.
                    (
                        muppet_solver::Outcome::Unknown {
                            partial: Some(PartialResult::Model { solution, distance }),
                            ..
                        },
                        _,
                    ) => Some((
                        solution.restrict_to_domain(
                            session.vocab(),
                            muppet_logic::Domain::Party(tenant),
                        ),
                        distance,
                    )),
                    _ => None,
                }
            }
            None => None,
        };
        let feedback = crate::negotiate::Feedback {
            core: report.blame.clone(),
            envelope: envelope.clone(),
            counter_offer,
            round: revisions,
        };
        let changed = strategy.revise(session.party_mut(tenant)?, &feedback);
        if !changed {
            report.log.push(format!(
                "tenant declined to revise after {revisions} revision(s); stopping"
            ));
            break;
        }
        revisions += 1;
        // Retry only the tenant side: the provider's witness and the
        // envelope are carried over unchanged.
        let provider_config = report
            .provider_config
            .clone()
            .expect("provider consistent ⇒ witness exists");
        let tname = session
            .party_names()
            .get(&tenant)
            .cloned()
            .unwrap_or_default();
        let retry_log = vec![format!("— retry after tenant revision {revisions} —")];
        let mut next = tenant_step(
            session,
            tenant,
            &tname,
            provider_config,
            envelope,
            tenant_preferred,
            Some(&mut store),
            retry_log,
        )?;
        let mut log = report.log;
        log.extend(next.log.clone());
        next.log = log;
        report = next;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::{NamedGoal, Party};
    use crate::session::Session;
    use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
    use muppet_mesh::MeshVocab;

    fn session<'a>(mv: &'a MeshVocab, istio_rows: &[IstioGoal]) -> Session<'a> {
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).unwrap();
        let istio_goals = translate_istio_goals(istio_rows, mv, &mut vocab).unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut s = Session::new(&mv.universe, vocab, Instance::new());
        s.add_axioms(axioms);
        s.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        s.add_party(
            Party::new(mv.istio_party, "istio-admin")
                .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
        );
        s
    }

    #[test]
    fn strict_tenant_goals_fail_with_feedback() {
        let mv = MeshVocab::paper_example();
        let s = session(&mv, &IstioGoal::fig3());
        // The tenant's preferred configuration is its current deployment.
        let preferred = mv.structure_instance();
        let report =
            run_conformance(&s, mv.k8s_party, mv.istio_party, Some(&preferred)).unwrap();
        assert!(report.provider_consistent);
        assert!(!report.success);
        assert!(!report.blame.is_empty());
        // Counter-offer exists: the envelope alone is satisfiable.
        let d = report.counter_offer_distance.expect("counter offer");
        assert_eq!(d, 1, "unexposing port 23 is the one-edit counter-offer");
        assert!(report.envelope.is_some());
    }

    #[test]
    fn relaxed_tenant_goals_succeed_and_verify() {
        // Fig. 4 relaxation: the synthesizer may re-expose the frontend
        // on a spare port (port exposure is Istio-owned).
        let mv = MeshVocab::paper_example();
        let s = session(&mv, &IstioGoal::fig4());
        let report = run_conformance(&s, mv.k8s_party, mv.istio_party, None).unwrap();
        assert!(report.success, "log: {:?}", report.log);
        // End-to-end verification: provider config + tenant config
        // satisfy everyone's goals.
        let combined = s
            .structure()
            .union(report.provider_config.as_ref().unwrap())
            .union(report.tenant_config.as_ref().unwrap());
        for (name, holds) in s.check_goals(&combined) {
            assert!(holds, "{name} violated");
        }
        // And the envelope accepts the tenant's config.
        let env = report.envelope.unwrap();
        assert!(env
            .check(report.tenant_config.as_ref().unwrap(), &mv.universe)
            .is_empty());
    }

    #[test]
    fn revision_loop_reaches_conformance() {
        // Strict tenant fails; a revision strategy that swaps the blamed
        // goal for its Fig. 4 relaxation lets the retry succeed.
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3());
        // Pre-translate the relaxed replacement row with the session's
        // own vocabulary lineage.
        let mut vocab = mv.vocab.clone();
        let _burn: Vec<_> = (0..64).map(|_| vocab.fresh_var()).collect();
        let relaxed = muppet_goals::translate_istio_goals(
            &IstioGoal::parse_csv("test-backend,test-frontend,?y,?z\n").unwrap(),
            &mv,
            &mut vocab,
        )
        .unwrap();
        let mut replacement = Some(NamedGoal::from(relaxed.into_iter().next().unwrap()));
        let mut strategy =
            crate::negotiate::FnNegotiator(move |party: &mut Party, fb: &crate::negotiate::Feedback| {
                let Some(idx) = party
                    .goals
                    .iter()
                    .position(|g| fb.core.iter().any(|c| c.contains(&g.name)))
                else {
                    return false;
                };
                match replacement.take() {
                    Some(r) => {
                        party.goals[idx] = r;
                        true
                    }
                    None => false,
                }
            });
        let report = run_conformance_with_revisions(
            &mut s,
            mv.k8s_party,
            mv.istio_party,
            None,
            &mut strategy,
            3,
        )
        .unwrap();
        assert!(report.success, "log: {:#?}", report.log);
        assert!(report.log.iter().any(|l| l.contains("retry after tenant revision 1")));
    }

    #[test]
    fn revision_loop_stops_on_stubborn_tenant() {
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3());
        let mut strategy = crate::negotiate::Stubborn;
        let report = run_conformance_with_revisions(
            &mut s,
            mv.k8s_party,
            mv.istio_party,
            None,
            &mut strategy,
            3,
        )
        .unwrap();
        assert!(!report.success);
        assert!(report.log.iter().any(|l| l.contains("declined to revise")));
    }

    #[test]
    fn inconsistent_provider_is_caught_before_envelope() {
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3());
        // A self-contradictory provider: two opposite goals over its own
        // relations.
        let fe = mv.svc_atom("test-frontend").unwrap();
        let guard =
            muppet_logic::Formula::pred(mv.k8s_in_guard, [muppet_logic::Term::Const(fe)]);
        s.party_mut(mv.k8s_party).unwrap().goals.extend([
            NamedGoal::hard("guard fe", guard.clone()),
            NamedGoal::hard("never guard fe", muppet_logic::Formula::not(guard)),
        ]);
        let report = run_conformance(&s, mv.k8s_party, mv.istio_party, None).unwrap();
        assert!(!report.provider_consistent);
        assert!(!report.success);
        assert!(report.envelope.is_none());
        assert!(!report.blame.is_empty());
    }
}
