//! The solver-aided negotiation workflow (Fig. 9).
//!
//! "Suppose A is now willing to negotiate over its initial configuration
//! (and perhaps even its goals). … all parties register their partial
//! configurations and properties in advance; and each administrator gets
//! a turn to revise in a round-robin fashion." The solver mediates:
//! after each failed reconciliation, the party whose turn it is receives
//! *feedback* — the blame core plus an envelope from the other parties —
//! and may revise its offer or goals. "We opted for a round-robin
//! approach … to avoid forcing administrators to accommodate a
//! potentially moving target."
//!
//! Revision behaviour is pluggable via [`Negotiator`]; the crate ships
//! simple strategies used by the experiments, and [`FnNegotiator`] wraps
//! arbitrary closures for scripted episodes.

use std::collections::BTreeMap;

use muppet_logic::{Instance, PartyId};
use muppet_solver::PreparedStore;

use crate::envelope::Envelope;
use crate::party::Party;
use crate::session::{MuppetError, ReconcileMode, Session};

/// The feedback a party receives on its revision turn.
#[derive(Clone, Debug)]
pub struct Feedback {
    /// Minimal blame from the failed reconciliation.
    pub core: Vec<String>,
    /// The envelope from all *other* parties (their goals, modulo their
    /// locally-consistent witness configurations) to this party.
    pub envelope: Envelope,
    /// The mediator's *counter-offer*: the minimal edit of the party's
    /// committed settings that satisfies the received envelope, when one
    /// exists. This is the target-oriented presentation mode of Sec. 7:
    /// "the resulting system would not outright reject goals or
    /// configurations, but rather return a minimally-edited
    /// 'counter-offer'". Paired with the edit distance.
    pub counter_offer: Option<(Instance, usize)>,
    /// The current negotiation round (0-based).
    pub round: usize,
}

/// A revision strategy: given the party's state and the solver's
/// feedback, mutate the party (offer and/or goals). Return `true` if
/// anything changed — a full cycle of unchanged parties ends the
/// negotiation as stuck.
pub trait Negotiator {
    /// Revise `party` in place.
    fn revise(&mut self, party: &mut Party, feedback: &Feedback) -> bool;
}

/// Never revises anything (a maximally stubborn administrator).
#[derive(Debug, Default)]
pub struct Stubborn;

impl Negotiator for Stubborn {
    fn revise(&mut self, _party: &mut Party, _feedback: &Feedback) -> bool {
        false
    }
}

/// Drops the party's *soft* goals that the blame core names (one per
/// turn, most recently added first). Hard goals are never dropped —
/// "some compromise or weakening of goals is necessary to move forward"
/// (Sec. 2), but only where the administrator marked flexibility.
#[derive(Debug, Default)]
pub struct DropBlamedSoftGoals;

impl Negotiator for DropBlamedSoftGoals {
    fn revise(&mut self, party: &mut Party, feedback: &Feedback) -> bool {
        let blamed: Vec<usize> = party
            .goals
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                !g.hard && feedback.core.iter().any(|c| c.contains(&g.name))
            })
            .map(|(i, _)| i)
            .collect();
        match blamed.last() {
            Some(&i) => {
                party.goals.remove(i);
                true
            }
            None => false,
        }
    }
}

/// Softens the party's blamed *committed settings*: when the blame core
/// names this party's commitments, one hard (lower-bound) tuple is
/// downgraded to soft (upper-bound only) per turn — the Sec. 4.1
/// revision of "widening the negotiable region of their partial
/// configuration" without touching any goal.
#[derive(Debug, Default)]
pub struct SoftenBlamedCommitments;

impl Negotiator for SoftenBlamedCommitments {
    fn revise(&mut self, party: &mut Party, feedback: &Feedback) -> bool {
        let blamed = feedback
            .core
            .iter()
            .any(|c| c.contains(&party.name) && c.contains("committed settings"));
        if !blamed {
            return false;
        }
        // Rebuild the offer with one fewer required tuple (the first, in
        // deterministic order); everything stays permitted.
        let old = party.offer.clone();
        let mut softened = muppet_logic::PartialInstance::new();
        let mut dropped = false;
        for rel in old.bounded_rels() {
            softened.bound(rel);
            for t in old.upper(rel) {
                softened.permit(rel, t.clone());
            }
            for t in old.lower(rel) {
                if !dropped {
                    dropped = true; // downgrade this one to soft
                    continue;
                }
                softened.require(rel, t.clone());
            }
        }
        if dropped {
            party.offer = softened;
        }
        dropped
    }
}

/// Adopts the mediator's minimally-edited counter-offer as the party's
/// new committed configuration (hard settings), leaving goals untouched.
/// A party using this strategy converges whenever its *goals* are not
/// themselves part of the conflict.
#[derive(Debug, Default)]
pub struct AcceptCounterOffer;

impl Negotiator for AcceptCounterOffer {
    fn revise(&mut self, party: &mut Party, feedback: &Feedback) -> bool {
        let Some((offer, _distance)) = &feedback.counter_offer else {
            return false;
        };
        // Adopt the counter-offer exactly: require its tuples, permit
        // nothing extra (the mediator already verified it against the
        // envelope).
        let mut new_offer = muppet_logic::PartialInstance::new();
        for rel in party.offer.bounded_rels() {
            new_offer.bound(rel);
        }
        for (rel, tuple) in offer.all_tuples() {
            new_offer.require(rel, tuple);
        }
        if new_offer != party.offer {
            party.offer = new_offer;
            true
        } else {
            false
        }
    }
}

/// Wraps a closure as a [`Negotiator`] — handy for scripted episodes in
/// tests and examples (e.g. "on round 2, swap in the Fig. 4 goals").
pub struct FnNegotiator<F: FnMut(&mut Party, &Feedback) -> bool>(pub F);

impl<F: FnMut(&mut Party, &Feedback) -> bool> Negotiator for FnNegotiator<F> {
    fn revise(&mut self, party: &mut Party, feedback: &Feedback) -> bool {
        (self.0)(party, feedback)
    }
}

fn feedback_names_commitments(core: &[String], party_name: &str) -> bool {
    core.iter()
        .any(|c| c.contains(party_name) && c.contains("committed settings"))
}

/// Who gets revision turns, and in what order. The paper's Fig. 9 is
/// [`Schedule::RoundRobin`]; a hub-and-spoke deployment (one fixed
/// provider, N tenants revising around it) is the degenerate case where
/// the hub never takes a turn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Every party takes turns in registration order ("each
    /// administrator gets a turn to revise in a round-robin fashion").
    RoundRobin,
    /// The named hub never revises; the remaining parties (spokes)
    /// round-robin among themselves. Equivalent to `RoundRobin` with a
    /// [`Stubborn`] hub, except the hub's turns are not burned from
    /// `max_rounds` and a stuck verdict needs only a full *spoke* cycle.
    HubAndSpoke(PartyId),
}

impl Schedule {
    /// The cyclic turn order over the session's parties.
    fn turn_cycle(&self, party_ids: &[PartyId]) -> Vec<PartyId> {
        match self {
            Schedule::RoundRobin => party_ids.to_vec(),
            Schedule::HubAndSpoke(hub) => {
                let spokes: Vec<PartyId> =
                    party_ids.iter().copied().filter(|p| p != hub).collect();
                // A hub that isn't registered (or is the only party)
                // degrades to round-robin rather than an empty cycle.
                if spokes.is_empty() || spokes.len() == party_ids.len() {
                    party_ids.to_vec()
                } else {
                    spokes
                }
            }
        }
    }
}

/// The outcome of a negotiation.
#[derive(Clone, Debug)]
pub struct NegotiationReport {
    /// Did the parties converge on a joint configuration?
    pub success: bool,
    /// Reconciliation attempts made (1 = agreed immediately).
    pub rounds: usize,
    /// Delivered per-party configurations on success.
    pub configs: BTreeMap<PartyId, Instance>,
    /// Step-by-step log (who revised, what was blamed).
    pub trace: Vec<String>,
}

/// Run the Fig. 9 round-robin negotiation.
///
/// Each round attempts reconciliation (Alg. 2, blameable mode). On
/// failure, the party whose turn it is receives [`Feedback`] (core +
/// multi-source envelope from everyone else) and its [`Negotiator`]
/// revises it. Negotiation ends on success, after `max_rounds`, or when
/// a full cycle passes with no party changing anything.
///
/// The whole negotiation runs on **one warm incremental engine** per
/// query shape (held in an internal [`PreparedStore`]): round `n`
/// starts from round `n-1`'s solver state, a counter-offer is a group
/// swap plus assumption flips rather than a recompilation, and answers
/// are byte-identical to the cold path ([`run_negotiation_cold`]) by
/// the engine's canonicalization contract.
pub fn run_negotiation(
    session: &mut Session<'_>,
    negotiators: &mut BTreeMap<PartyId, Box<dyn Negotiator>>,
    max_rounds: usize,
) -> Result<NegotiationReport, MuppetError> {
    let mut store = PreparedStore::new();
    run_negotiation_with_store(session, negotiators, max_rounds, &mut store)
}

/// [`run_negotiation`] under an explicit [`Schedule`]. `RoundRobin`
/// reproduces [`run_negotiation`] exactly.
pub fn run_negotiation_scheduled(
    session: &mut Session<'_>,
    negotiators: &mut BTreeMap<PartyId, Box<dyn Negotiator>>,
    max_rounds: usize,
    schedule: Schedule,
) -> Result<NegotiationReport, MuppetError> {
    let mut store = PreparedStore::new();
    run_negotiation_impl(session, negotiators, max_rounds, Some(&mut store), schedule)
}

/// [`run_negotiation`] with a caller-held [`PreparedStore`], so warm
/// engine state survives *across* negotiations (the daemon holds one
/// store per warm session and feeds successive `NegotiateRound`
/// requests through it).
pub fn run_negotiation_with_store(
    session: &mut Session<'_>,
    negotiators: &mut BTreeMap<PartyId, Box<dyn Negotiator>>,
    max_rounds: usize,
    store: &mut PreparedStore,
) -> Result<NegotiationReport, MuppetError> {
    run_negotiation_impl(session, negotiators, max_rounds, Some(store), Schedule::RoundRobin)
}

/// The one-shot reference path: every query compiles a fresh engine.
/// Exists for differential testing against the warm path — results
/// must be byte-identical — and as the fallback shape for callers that
/// cannot hold state.
pub fn run_negotiation_cold(
    session: &mut Session<'_>,
    negotiators: &mut BTreeMap<PartyId, Box<dyn Negotiator>>,
    max_rounds: usize,
) -> Result<NegotiationReport, MuppetError> {
    run_negotiation_impl(session, negotiators, max_rounds, None, Schedule::RoundRobin)
}

fn run_negotiation_impl(
    session: &mut Session<'_>,
    negotiators: &mut BTreeMap<PartyId, Box<dyn Negotiator>>,
    max_rounds: usize,
    mut warm: Option<&mut PreparedStore>,
    schedule: Schedule,
) -> Result<NegotiationReport, MuppetError> {
    let mut trace = Vec::new();
    let party_ids: Vec<PartyId> = session.parties().iter().map(|p| p.id).collect();
    let turn_cycle = schedule.turn_cycle(&party_ids);
    let names = session.party_names();
    let mut unchanged_streak = 0usize;

    for round in 0..max_rounds {
        let rec = match warm.as_deref_mut() {
            Some(store) => session.reconcile_warm(ReconcileMode::Blameable, store)?,
            None => session.reconcile(ReconcileMode::Blameable)?,
        };
        if rec.success {
            trace.push(format!("round {}: reconciliation succeeded", round + 1));
            return Ok(NegotiationReport {
                success: true,
                rounds: round + 1,
                configs: rec.configs,
                trace,
            });
        }
        let turn = turn_cycle[round % turn_cycle.len()];
        let turn_name = names.get(&turn).cloned().unwrap_or_default();
        if let Some(ex) = &rec.exhausted {
            // A timed-out round degrades instead of aborting the whole
            // negotiation: the revising party still gets whatever
            // partial blame the solver salvaged.
            trace.push(format!(
                "round {}: {ex}; continuing with partial feedback; {} revises",
                round + 1,
                turn_name
            ));
        } else {
            trace.push(format!(
                "round {}: conflict {:?}; {} revises",
                round + 1,
                rec.core,
                turn_name
            ));
        }

        // Envelope from everyone else to the revising party, using each
        // sender's locally-consistent witness as its fixed configuration
        // (an inconsistent sender contributes an empty configuration —
        // its goals still shape the envelope).
        let mut senders = Vec::new();
        for &other in party_ids.iter().filter(|&&p| p != turn) {
            let lc = match warm.as_deref_mut() {
                Some(store) => session.local_consistency_warm(other, store)?,
                None => session.local_consistency(other)?,
            };
            senders.push((other, lc.witness.unwrap_or_default()));
        }
        let envelope = session.compute_multi_envelope(&senders, turn)?;
        // Mediator counter-offer: the minimal edit of the party's
        // committed settings that satisfies the envelope. A counter-offer
        // revises *commitments*, so it is only computed (the MaxSAT query
        // is not free) when the blame core actually names this party's
        // committed settings.
        let commitments_blamed = feedback_names_commitments(&rec.core, &turn_name);
        let counter_offer = if commitments_blamed {
            let committed = {
                let party = session.party(turn)?;
                let mut inst = Instance::new();
                for rel in party.offer.bounded_rels() {
                    for t in party.offer.lower(rel) {
                        inst.insert(rel, t.clone());
                    }
                }
                inst
            };
            let edit = match warm.as_deref_mut() {
                Some(store) => {
                    session.minimal_edit_warm(turn, &envelope, &committed, store)?
                }
                None => session.minimal_edit(turn, &envelope, &committed)?,
            };
            match edit {
                (muppet_solver::Outcome::Sat { solution, .. }, dist) => {
                    let cfg = solution.restrict_to_domain(
                        session.vocab(),
                        muppet_logic::Domain::Party(turn),
                    );
                    Some((cfg, dist))
                }
                // Exhausted mid-minimization: degrade to the best-so-far
                // model as a (possibly non-minimal) counter-offer.
                (
                    muppet_solver::Outcome::Unknown {
                        partial:
                            Some(muppet_solver::PartialResult::Model { solution, distance }),
                        ..
                    },
                    _,
                ) => {
                    let cfg = solution.restrict_to_domain(
                        session.vocab(),
                        muppet_logic::Domain::Party(turn),
                    );
                    Some((cfg, distance))
                }
                _ => None,
            }
        } else {
            None
        };
        let feedback = Feedback {
            core: rec.core,
            envelope,
            counter_offer,
            round,
        };
        let negotiator = negotiators
            .get_mut(&turn)
            .ok_or(MuppetError::UnknownParty(turn))?;
        let changed = negotiator.revise(session.party_mut(turn)?, &feedback);
        if changed {
            unchanged_streak = 0;
            trace.push(format!("  {} changed its offer/goals", turn_name));
        } else {
            unchanged_streak += 1;
            trace.push(format!("  {} stood firm", turn_name));
            if unchanged_streak >= turn_cycle.len() {
                trace.push("negotiation stuck: a full cycle with no revisions".to_string());
                return Ok(NegotiationReport {
                    success: false,
                    rounds: round + 1,
                    configs: BTreeMap::new(),
                    trace,
                });
            }
        }
    }
    trace.push(format!("negotiation exhausted {max_rounds} rounds"));
    Ok(NegotiationReport {
        success: false,
        rounds: max_rounds,
        configs: BTreeMap::new(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::NamedGoal;
    use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
    use muppet_mesh::MeshVocab;

    fn session<'a>(mv: &'a MeshVocab, istio_rows: &[IstioGoal], soft_istio: bool) -> Session<'a> {
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).unwrap();
        let istio_goals = translate_istio_goals(istio_rows, mv, &mut vocab).unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut s = Session::new(&mv.universe, vocab, Instance::new());
        s.add_axioms(axioms);
        s.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        s.add_party(Party::new(mv.istio_party, "istio-admin").with_goals(
            istio_goals.into_iter().map(|g| {
                let mut g = NamedGoal::from(g);
                if soft_istio {
                    g.hard = false;
                }
                g
            }),
        ));
        s
    }

    #[test]
    fn stubborn_parties_get_stuck() {
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3(), false);
        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(mv.k8s_party, Box::new(Stubborn));
        negs.insert(mv.istio_party, Box::new(Stubborn));
        let report = run_negotiation(&mut s, &mut negs, 10).unwrap();
        assert!(!report.success);
        assert!(report.trace.iter().any(|t| t.contains("stuck")));
        assert!(report.rounds <= 3);
    }

    #[test]
    fn dropping_soft_goals_converges() {
        // Istio goals are soft: the conflicting row 2 gets dropped and
        // negotiation converges.
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3(), true);
        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(mv.k8s_party, Box::new(Stubborn));
        negs.insert(mv.istio_party, Box::new(DropBlamedSoftGoals));
        let report = run_negotiation(&mut s, &mut negs, 10).unwrap();
        assert!(report.success, "trace: {:#?}", report.trace);
        // The istio admin ends with 3 goals (row 2 dropped).
        assert_eq!(s.party(mv.istio_party).unwrap().goals.len(), 3);
        // Delivered configs satisfy the remaining goals.
        let mut combined = s.structure().clone();
        for c in report.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in s.check_goals(&combined) {
            assert!(holds, "{name}");
        }
    }

    #[test]
    fn scripted_relaxation_via_fn_negotiator() {
        // The istio admin swaps the strict Fig. 3 row 2 for the relaxed
        // "reach the frontend on some port ∃z" goal when blamed —
        // mirroring the Sec. 3 narrative. Re-exposure on a spare port is
        // possible because port exposure is in the Istio domain.
        let mv = MeshVocab::paper_example();
        let s = session(&mv, &IstioGoal::fig3(), false);
        // Pre-translate the relaxed replacement goal (row 2 of Fig. 4).
        let mut vocab = mv.vocab.clone();
        let relaxed = translate_istio_goals(
            &IstioGoal::parse_csv("test-backend,test-frontend,?y,?z\n").unwrap(),
            &mv,
            &mut vocab,
        )
        .unwrap();
        // The session must know the fresh variables: rebuild it with the
        // extended vocabulary.
        let k8s_goals = translate_k8s_goals(&fig2(), &mv, &mut vocab).unwrap();
        let strict = translate_istio_goals(&IstioGoal::fig3(), &mv, &mut vocab).unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut s2 = Session::new(&mv.universe, vocab, Instance::new());
        s2.add_axioms(axioms);
        s2.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        s2.add_party(
            Party::new(mv.istio_party, "istio-admin")
                .with_goals(strict.into_iter().map(NamedGoal::from)),
        );
        drop(s);

        let relaxed_goal = NamedGoal::from(relaxed.into_iter().next().unwrap());
        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(mv.k8s_party, Box::new(Stubborn));
        let mut replacement = Some(relaxed_goal);
        negs.insert(
            mv.istio_party,
            Box::new(FnNegotiator(move |party: &mut Party, feedback: &Feedback| {
                let Some(idx) = party
                    .goals
                    .iter()
                    .position(|g| feedback.core.iter().any(|c| c.contains(&g.name)))
                else {
                    return false;
                };
                match replacement.take() {
                    Some(r) => {
                        party.goals[idx] = r;
                        true
                    }
                    None => false,
                }
            })),
        );
        let report = run_negotiation(&mut s2, &mut negs, 10).unwrap();
        assert!(report.success, "trace: {:#?}", report.trace);
        let mut combined = s2.structure().clone();
        for c in report.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in s2.check_goals(&combined) {
            assert!(holds, "{name}");
        }
    }

    #[test]
    fn softening_commitments_converges() {
        // The K8s admin has no conflicting *goal*; instead it has
        // hard-committed the deny tuple that breaks istio goal 2. A
        // SoftenBlamedCommitments negotiator turns the commitment soft
        // when blamed, and reconciliation then succeeds by simply not
        // using the tuple.
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3(), false);
        let k8s_id = mv.k8s_party;
        s.party_mut(k8s_id).unwrap().goals.clear();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        let mut offer = muppet_logic::PartialInstance::new();
        offer.require(mv.k8s_in_deny, vec![fe, be, p23]);
        s.party_mut(k8s_id).unwrap().offer = offer;

        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(k8s_id, Box::new(SoftenBlamedCommitments));
        negs.insert(mv.istio_party, Box::new(Stubborn));
        let report = run_negotiation(&mut s, &mut negs, 10).unwrap();
        assert!(report.success, "trace: {:#?}", report.trace);
        // The offer no longer *requires* the tuple…
        let offer = &s.party(k8s_id).unwrap().offer;
        assert!(!offer.is_required(mv.k8s_in_deny, &[fe, be, p23]));
        // …but still permits it (soft, not deleted).
        assert!(offer.is_allowed(mv.k8s_in_deny, &[fe, be, p23]));
        // And the delivered K8s config does not use it.
        assert!(!report.configs[&k8s_id].holds(mv.k8s_in_deny, &[fe, be, p23]));
    }

    #[test]
    fn softening_does_nothing_when_not_blamed() {
        let mv = MeshVocab::paper_example();
        let mut party = crate::party::Party::new(mv.k8s_party, "k8s-admin");
        let fe = mv.svc_atom("test-frontend").unwrap();
        let mut offer = muppet_logic::PartialInstance::new();
        offer.require(mv.k8s_in_guard, vec![fe]);
        party.offer = offer.clone();
        let fb = Feedback {
            core: vec!["istio-admin: some goal".into()],
            envelope: crate::envelope::Envelope {
                from: vec![mv.istio_party],
                to: mv.k8s_party,
                predicates: vec![],
                impossible: vec![],
                residual_violations: vec![],
                self_satisfied: vec![],
            },
            counter_offer: None,
            round: 0,
        };
        let mut n = SoftenBlamedCommitments;
        assert!(!n.revise(&mut party, &fb));
        assert_eq!(party.offer, offer);
    }

    #[test]
    fn accepting_the_mediators_counter_offer_converges() {
        // The K8s admin *requires* backend:25 to stay reachable (an
        // ALLOW goal it cannot enforce alone), while the Istio admin has
        // hard-committed an egress lockdown on the frontend and fixed
        // every other Istio setting. The commitments break the goal; the
        // mediator's counter-offer is the minimal edit of them that
        // satisfies E_{K8s→Istio}, and adopting it converges.
        let mv = MeshVocab::paper_example();
        let mut vocab = mv.vocab.clone();
        let k8s_goals = muppet_goals::translate_k8s_goals(
            &muppet_goals::K8sGoal::parse_csv("25,ALLOW,test-backend\n").unwrap(),
            &mv,
            &mut vocab,
        )
        .unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut s = Session::new(&mv.universe, vocab, Instance::new());
        s.add_axioms(axioms);
        s.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        s.add_party(Party::new(mv.istio_party, "istio-admin"));
        let istio_id = mv.istio_party;
        // Commit the whole Istio side: deployment as-is, an egress
        // lockdown on the frontend, everything else fixed empty.
        let fe = mv.svc_atom("test-frontend").unwrap();
        let mut offer = muppet_logic::PartialInstance::new();
        offer.fix_from(mv.listens, &mv.structure_instance());
        offer.require(mv.istio_eg_guard, vec![fe]);
        for rel in mv.istio_rels() {
            offer.bound(rel); // everything not required is pinned empty
        }
        let committed_before: usize = offer
            .bounded_rels()
            .map(|r| offer.lower(r).count())
            .sum();
        s.party_mut(istio_id).unwrap().offer = offer;

        // Sanity: the commitments really do conflict with the goal.
        let rec = s.reconcile(crate::ReconcileMode::Blameable).unwrap();
        assert!(!rec.success);
        assert!(rec
            .core
            .iter()
            .any(|c| c.contains("istio-admin: committed settings")));

        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(mv.k8s_party, Box::new(Stubborn));
        negs.insert(istio_id, Box::new(AcceptCounterOffer));
        let report = run_negotiation(&mut s, &mut negs, 10).unwrap();
        assert!(report.success, "trace: {:#?}", report.trace);
        // The adopted commitments are one edit away from the originals.
        let new_offer = &s.party(istio_id).unwrap().offer;
        let committed_after: usize = new_offer
            .bounded_rels()
            .map(|r| new_offer.lower(r).count())
            .sum();
        assert!(
            committed_after.abs_diff(committed_before) == 1,
            "one-tuple edit expected: {committed_before} → {committed_after}"
        );
        let mut combined = Instance::new();
        for c in report.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in s.check_goals(&combined) {
            assert!(holds, "{name}");
        }
    }

    #[test]
    fn counter_offer_is_present_in_feedback() {
        let mv = MeshVocab::paper_example();
        let mut s = session(&mv, &IstioGoal::fig3(), false);
        let seen: std::rc::Rc<std::cell::RefCell<Vec<Option<usize>>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(mv.k8s_party, Box::new(Stubborn));
        negs.insert(
            mv.istio_party,
            Box::new(FnNegotiator(move |_p: &mut Party, fb: &Feedback| {
                seen2
                    .borrow_mut()
                    .push(fb.counter_offer.as_ref().map(|(_, d)| *d));
                false
            })),
        );
        let _ = run_negotiation(&mut s, &mut negs, 6).unwrap();
        let seen = seen.borrow();
        assert!(!seen.is_empty());
        // The istio admin committed nothing, so its commitments are never
        // blamed and the mediator skips the (costly) counter-offer query.
        assert_eq!(seen[0], None);
    }

    #[test]
    fn feedback_contains_envelope_from_other_party() {
        let mv = MeshVocab::paper_example();
        let s = session(&mv, &IstioGoal::fig3(), false);
        let mut s = s;
        let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(mv.k8s_party, Box::new(Stubborn));
        let seen: std::rc::Rc<std::cell::RefCell<Vec<usize>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        negs.insert(
            mv.istio_party,
            Box::new(FnNegotiator(move |_party: &mut Party, fb: &Feedback| {
                seen2.borrow_mut().push(fb.envelope.predicates.len());
                false
            })),
        );
        let report = run_negotiation(&mut s, &mut negs, 6).unwrap();
        assert!(!report.success);
        // On the istio admin's turn(s) it saw the K8s envelope (≥1
        // predicate — the port-23 obligation).
        let seen = seen.borrow();
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|&n| n >= 1));
    }
}
