//! Parties: administrators with goals and partial-configuration offers.

use muppet_logic::{Formula, PartialInstance, PartyId, VarId};

/// A named goal: one row of an administrator's goal table, translated to
/// a closed bounded-FOL formula. Names are the unit of blame in unsat
/// cores.
#[derive(Clone, Debug)]
pub struct NamedGoal {
    /// Display name, e.g. `"k8s goal 1: DENY port 23"`.
    pub name: String,
    /// The goal formula (closed).
    pub formula: Formula,
    /// Pretty names for quantified variables (for envelope rendering).
    pub var_names: Vec<(VarId, String)>,
    /// Hard goals must hold; soft goals may be dropped during
    /// negotiation (the goal-level analogue of the paper's "soft"
    /// configuration settings).
    pub hard: bool,
}

impl NamedGoal {
    /// A hard goal.
    pub fn hard(name: impl Into<String>, formula: Formula) -> NamedGoal {
        NamedGoal {
            name: name.into(),
            formula,
            var_names: Vec::new(),
            hard: true,
        }
    }

    /// A soft (droppable) goal.
    pub fn soft(name: impl Into<String>, formula: Formula) -> NamedGoal {
        NamedGoal {
            hard: false,
            ..NamedGoal::hard(name, formula)
        }
    }

    /// Attach variable display names (builder style).
    pub fn with_var_names(mut self, names: Vec<(VarId, String)>) -> NamedGoal {
        self.var_names = names;
        self
    }
}

// The production `From<muppet_goals::NamedFormula>` impl lives in
// `muppet-goals` (this crate is domain-free; goals is the domain side).
// Unit-test builds of this crate are a *separate* crate from the
// `muppet` rlib that dev-dependency links against, so that impl targets
// a different `NamedGoal` type here — mirror it for tests only.
#[cfg(test)]
impl From<muppet_goals::NamedFormula> for NamedGoal {
    fn from(nf: muppet_goals::NamedFormula) -> NamedGoal {
        NamedGoal {
            name: nf.name,
            formula: nf.formula,
            var_names: nf.var_names,
            hard: true,
        }
    }
}

/// An administrator participating in a Muppet session.
#[derive(Clone, Debug)]
pub struct Party {
    /// The party's id; must match the [`muppet_logic::Domain::Party`]
    /// ownership of its configuration relations.
    pub id: PartyId,
    /// Display name ("k8s-admin", "istio-admin", …).
    pub name: String,
    /// The party's behavioral goals φ.
    pub goals: Vec<NamedGoal>,
    /// The party's current offer `C??`: bounds over its own relations.
    /// An empty offer means complete flexibility (Sec. 4.1).
    pub offer: PartialInstance,
}

impl Party {
    /// A party with no goals and a fully flexible offer.
    pub fn new(id: PartyId, name: impl Into<String>) -> Party {
        Party {
            id,
            name: name.into(),
            goals: Vec::new(),
            offer: PartialInstance::new(),
        }
    }

    /// Add goals (builder style).
    pub fn with_goals(mut self, goals: impl IntoIterator<Item = NamedGoal>) -> Party {
        self.goals.extend(goals);
        self
    }

    /// Set the offer (builder style).
    pub fn with_offer(mut self, offer: PartialInstance) -> Party {
        self.offer = offer;
        self
    }

    /// The hard goals only.
    pub fn hard_goals(&self) -> impl Iterator<Item = &NamedGoal> {
        self.goals.iter().filter(|g| g.hard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let p = Party::new(PartyId(0), "k8s-admin")
            .with_goals([
                NamedGoal::hard("g1", Formula::True),
                NamedGoal::soft("g2", Formula::False),
            ])
            .with_offer(PartialInstance::new());
        assert_eq!(p.name, "k8s-admin");
        assert_eq!(p.goals.len(), 2);
        assert_eq!(p.hard_goals().count(), 1);
        assert!(p.goals[0].hard);
        assert!(!p.goals[1].hard);
    }
}
