//! The traditional single-party synthesis baseline (Fig. 6).
//!
//! "Traditional approaches to configuration synthesis would configure
//! the two systems independently, which is unhelpful in this context
//! because the problem lies in their interaction. … existing monolithic
//! synthesis approaches fail to resolve these conflicts, as the union of
//! the two property sets is unsatisfiable" (Secs. 2–3). This module
//! implements that baseline for experiment E5: one synthesis query over
//! the union of all goals, with **no** per-goal groups, no envelopes and
//! no blame — on conflict it can only say "fail".

use muppet_logic::{Domain, Instance, PartyId};
use muppet_solver::{FormulaGroup, Outcome};
use std::collections::BTreeMap;

use crate::party::Party;
use crate::session::{MuppetError, ReconcileMode, Session};

/// The baseline's (information-poor) answer.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Did monolithic synthesis find a configuration?
    pub success: bool,
    /// The per-party configurations on success.
    pub configs: BTreeMap<PartyId, Instance>,
    /// Solver conflicts spent (for the E5 cost comparison).
    pub conflicts: u64,
}

/// Run monolithic synthesis: all goals as one opaque property set.
///
/// Offers enter as hard bounds (the baseline has no notion of blameable
/// commitments). On failure there is deliberately no core — that is the
/// point of the comparison.
pub fn monolithic_synthesis(session: &Session<'_>) -> Result<BaselineReport, MuppetError> {
    // The session-standard query builder supplies the free relations,
    // fixed structure, axiom group and solver settings — the baseline
    // differs from reconciliation only in lumping every goal into one
    // opaque unnamed-blame group.
    let mut q = session.new_query();
    let refs: Vec<&Party> = session.parties().iter().collect();
    let (bounds, _commitments) = session.merge_offers(&refs, ReconcileMode::HardBounds);
    q.set_bounds(bounds);
    let mut formulas = Vec::new();
    for p in session.parties() {
        for g in &p.goals {
            formulas.push(g.formula.clone());
        }
    }
    q.add_group(FormulaGroup::new("all goals (monolithic)", formulas));
    let (outcome, _attempts) =
        session.run_budgeted(&mut q, |q| q.solve(), Outcome::is_unknown)?;
    match outcome {
        Outcome::Sat { solution, stats } => {
            let configs = session
                .parties()
                .iter()
                .map(|p| {
                    (
                        p.id,
                        solution.restrict_to_domain(session.vocab(), Domain::Party(p.id)),
                    )
                })
                .collect();
            Ok(BaselineReport {
                success: true,
                configs,
                conflicts: stats.conflicts,
            })
        }
        Outcome::Unsat { stats, .. } => Ok(BaselineReport {
            success: false,
            configs: BTreeMap::new(),
            conflicts: stats.conflicts,
        }),
        // The baseline has no degradation story — that is the point of
        // the comparison — so exhaustion is a hard error.
        Outcome::Unknown { phase, stats, .. } => {
            Err(MuppetError::Exhausted { phase, stats })
        }
    }
}

/// Convenience for E5: does the baseline agree with Muppet's
/// reconciliation verdict? (It must — both decide the same SAT
/// question; only the *information content* of failures differs.)
pub fn verdicts_agree(session: &Session<'_>) -> Result<bool, MuppetError> {
    let baseline = monolithic_synthesis(session)?;
    let muppet = session.reconcile(ReconcileMode::HardBounds)?;
    Ok(baseline.success == muppet.success)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::{NamedGoal, Party};
    use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
    use muppet_mesh::MeshVocab;

    fn session<'a>(mv: &'a MeshVocab, rows: &[IstioGoal]) -> Session<'a> {
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).unwrap();
        let istio_goals = translate_istio_goals(rows, mv, &mut vocab).unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut s = Session::new(&mv.universe, vocab, Instance::new());
        s.add_axioms(axioms);
        s.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        s.add_party(
            Party::new(mv.istio_party, "istio-admin")
                .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
        );
        s
    }

    #[test]
    fn baseline_fails_opaquely_on_the_paper_conflict() {
        let mv = MeshVocab::paper_example();
        let s = session(&mv, &IstioGoal::fig3());
        let report = monolithic_synthesis(&s).unwrap();
        assert!(!report.success);
        assert!(report.configs.is_empty());
        // Muppet, on the same instance, localizes the conflict.
        let rec = s.reconcile(crate::session::ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success);
        assert_eq!(rec.core.len(), 2);
        assert!(verdicts_agree(&s).unwrap());
    }

    #[test]
    fn baseline_succeeds_when_goals_are_compatible() {
        let mv = MeshVocab::paper_example();
        let s = session(&mv, &IstioGoal::fig4());
        let report = monolithic_synthesis(&s).unwrap();
        assert!(report.success);
        let mut combined = s.structure().clone();
        for c in report.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in s.check_goals(&combined) {
            assert!(holds, "{name}");
        }
        assert!(verdicts_agree(&s).unwrap());
    }
}
