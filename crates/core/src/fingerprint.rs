//! Stable content fingerprints for sessions, goals and configurations.
//!
//! The hasher itself ([`Fingerprinter`]) lives in
//! [`muppet_logic::fingerprint`] so the solver's incremental engine can
//! key its subformula caches on the same digests (DESIGN.md §13). This
//! module re-exports it and adds the session-layer walks — goals and
//! parties — as the [`FingerprintExt`] extension trait.

pub use muppet_logic::fingerprint::{hex, parse_hex, Fingerprinter};

use crate::party::{NamedGoal, Party};

/// Session-layer extension: fold goals and parties into a
/// [`Fingerprinter`] in canonical order.
pub trait FingerprintExt {
    /// Fold in a named goal: name, hardness and formula.
    fn add_goal(&mut self, g: &NamedGoal) -> &mut Self;

    /// Fold in a party: id, name, goals and offer.
    fn add_party(&mut self, p: &Party) -> &mut Self;
}

impl FingerprintExt for Fingerprinter {
    fn add_goal(&mut self, g: &NamedGoal) -> &mut Self {
        self.add_str(&g.name);
        self.add_bool(g.hard);
        self.add_hash(&g.formula)
    }

    fn add_party(&mut self, p: &Party) -> &mut Self {
        self.add_hash(&p.id);
        self.add_str(&p.name);
        self.add_u64(p.goals.len() as u64);
        for g in &p.goals {
            self.add_goal(g);
        }
        self.add_partial(&p.offer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{Domain, Formula, PartyId, Term, Universe, Vocabulary};

    #[test]
    fn deterministic_and_sensitive() {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let a = u.add_atom(s, "a");
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s], Domain::Party(PartyId(0)));
        let goal = NamedGoal::hard("g", Formula::pred(r, [Term::Const(a)]));
        let fp = |goal: &NamedGoal| {
            let mut f = Fingerprinter::new();
            f.add_universe(&u).add_vocab(&v).add_goal(goal);
            f.digest()
        };
        assert_eq!(fp(&goal), fp(&goal), "same content, same digest");
        let other = NamedGoal::hard("g2", Formula::pred(r, [Term::Const(a)]));
        assert_ne!(fp(&goal), fp(&other), "renamed goal must differ");
        let soft = NamedGoal::soft("g", Formula::pred(r, [Term::Const(a)]));
        assert_ne!(fp(&goal), fp(&soft), "hardness is part of identity");
    }
}
