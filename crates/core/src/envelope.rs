//! Envelopes: the interface each party needs the others to satisfy.
//!
//! "We use the notation `E_{K8s→Istio}` to mean the conditions the Istio
//! administrator must satisfy in order to be compatible with the K8s
//! administrator's goals. An envelope is represented as a necessary and
//! sufficient set of predicates" (Sec. 3). Envelopes can be *applied* to
//! a recipient's configuration, *compared* with the recipient's goals
//! (both are formula sets), or *combined* with the recipient's goals as
//! synthesis input — all three uses are methods here or on
//! [`crate::Session`].

use std::collections::BTreeMap;

use muppet_logic::{
    evaluate_closed, AtomId, Formula, Instance, PartyId, Universe, VarId, Vocabulary,
};
use muppet_solver::FormulaGroup;

/// One predicate of an envelope, with provenance.
#[derive(Clone, Debug)]
pub struct EnvelopePredicate {
    /// The goal (by name) this predicate descends from.
    pub source_goal: String,
    /// The party whose goal imposed this obligation. In two-party
    /// envelopes this is always the sender; in multi-source envelopes
    /// (`E_{{A,B}→C}`, Sec. 7) it "separat\[es\] out the source of
    /// obligations to focus negotiation".
    pub obligated_by: PartyId,
    /// The predicate: a formula over the recipient's domain and shared
    /// structure only.
    pub formula: Formula,
    /// Pretty names for quantified variables.
    pub var_names: Vec<(VarId, String)>,
}

/// An envelope `E_{S→to}`.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender parties (one for Fig. 7's `E_{A→B}`, several for the
    /// Sec. 7 multi-party extension).
    pub from: Vec<PartyId>,
    /// Recipient party.
    pub to: PartyId,
    /// The predicate set. Empty means the recipient is unconstrained.
    pub predicates: Vec<EnvelopePredicate>,
    /// Goals (by name) of the sender that are *unsatisfiable for every
    /// recipient configuration* given the sender's fixed settings — the
    /// conflict is not in the recipient's hands.
    pub impossible: Vec<String>,
    /// Sender goals whose recipient-free residue is already violated by
    /// the sender's own fixed configuration.
    pub residual_violations: Vec<String>,
    /// Goals whose recipient-relevant obligations are already guaranteed
    /// by the sender's fixed configuration alone (their predicates
    /// partial-evaluated to *true* and were dropped). An envelope that is
    /// trivial because of this is good news, not missing data.
    pub self_satisfied: Vec<String>,
}

/// The privacy cost of an envelope (Sec. 7, *Configuration Privacy*):
/// how much of the sender's configuration the recipient can learn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakageReport {
    /// Distinct concrete atoms (services, ports) revealed by the
    /// predicates. In the paper's example "the envelope revealed the
    /// special status of port 23, but little else".
    pub revealed_atoms: Vec<String>,
    /// Total formula size (AST nodes) across predicates.
    pub formula_size: usize,
    /// Number of predicates.
    pub predicates: usize,
}

impl Envelope {
    /// Is the envelope trivially satisfied (no predicates, nothing
    /// impossible)?
    pub fn is_trivial(&self) -> bool {
        self.predicates.is_empty() && self.impossible.is_empty()
    }

    /// Check a concrete recipient configuration (unioned with the shared
    /// structure) against the envelope. Returns the indices of failing
    /// predicates — empty means compatible.
    ///
    /// This is the first envelope use of Sec. 3: "they can be applied to
    /// a recipient's configuration".
    pub fn check(
        &self,
        recipient_config_with_structure: &Instance,
        universe: &Universe,
    ) -> Vec<usize> {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                !evaluate_closed(&p.formula, recipient_config_with_structure, universe)
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The envelope as named formula groups, for use in solver queries
    /// (synthesis against the envelope, Fig. 8). Group names carry the
    /// provenance so blame reads "envelope from k8s-admin: k8s goal 1".
    ///
    /// Group identity is by name + formula content, which is what makes
    /// envelopes cheap on the warm engine (DESIGN.md §13): when a
    /// revision leaves a predicate untouched, the re-derived group
    /// content-hashes to the one already encoded and its CNF is reused
    /// verbatim; only genuinely changed predicates re-encode.
    pub fn to_groups(&self, party_names: &BTreeMap<PartyId, String>) -> Vec<FormulaGroup> {
        self.predicates
            .iter()
            .map(|p| {
                let sender = party_names
                    .get(&p.obligated_by)
                    .cloned()
                    .unwrap_or_else(|| p.obligated_by.to_string());
                FormulaGroup::new(
                    format!("envelope from {}: {}", sender, p.source_goal),
                    vec![p.formula.clone()],
                )
            })
            .collect()
    }

    /// Render all predicates in Alloy-ish syntax (Fig. 5, code half).
    pub fn render_alloy(&self, vocab: &Vocabulary, universe: &Universe) -> String {
        let mut out = String::new();
        for p in &self.predicates {
            let mut printer = muppet_logic::pretty::Printer::new(vocab, universe);
            for (v, n) in &p.var_names {
                printer.name_var(*v, n.clone());
            }
            out.push_str(&format!("// from goal: {}\n", p.source_goal));
            out.push_str(&printer.alloy(&p.formula));
            out.push('\n');
        }
        out
    }

    /// Render all predicates as numbered English (Fig. 5, prose half).
    pub fn render_english(&self, vocab: &Vocabulary, universe: &Universe) -> String {
        let mut out = String::new();
        for p in &self.predicates {
            let mut printer = muppet_logic::pretty::Printer::new(vocab, universe);
            for (v, n) in &p.var_names {
                printer.name_var(*v, n.clone());
            }
            out.push_str(&printer.english_numbered(&p.formula));
        }
        out
    }

    /// Compute the leakage report (Sec. 7 privacy metric).
    pub fn leakage(&self, universe: &Universe) -> LeakageReport {
        let mut atoms: Vec<AtomId> = Vec::new();
        let mut size = 0usize;
        for p in &self.predicates {
            size += p.formula.size();
            for a in p.formula.constants() {
                if !atoms.contains(&a) {
                    atoms.push(a);
                }
            }
        }
        LeakageReport {
            revealed_atoms: atoms
                .into_iter()
                .map(|a| universe.atom_name(a).to_string())
                .collect(),
            formula_size: size,
            predicates: self.predicates.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_logic::{Domain, Term};

    fn tiny() -> (Universe, Vocabulary, Formula, AtomId) {
        let mut u = Universe::new();
        let s = u.add_sort("S");
        let a = u.add_atom(s, "a");
        u.add_atom(s, "b");
        let mut v = Vocabulary::new();
        let r = v.add_simple_rel("r", vec![s], Domain::Party(PartyId(1)));
        let f = Formula::pred(r, [Term::Const(a)]);
        (u, v, f, a)
    }

    fn envelope_with(f: Formula) -> Envelope {
        Envelope {
            from: vec![PartyId(0)],
            to: PartyId(1),
            predicates: vec![EnvelopePredicate {
                source_goal: "g".into(),
                obligated_by: PartyId(0),
                formula: f,
                var_names: vec![],
            }],
            impossible: vec![],
            residual_violations: vec![],
            self_satisfied: vec![],
        }
    }

    #[test]
    fn check_reports_failing_predicates() {
        let (u, v, f, a) = tiny();
        let env = envelope_with(f);
        let empty = Instance::new();
        assert_eq!(env.check(&empty, &u), vec![0]);
        let mut ok = Instance::new();
        ok.insert(v.rel_by_name("r").unwrap(), vec![a]);
        assert!(env.check(&ok, &u).is_empty());
        assert!(!env.is_trivial());
    }

    #[test]
    fn groups_carry_provenance() {
        let (_, _, f, _) = tiny();
        let env = envelope_with(f);
        let mut names = BTreeMap::new();
        names.insert(PartyId(0), "k8s-admin".to_string());
        let groups = env.to_groups(&names);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].name, "envelope from k8s-admin: g");
        // Unknown party falls back to the id.
        let groups = env.to_groups(&BTreeMap::new());
        assert!(groups[0].name.contains("party0"));
    }

    #[test]
    fn leakage_counts_constants_once() {
        let (u, _, f, _) = tiny();
        let mut env = envelope_with(f.clone());
        env.predicates.push(EnvelopePredicate {
            source_goal: "g2".into(),
            obligated_by: PartyId(0),
            formula: Formula::not(f),
            var_names: vec![],
        });
        let report = env.leakage(&u);
        assert_eq!(report.predicates, 2);
        assert_eq!(report.revealed_atoms, vec!["a".to_string()]);
        assert_eq!(report.formula_size, 3);
    }

    #[test]
    fn trivial_envelope() {
        let env = Envelope {
            from: vec![PartyId(0)],
            to: PartyId(1),
            predicates: vec![],
            impossible: vec![],
            residual_violations: vec![],
            self_satisfied: vec![],
        };
        assert!(env.is_trivial());
        let (u, _, _, _) = tiny();
        assert!(env.check(&Instance::new(), &u).is_empty());
        assert_eq!(env.leakage(&u).predicates, 0);
    }
}
