//! # muppet — solver-aided multi-party configuration
//!
//! The primary contribution of *Solver-Aided Multi-Party Configuration*
//! (HotNets '20), reimplemented in full:
//!
//! * **Parties and sessions** ([`Party`], [`Session`]): administrators
//!   with goals (bounded FOL, usually translated from CSV goal tables by
//!   `muppet-goals`) and partial-configuration offers (`C??` — holes and
//!   soft settings as [`muppet_logic::PartialInstance`] bounds).
//! * **Alg. 1 — local consistency** ([`Session::local_consistency`]):
//!   can the party's offer be completed (together with *some* choice for
//!   everyone else) so that its own goals hold?
//! * **Alg. 2 — reconciliation** ([`Session::reconcile`]): can all
//!   offers be extended to total configurations that jointly satisfy all
//!   goals? Failure yields *blame*: a minimal core of goal rows and
//!   committed settings.
//! * **Alg. 3 — envelope extraction** ([`Session::compute_envelope`]):
//!   decompose the sender's goals, keep the subformulas touching the
//!   recipient's domain, substitute the sender's concrete settings
//!   (partial evaluation with a uniformity pre-pass), and simplify. The
//!   result ([`Envelope`]) renders in Alloy syntax and numbered English —
//!   both presentations of the paper's Fig. 5.
//! * **Conformance workflow** (Fig. 7, [`conformance`]): provider
//!   computes an envelope once; the tenant checks, synthesizes, revises
//!   (Fig. 8: minimal-edit counter-offers via target-oriented solving,
//!   unsat cores with blame) and reconciles.
//! * **Negotiation workflow** (Fig. 9, [`negotiate`]): round-robin
//!   offers/counter-offers between any number of parties, mediated by
//!   the solver, with pluggable revision strategies.
//! * **Monolithic baseline** (Fig. 6, [`baseline`]): the traditional
//!   single-shot synthesis Muppet improves on — fails without
//!   localization when goals conflict.
//! * **Extensions from Sec. 7**: more than two parties (the negotiation
//!   cycle is k-ary; [`Session::compute_multi_envelope`] builds
//!   `E_{{A,B}→C}` with per-sender obligation tags) and the
//!   configuration-privacy **leakage metric** ([`Envelope::leakage`])
//!   with simplification as the mitigation the paper proposes.
//! * **Resource governance**: every session query runs under a
//!   [`Budget`] (wall-clock deadline, conflict/propagation caps,
//!   cooperative cancellation) with a [`RetryPolicy`] escalation
//!   schedule ([`Session::set_budget`], [`Session::set_retry_policy`]).
//!   Exhaustion degrades to structured [`ExhaustionReport`]s carrying
//!   the pipeline phase, work counters and any partial result — never a
//!   hang or an information-free error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod conformance;
mod envelope;
pub mod explain;
pub mod fingerprint;
pub mod learn;
pub mod negotiate;
mod party;
mod session;

pub use envelope::{Envelope, EnvelopePredicate, LeakageReport};
pub use fingerprint::Fingerprinter;
pub use muppet_solver::{
    default_threads, Budget, CancelToken, Exhaustion, Phase, PortfolioConfig, PortfolioSummary,
    PreparedStore, QueryStats, RetryPolicy,
};
pub use party::{NamedGoal, Party};
pub use session::{
    ConsistencyReport, ExhaustionReport, MuppetError, Reconciliation, ReconcileMode, Session,
};
