//! Sessions: the shared context for Algs. 1–3.

use std::collections::BTreeMap;
use std::fmt;

use muppet_logic::{
    decompose, nnf, partial_eval, simplify, Domain, Formula, Instance, PartialInstance, PartyId,
    RelId, Term, Universe, Vocabulary,
};
use muppet_solver::{
    Budget, FormulaGroup, GroupId, Outcome, PartialResult, Phase, PortfolioConfig,
    PrepareError, PreparedQuery, PreparedStore, Query, QueryError, QueryStats, RetryPolicy,
};

use crate::envelope::{Envelope, EnvelopePredicate};
use crate::fingerprint::{FingerprintExt, Fingerprinter};
use crate::party::Party;

/// Errors from session operations.
#[derive(Debug)]
pub enum MuppetError {
    /// Underlying solver/query failure.
    Query(QueryError),
    /// A party id was not registered in the session.
    UnknownParty(PartyId),
    /// A solver budget was exhausted in a context with no graceful
    /// degradation channel (e.g. envelope learning), with the work
    /// counters at the point of exhaustion.
    Exhausted {
        /// Pipeline phase that ran out of budget.
        phase: Phase,
        /// Solver work counters at exhaustion.
        stats: QueryStats,
    },
}

impl fmt::Display for MuppetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuppetError::Query(e) => write!(f, "{e}"),
            MuppetError::UnknownParty(p) => write!(f, "unknown party {p}"),
            MuppetError::Exhausted { phase, stats } => {
                write!(f, "solver budget exhausted at phase {phase} ({stats})")
            }
        }
    }
}

impl std::error::Error for MuppetError {}

impl From<QueryError> for MuppetError {
    fn from(e: QueryError) -> MuppetError {
        MuppetError::Query(e)
    }
}

/// Why (and where) a session query gave up instead of answering.
///
/// Attached to [`ConsistencyReport`] and [`Reconciliation`] when every
/// retry attempt came back unknown: the verdict fields then mean "not
/// proven", not "no". Callers that need a definite answer should raise
/// the budget ([`Session::set_budget`]) or allow more escalation
/// attempts ([`Session::set_retry_policy`]) and re-run.
#[derive(Clone, Debug)]
pub struct ExhaustionReport {
    /// Pipeline phase that ran out of budget on the final attempt.
    pub phase: Phase,
    /// Solver work counters at exhaustion.
    pub stats: QueryStats,
    /// Solve attempts made (1 = no retries configured or possible).
    pub attempts: u32,
}

impl fmt::Display for ExhaustionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted at phase {} after {} attempt(s) ({})",
            self.phase, self.attempts, self.stats
        )
    }
}

/// Result of a local-consistency check (Alg. 1).
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// Can the offer be completed so the party's goals hold?
    pub ok: bool,
    /// On success: a completion of the party's own relations that (with
    /// some choice for everyone else) satisfies its goals. This is the
    /// `r.C_A` Alg. 1 returns, and what conformance uses as the
    /// provider's fixed configuration.
    pub witness: Option<Instance>,
    /// On failure: minimal blame — goal names (and axiom/commitment
    /// group names) that jointly conflict.
    pub core: Vec<String>,
    /// Solver work counters.
    pub stats: QueryStats,
    /// Present when the budget ran out before a verdict: `ok` is then
    /// "not proven" and `core` holds the best (possibly unminimized)
    /// partial core, if any.
    pub exhausted: Option<ExhaustionReport>,
}

/// Result of offer reconciliation (Alg. 2).
#[derive(Clone, Debug)]
pub struct Reconciliation {
    /// Did reconciliation succeed?
    pub success: bool,
    /// On success: the delivered total configuration of each party
    /// (`deliver C_A, C_B` in Figs. 7 and 9).
    pub configs: BTreeMap<PartyId, Instance>,
    /// On failure: minimal blame across *all* parties' goals and (in
    /// [`ReconcileMode::Blameable`]) committed settings.
    pub core: Vec<String>,
    /// Solver work counters.
    pub stats: QueryStats,
    /// Present when the budget ran out before a verdict: `success` is
    /// then "not proven" and `core` holds the best (possibly
    /// unminimized) partial core, if any.
    pub exhausted: Option<ExhaustionReport>,
}

/// How offers' hard settings enter the reconciliation query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconcileMode {
    /// Lower bounds are hard solver bounds: fast, but conflicts cannot
    /// blame individual committed settings.
    HardBounds,
    /// Lower bounds become named "committed settings" groups so that
    /// unsat cores can blame them alongside goals (the paper's
    /// "feedback … with blame information").
    Blameable,
}

/// A Muppet session: universe, vocabulary, shared structure, axioms and
/// parties. All of Algs. 1–3 are methods here.
pub struct Session<'a> {
    universe: &'a Universe,
    vocab: Vocabulary,
    structure: Instance,
    axioms: Vec<Formula>,
    parties: Vec<Party>,
    symmetry_breaking: bool,
    budget: Budget,
    retry: RetryPolicy,
    portfolio: Option<PortfolioConfig>,
}

impl<'a> Session<'a> {
    /// Create a session over a universe/vocabulary with the given fixed
    /// structure instance.
    pub fn new(universe: &'a Universe, vocab: Vocabulary, structure: Instance) -> Session<'a> {
        Session {
            universe,
            vocab,
            structure,
            axioms: Vec::new(),
            parties: Vec::new(),
            symmetry_breaking: false,
            budget: Budget::unlimited(),
            retry: RetryPolicy::default(),
            portfolio: None,
        }
    }

    /// Set the resource budget applied to every solver query this
    /// session runs. Wall-clock deadlines and cancellation tokens are
    /// shared across retry attempts (they are absolute); conflict caps
    /// apply per attempt and combine with the retry policy's escalation
    /// schedule (the smaller cap wins).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The session's query budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Set the escalation schedule for retrying queries that come back
    /// unknown: attempt `i` gets `initial_conflicts * luby(i)`
    /// conflicts, up to `max_attempts` tries. The default is a single
    /// uncapped attempt.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The session's retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Run a budgeted query closure under the session's retry policy.
    /// Re-runs while the result is unknown, attempts remain, and the
    /// shared deadline/cancellation has not already fired (retrying
    /// past an absolute deadline cannot help). Returns the final
    /// result and the number of attempts made.
    pub(crate) fn run_budgeted<T>(
        &self,
        q: &mut Query,
        mut run: impl FnMut(&mut Query) -> Result<T, QueryError>,
        unknown: impl Fn(&T) -> bool,
    ) -> Result<(T, u32), MuppetError> {
        let attempts = self.retry.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            let mut budget = self.budget.clone();
            if let Some(cap) = self.retry.conflict_cap(attempt) {
                let cap = match budget.conflict_cap() {
                    Some(own) => own.min(cap),
                    None => cap,
                };
                budget.set_conflict_cap(Some(cap));
            }
            q.set_budget(budget);
            let mut attempt_span = muppet_obs::span("attempt");
            attempt_span.record("attempt", u64::from(attempt));
            let out = run(q)?;
            drop(attempt_span);
            if unknown(&out) && attempt < attempts && self.budget.poll().is_none() {
                attempt += 1;
                continue;
            }
            return Ok((out, attempt));
        }
    }

    /// Run the search phase of satisfiability queries on a parallel
    /// portfolio of `n` diversified solvers racing over a shared
    /// learned-clause pool. `n <= 1` restores plain sequential solving.
    /// Verdicts are identical either way; only wall-clock time and the
    /// reported work counters differ. Grounding, encoding, core
    /// shrinking, target optimization and enumeration stay sequential.
    pub fn set_threads(&mut self, n: usize) {
        self.portfolio = if n > 1 {
            Some(PortfolioConfig::with_threads(n))
        } else {
            None
        };
    }

    /// Full control over the portfolio configuration (worker count,
    /// deterministic mode, clause-sharing thresholds). `None` or a
    /// non-parallel config solves sequentially.
    pub fn set_portfolio(&mut self, portfolio: Option<PortfolioConfig>) {
        self.portfolio = portfolio.filter(PortfolioConfig::is_parallel);
    }

    /// The session's portfolio configuration, if parallel search is on.
    pub fn portfolio(&self) -> Option<&PortfolioConfig> {
        self.portfolio.as_ref()
    }

    /// Enable interchangeable-atom symmetry breaking for the session's
    /// satisfiability queries (Alg. 1/2 and envelope-side synthesis).
    /// Minimal-edit queries are unaffected — they must see the full
    /// model space. Most useful when the universe carries spare ports
    /// for ∃-port goals.
    pub fn set_symmetry_breaking(&mut self, enable: bool) {
        self.symmetry_breaking = enable;
    }

    /// Add domain well-formedness axioms (always included as a hard
    /// group named `"structural axioms"`).
    pub fn add_axioms(&mut self, axioms: impl IntoIterator<Item = Formula>) {
        self.axioms.extend(axioms);
    }

    /// The registered axioms.
    pub fn axioms(&self) -> &[Formula] {
        &self.axioms
    }

    /// Register a party.
    pub fn add_party(&mut self, party: Party) {
        self.parties.push(party);
    }

    /// The registered parties.
    pub fn parties(&self) -> &[Party] {
        &self.parties
    }

    /// Look up a party.
    pub fn party(&self, id: PartyId) -> Result<&Party, MuppetError> {
        self.parties
            .iter()
            .find(|p| p.id == id)
            .ok_or(MuppetError::UnknownParty(id))
    }

    /// Mutable party lookup (for negotiation revisions).
    pub fn party_mut(&mut self, id: PartyId) -> Result<&mut Party, MuppetError> {
        self.parties
            .iter_mut()
            .find(|p| p.id == id)
            .ok_or(MuppetError::UnknownParty(id))
    }

    /// Party id → display-name map.
    pub fn party_names(&self) -> BTreeMap<PartyId, String> {
        self.parties
            .iter()
            .map(|p| (p.id, p.name.clone()))
            .collect()
    }

    /// The vocabulary (including any fresh variables created so far).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The universe.
    pub fn universe(&self) -> &Universe {
        self.universe
    }

    /// The shared structure instance.
    pub fn structure(&self) -> &Instance {
        &self.structure
    }

    /// The relations owned by a party's configuration domain.
    pub fn owned_rels(&self, id: PartyId) -> Vec<RelId> {
        self.vocab
            .rels()
            .filter(|(_, d)| d.owner == Domain::Party(id))
            .map(|(r, _)| r)
            .collect()
    }

    fn all_party_rels(&self) -> Vec<RelId> {
        self.parties
            .iter()
            .flat_map(|p| self.owned_rels(p.id))
            .collect()
    }

    pub(crate) fn axiom_group(&self) -> FormulaGroup {
        FormulaGroup::new("structural axioms", self.axioms.clone())
    }

    /// The session-standard one-shot satisfiability query: all party
    /// relations free, structure fixed, the session's symmetry and
    /// portfolio settings applied, and the axiom group added first.
    /// Every cold Alg. 1/2 call site (and the E5 baseline) builds on
    /// this, so solver defaults cannot drift between them.
    pub(crate) fn new_query(&self) -> Query<'_> {
        let mut q = Query::new(&self.vocab, self.universe);
        q.free_rels(self.all_party_rels())
            .set_fixed(self.structure.clone())
            .set_symmetry_breaking(self.symmetry_breaking)
            .set_portfolio(self.portfolio)
            .add_group(self.axiom_group());
        q
    }

    /// The session-standard target-oriented query over one party's own
    /// relations: full model space (no symmetry breaking — lex-leader
    /// pruning would hide the true nearest model) and the axiom group
    /// added first. Minimal-edit call sites build on this.
    pub(crate) fn edit_query(&self, owner: PartyId) -> Query<'_> {
        let mut q = Query::new(&self.vocab, self.universe);
        q.free_rels(self.owned_rels(owner))
            .set_fixed(self.structure.clone())
            .add_group(self.axiom_group());
        q
    }

    /// A one-shot query over a custom free-relation set and fixed
    /// instance — the shape envelope learning uses (scope-bounded
    /// recipient relations, sender config folded into the fixed
    /// instance). Model-space complete: no symmetry breaking; the
    /// session's portfolio still accelerates the search phase without
    /// changing verdicts.
    pub(crate) fn scoped_query(&self, free: &[RelId], fixed: Instance) -> Query<'_> {
        let mut q = Query::new(&self.vocab, self.universe);
        q.free_rels(free.iter().copied())
            .set_fixed(fixed)
            .set_portfolio(self.portfolio);
        q
    }

    pub(crate) fn goal_groups(&self, party: &Party) -> Vec<FormulaGroup> {
        party
            .goals
            .iter()
            .map(|g| {
                // Tagged with the party id: the display name is only a
                // label, so renaming a party can never alias another
                // party's cached group encodings.
                FormulaGroup::new(
                    format!("{}: {}", party.name, g.name),
                    vec![g.formula.clone()],
                )
                .with_tag(u64::from(party.id.0))
            })
            .collect()
    }

    /// Merge offers of the given parties into one bounds object. In
    /// blameable mode, lower bounds are returned as commitment groups
    /// instead of bounds.
    pub(crate) fn merge_offers(
        &self,
        parties: &[&Party],
        mode: ReconcileMode,
    ) -> (PartialInstance, Vec<FormulaGroup>) {
        let mut bounds = PartialInstance::new();
        let mut groups = Vec::new();
        for p in parties {
            let mut committed = Vec::new();
            for rel in p.offer.bounded_rels() {
                bounds.bound(rel);
                for t in p.offer.upper(rel) {
                    bounds.permit(rel, t.clone());
                }
                for t in p.offer.lower(rel) {
                    match mode {
                        ReconcileMode::HardBounds => bounds.require(rel, t.clone()),
                        ReconcileMode::Blameable => {
                            committed.push(Formula::pred(
                                rel,
                                t.iter().map(|&a| Term::Const(a)),
                            ));
                        }
                    }
                }
            }
            if !committed.is_empty() {
                groups.push(
                    FormulaGroup::new(
                        format!("{}: committed settings", p.name),
                        committed,
                    )
                    .with_tag(u64::from(p.id.0)),
                );
            }
        }
        (bounds, groups)
    }

    /// **Alg. 1 — local consistency.** Can `C??_A` be completed (with
    /// some configuration for everyone else) so that φ_A holds?
    pub fn local_consistency(&self, id: PartyId) -> Result<ConsistencyReport, MuppetError> {
        let party = self.party(id)?;
        let mut op_span = muppet_obs::span("consistency");
        op_span.attr("party", party.name.clone());
        let mut q = self.new_query();
        let (bounds, commit_groups) = self.merge_offers(&[party], ReconcileMode::HardBounds);
        q.set_bounds(bounds);
        for g in commit_groups {
            q.add_group(g);
        }
        for g in self.goal_groups(party) {
            q.add_group(g);
        }
        let (outcome, attempts) = self.run_budgeted(&mut q, |q| q.solve(), Outcome::is_unknown)?;
        op_span.record("attempts", u64::from(attempts));
        drop(op_span);
        Ok(self.consistency_report(id, outcome, attempts))
    }

    /// Warm-path **Alg. 1**: identical verdicts to
    /// [`Session::local_consistency`], but grounding/encoding state is
    /// kept alive in `store` and reused across calls whose vocabulary,
    /// universe, structure and offer bounds are unchanged — a repeat
    /// check re-encodes only groups whose content actually changed.
    /// Symmetry-breaking sessions fall back to the cold path (lex
    /// clauses are permanent and would poison reuse).
    pub fn local_consistency_warm(
        &self,
        id: PartyId,
        store: &mut PreparedStore,
    ) -> Result<ConsistencyReport, MuppetError> {
        if self.symmetry_breaking {
            return self.local_consistency(id);
        }
        let party = self.party(id)?;
        let mut op_span = muppet_obs::span("consistency");
        op_span.attr("party", party.name.clone());
        op_span.attr("warm", "true");
        let (bounds, commit_groups) = self.merge_offers(&[party], ReconcileMode::HardBounds);
        let mut groups = vec![self.axiom_group()];
        groups.extend(commit_groups);
        groups.extend(self.goal_groups(party));
        let (outcome, attempts) = self.run_warm(store, &bounds, &groups)?;
        op_span.record("attempts", u64::from(attempts));
        drop(op_span);
        Ok(self.consistency_report(id, outcome, attempts))
    }

    /// Map a solve outcome onto the Alg. 1 report shape.
    fn consistency_report(
        &self,
        id: PartyId,
        outcome: Outcome,
        attempts: u32,
    ) -> ConsistencyReport {
        match outcome {
            Outcome::Sat { solution, stats } => ConsistencyReport {
                ok: true,
                witness: Some(solution.restrict_to_domain(&self.vocab, Domain::Party(id))),
                core: Vec::new(),
                stats,
                exhausted: None,
            },
            Outcome::Unsat { core, stats } => ConsistencyReport {
                ok: false,
                witness: None,
                core,
                stats,
                exhausted: None,
            },
            Outcome::Unknown { phase, stats, partial } => ConsistencyReport {
                ok: false,
                witness: None,
                core: match partial {
                    Some(PartialResult::Core(core)) => core,
                    _ => Vec::new(),
                },
                stats,
                exhausted: Some(ExhaustionReport { phase, stats, attempts }),
            },
        }
    }

    /// **Alg. 2 — reconciliation.** Can all offers be extended to total
    /// configurations that jointly satisfy everyone's goals?
    pub fn reconcile(&self, mode: ReconcileMode) -> Result<Reconciliation, MuppetError> {
        let mut op_span = muppet_obs::span("reconcile");
        op_span.attr("mode", format!("{mode:?}"));
        let mut q = self.new_query();
        let refs: Vec<&Party> = self.parties.iter().collect();
        let (bounds, commit_groups) = self.merge_offers(&refs, mode);
        q.set_bounds(bounds);
        for g in commit_groups {
            q.add_group(g);
        }
        for p in &self.parties {
            for g in self.goal_groups(p) {
                q.add_group(g);
            }
        }
        let (outcome, attempts) = self.run_budgeted(&mut q, |q| q.solve(), Outcome::is_unknown)?;
        op_span.record("attempts", u64::from(attempts));
        drop(op_span);
        Ok(self.reconciliation_report(outcome, attempts))
    }

    /// Warm-path **Alg. 2**: identical verdicts to
    /// [`Session::reconcile`], with grounding/encoding state kept alive
    /// in `store` (see [`Session::local_consistency_warm`]).
    pub fn reconcile_warm(
        &self,
        mode: ReconcileMode,
        store: &mut PreparedStore,
    ) -> Result<Reconciliation, MuppetError> {
        if self.symmetry_breaking {
            return self.reconcile(mode);
        }
        let mut op_span = muppet_obs::span("reconcile");
        op_span.attr("mode", format!("{mode:?}"));
        op_span.attr("warm", "true");
        let refs: Vec<&Party> = self.parties.iter().collect();
        let (bounds, commit_groups) = self.merge_offers(&refs, mode);
        let mut groups = vec![self.axiom_group()];
        groups.extend(commit_groups);
        for p in &self.parties {
            groups.extend(self.goal_groups(p));
        }
        let (outcome, attempts) = self.run_warm(store, &bounds, &groups)?;
        op_span.record("attempts", u64::from(attempts));
        drop(op_span);
        Ok(self.reconciliation_report(outcome, attempts))
    }

    /// The `(name, content_key)` signature of every formula group a
    /// [`Session::reconcile_warm`] call would submit, in submission
    /// order: the axiom group, any commitment groups the mode derives
    /// from offers, then each party's goal groups. Diffing two
    /// sessions' signatures predicts exactly which groups a shared warm
    /// engine will re-encode — unchanged keys are reused from the
    /// incremental engine's content index — which is how the stream
    /// session maps a config delta to its dirtied groups without
    /// touching the solver (DESIGN.md §16).
    pub fn reconcile_group_signatures(&self, mode: ReconcileMode) -> Vec<(String, u128)> {
        let refs: Vec<&Party> = self.parties.iter().collect();
        let (_, commit_groups) = self.merge_offers(&refs, mode);
        let mut groups = vec![self.axiom_group()];
        groups.extend(commit_groups);
        for p in &self.parties {
            groups.extend(self.goal_groups(p));
        }
        groups
            .into_iter()
            .map(|g| {
                let key = g.content_key();
                (g.name, key)
            })
            .collect()
    }

    /// Map a solve outcome onto the Alg. 2 report shape.
    fn reconciliation_report(&self, outcome: Outcome, attempts: u32) -> Reconciliation {
        match outcome {
            Outcome::Sat { solution, stats } => {
                let configs = self
                    .parties
                    .iter()
                    .map(|p| {
                        (
                            p.id,
                            solution.restrict_to_domain(&self.vocab, Domain::Party(p.id)),
                        )
                    })
                    .collect();
                Reconciliation {
                    success: true,
                    configs,
                    core: Vec::new(),
                    stats,
                    exhausted: None,
                }
            }
            Outcome::Unsat { core, stats } => Reconciliation {
                success: false,
                configs: BTreeMap::new(),
                core,
                stats,
                exhausted: None,
            },
            Outcome::Unknown { phase, stats, partial } => Reconciliation {
                success: false,
                configs: BTreeMap::new(),
                core: match partial {
                    Some(PartialResult::Core(core)) => core,
                    _ => Vec::new(),
                },
                stats,
                exhausted: Some(ExhaustionReport { phase, stats, attempts }),
            },
        }
    }

    /// Fingerprint of everything that shapes a warm query's variable
    /// layout: universe, vocabulary, the given fixed instance, bounds
    /// and free relations. Two sessions agreeing on this key can share
    /// one [`PreparedQuery`].
    fn warm_key(&self, bounds: &PartialInstance, free: &[RelId], fixed: &Instance) -> u128 {
        let mut fp = Fingerprinter::new();
        fp.add_universe(self.universe)
            .add_vocab(&self.vocab)
            .add_instance(fixed)
            .add_partial(bounds)
            .add_hash(&free);
        fp.digest()
    }

    /// Fingerprint of the session's full semantic content — universe,
    /// vocabulary, structure, axioms, every party's goals and offer,
    /// and the symmetry flag. Daemon-level caches key on this.
    pub fn content_fingerprint(&self) -> u128 {
        let mut fp = Fingerprinter::new();
        fp.add_universe(self.universe)
            .add_vocab(&self.vocab)
            .add_instance(&self.structure)
            .add_hash(&self.axioms)
            .add_bool(self.symmetry_breaking);
        fp.add_u64(self.parties.len() as u64);
        for p in &self.parties {
            fp.add_party(p);
        }
        fp.digest()
    }

    /// The warm analogue of [`Session::run_budgeted`], generic over the
    /// engine operation: fetch (or build) the warm engine for this
    /// bounds/free/fixed shape, make sure every group is encoded, and
    /// run `op` with exactly those groups active, under the session's
    /// budget and retry escalation. `exhausted` shapes a pre-solve
    /// abort into the operation's result type; `is_unknown` drives the
    /// retry loop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_warm_op<T>(
        &self,
        store: &mut PreparedStore,
        bounds: &PartialInstance,
        free: &[RelId],
        fixed: &Instance,
        groups: &[FormulaGroup],
        mut op: impl FnMut(&mut PreparedQuery, &[GroupId], Budget) -> T,
        exhausted: impl Fn(Phase) -> T,
        is_unknown: impl Fn(&T) -> bool,
    ) -> Result<(T, u32), MuppetError> {
        let key = self.warm_key(bounds, free, fixed);
        let pq = store.get_or_build(key, || {
            PreparedQuery::new(&self.vocab, self.universe, free, bounds, fixed.clone())
        });
        pq.set_portfolio(self.portfolio);
        let attempts_max = self.retry.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            let mut budget = self.budget.clone();
            if let Some(cap) = self.retry.conflict_cap(attempt) {
                let cap = match budget.conflict_cap() {
                    Some(own) => own.min(cap),
                    None => cap,
                };
                budget.set_conflict_cap(Some(cap));
            }
            let mut attempt_span = muppet_obs::span("attempt");
            attempt_span.record("attempt", u64::from(attempt));
            attempt_span.attr("warm", "true");
            let mut active = Vec::with_capacity(groups.len());
            let mut aborted = None;
            for g in groups {
                match pq.ensure_group(g, &budget) {
                    Ok(id) => active.push(id),
                    Err(PrepareError::Ground(e)) => {
                        return Err(MuppetError::Query(QueryError::Ground(e)))
                    }
                    Err(PrepareError::Exhausted(phase)) => {
                        aborted = Some(phase);
                        break;
                    }
                }
            }
            let out = match aborted {
                Some(phase) => exhausted(phase),
                None => op(pq, &active, budget),
            };
            drop(attempt_span);
            if is_unknown(&out) && attempt < attempts_max && self.budget.poll().is_none() {
                attempt += 1;
                continue;
            }
            return Ok((out, attempt));
        }
    }

    /// Warm satisfiability solve: [`Session::run_warm_op`] specialized
    /// to the all-party-relations shape every Alg. 1/2 query uses.
    fn run_warm(
        &self,
        store: &mut PreparedStore,
        bounds: &PartialInstance,
        groups: &[FormulaGroup],
    ) -> Result<(Outcome, u32), MuppetError> {
        let free = self.all_party_rels();
        self.run_warm_op(
            store,
            bounds,
            &free,
            &self.structure,
            groups,
            |pq, active, budget| pq.solve(active, budget),
            |phase| Outcome::Unknown {
                phase,
                stats: QueryStats::default(),
                partial: None,
            },
            Outcome::is_unknown,
        )
    }

    /// Warm target-oriented solve: the probing loop of
    /// [`PreparedQuery::solve_target`] runs on the warm engine, so the
    /// cardinality encoding and learned clauses persist across a
    /// workflow's counter-offer queries.
    fn run_warm_target(
        &self,
        store: &mut PreparedStore,
        bounds: &PartialInstance,
        free: &[RelId],
        groups: &[FormulaGroup],
        target: &Instance,
    ) -> Result<((Outcome, usize), u32), MuppetError> {
        self.run_warm_op(
            store,
            bounds,
            free,
            &self.structure,
            groups,
            |pq, active, budget| pq.solve_target(active, target, budget),
            |phase| {
                (
                    Outcome::Unknown {
                        phase,
                        stats: QueryStats::default(),
                        partial: None,
                    },
                    0,
                )
            },
            |(o, _)| o.is_unknown(),
        )
    }

    /// **Alg. 3 — envelope extraction.** `E_{from→to}` modulo the
    /// sender's fixed configuration `c_from`.
    pub fn compute_envelope(
        &self,
        from: PartyId,
        to: PartyId,
        c_from: &Instance,
    ) -> Result<Envelope, MuppetError> {
        self.compute_multi_envelope(&[(from, c_from.clone())], to)
    }

    /// **Sec. 7 extension — multi-source envelopes.** `E_{S→to}` for a
    /// set `S` of senders with fixed configurations: "envelopes would
    /// also need to encapsulate the needs of multiple agents (e.g.
    /// `E_{{A,B}→C}`), which our algorithm could produce via multiple
    /// passes of substitution". Each predicate is tagged with the party
    /// whose goal imposed it.
    pub fn compute_multi_envelope(
        &self,
        senders: &[(PartyId, Instance)],
        to: PartyId,
    ) -> Result<Envelope, MuppetError> {
        self.compute_multi_envelope_opt(senders, to, true)
    }

    /// [`Session::compute_multi_envelope`] with the "elementary
    /// simplifications" switchable — ablation A1 measures what
    /// simplification buys in envelope size and configuration leakage
    /// (the paper's privacy mitigation, Sec. 7).
    pub fn compute_multi_envelope_opt(
        &self,
        senders: &[(PartyId, Instance)],
        to: PartyId,
        simplify_predicates: bool,
    ) -> Result<Envelope, MuppetError> {
        self.party(to)?;
        let mut op_span = muppet_obs::span("envelope");
        op_span.record("senders", senders.len() as u64);
        let eval_domains: std::collections::BTreeSet<Domain> =
            senders.iter().map(|(id, _)| Domain::Party(*id)).collect();
        let mut fixed_all = self.structure.clone();
        for (_, c) in senders {
            fixed_all = fixed_all.union(c);
        }
        let to_domain = Domain::Party(to);
        let mut predicates = Vec::new();
        let mut impossible = Vec::new();
        let mut residual_violations = Vec::new();
        let mut self_satisfied = Vec::new();

        for (sender_id, sender_config) in senders {
            let sender = self.party(*sender_id)?;
            for goal in &sender.goals {
                for psi in decompose(&goal.formula) {
                    if psi.mentions_domain(&self.vocab, to_domain) {
                        // subst(ψ, C_from): partial evaluation of the
                        // senders' atoms, then NNF + simplification (the
                        // paper's "elementary simplifications", which are
                        // also its privacy mitigation).
                        let raw = nnf(&partial_eval(
                            &psi,
                            sender_config,
                            &eval_domains,
                            &self.vocab,
                            self.universe,
                        ));
                        let pe = if simplify_predicates {
                            simplify(&raw)
                        } else {
                            raw
                        };
                        match pe {
                            Formula::True => self_satisfied.push(goal.name.clone()),
                            Formula::False => impossible.push(goal.name.clone()),
                            f => predicates.push(EnvelopePredicate {
                                source_goal: goal.name.clone(),
                                obligated_by: *sender_id,
                                formula: f,
                                var_names: goal.var_names.clone(),
                            }),
                        }
                    } else {
                        // Recipient-free residue: check it against the
                        // senders' fixed configurations if it involves no
                        // third party.
                        let doms = psi.domains(&self.vocab);
                        let third_party = doms.iter().any(|d| {
                            *d != Domain::Structure && !eval_domains.contains(d)
                        });
                        if !third_party && psi.free_vars().is_empty() {
                            let holds = muppet_logic::evaluate_closed(
                                &psi,
                                &fixed_all,
                                self.universe,
                            )
                            .unwrap_or(false);
                            if !holds {
                                residual_violations.push(goal.name.clone());
                            }
                        }
                    }
                }
            }
        }
        residual_violations.dedup();
        impossible.dedup();
        self_satisfied.dedup();
        // A goal is only "self-satisfied" if no predicate or
        // impossibility of the same goal remains.
        self_satisfied.retain(|g| {
            !predicates.iter().any(|p| &p.source_goal == g) && !impossible.contains(g)
        });
        op_span.record("predicates", predicates.len() as u64);
        drop(op_span);
        Ok(Envelope {
            from: senders.iter().map(|(id, _)| *id).collect(),
            to,
            predicates,
            impossible,
            residual_violations,
            self_satisfied,
        })
    }

    /// Fig. 8 solver aid: synthesize a candidate configuration for `to`
    /// that provably satisfies the received envelope *and* the party's
    /// own goals, within the party's offer bounds. Other parties'
    /// relations are treated existentially (as in Alg. 1).
    pub fn synthesize_against(
        &self,
        to: PartyId,
        envelope: &Envelope,
    ) -> Result<Outcome, MuppetError> {
        let party = self.party(to)?;
        let mut op_span = muppet_obs::span("synthesize");
        op_span.attr("party", party.name.clone());
        let mut q = self.new_query();
        let (bounds, commit_groups) = self.merge_offers(&[party], ReconcileMode::HardBounds);
        q.set_bounds(bounds);
        for g in commit_groups {
            q.add_group(g);
        }
        for g in envelope.to_groups(&self.party_names()) {
            q.add_group(g);
        }
        for g in self.goal_groups(party) {
            q.add_group(g);
        }
        let (outcome, attempts) = self.run_budgeted(&mut q, |q| q.solve(), Outcome::is_unknown)?;
        op_span.record("attempts", u64::from(attempts));
        drop(op_span);
        Ok(outcome)
    }

    /// Warm-path [`Session::synthesize_against`]: identical verdicts,
    /// with grounding/encoding state kept alive in `store` (see
    /// [`Session::local_consistency_warm`]). Symmetry-breaking sessions
    /// fall back to the cold path.
    pub fn synthesize_against_warm(
        &self,
        to: PartyId,
        envelope: &Envelope,
        store: &mut PreparedStore,
    ) -> Result<Outcome, MuppetError> {
        if self.symmetry_breaking {
            return self.synthesize_against(to, envelope);
        }
        let party = self.party(to)?;
        let mut op_span = muppet_obs::span("synthesize");
        op_span.attr("party", party.name.clone());
        op_span.attr("warm", "true");
        let (bounds, commit_groups) = self.merge_offers(&[party], ReconcileMode::HardBounds);
        let mut groups = vec![self.axiom_group()];
        groups.extend(commit_groups);
        groups.extend(envelope.to_groups(&self.party_names()));
        groups.extend(self.goal_groups(party));
        let (outcome, attempts) = self.run_warm(store, &bounds, &groups)?;
        op_span.record("attempts", u64::from(attempts));
        drop(op_span);
        Ok(outcome)
    }

    /// Fig. 8 solver aid: the *minimal edit* of `target` (the party's
    /// current or preferred configuration) that satisfies the envelope.
    /// Returns the edited configuration and the edit distance (tuple
    /// flips over the party's relations).
    pub fn minimal_edit(
        &self,
        to: PartyId,
        envelope: &Envelope,
        target: &Instance,
    ) -> Result<(Outcome, usize), MuppetError> {
        self.party(to)?;
        let mut op_span = muppet_obs::span("minimal_edit");
        let mut q = self.edit_query(to);
        for g in envelope.to_groups(&self.party_names()) {
            q.add_group(g);
        }
        let (result, attempts) = self.run_budgeted(
            &mut q,
            |q| q.solve_target(target),
            |(outcome, _)| outcome.is_unknown(),
        )?;
        op_span.record("attempts", u64::from(attempts));
        op_span.record("distance", result.1 as u64);
        drop(op_span);
        Ok(result)
    }

    /// Warm-path [`Session::minimal_edit`]: the target-oriented probing
    /// runs on the warm engine for this party's edit shape, so the
    /// cardinality (totalizer) encoding and learned clauses persist —
    /// a negotiation's counter-offer queries get cheaper round over
    /// round. Minimal-edit queries never use symmetry breaking, so
    /// (unlike the satisfiability paths) there is no cold fallback to
    /// take.
    pub fn minimal_edit_warm(
        &self,
        to: PartyId,
        envelope: &Envelope,
        target: &Instance,
        store: &mut PreparedStore,
    ) -> Result<(Outcome, usize), MuppetError> {
        self.party(to)?;
        let mut op_span = muppet_obs::span("minimal_edit");
        op_span.attr("warm", "true");
        let free = self.owned_rels(to);
        let mut groups = vec![self.axiom_group()];
        groups.extend(envelope.to_groups(&self.party_names()));
        let bounds = PartialInstance::new();
        let (result, attempts) =
            self.run_warm_target(store, &bounds, &free, &groups, target)?;
        op_span.record("attempts", u64::from(attempts));
        op_span.record("distance", result.1 as u64);
        drop(op_span);
        Ok(result)
    }

    /// Evaluate every party's goals over a complete combined instance
    /// (structure ∪ all configs). Returns `(goal name, holds)` pairs.
    /// Used to verify delivered configurations end-to-end.
    pub fn check_goals(&self, combined: &Instance) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        for p in &self.parties {
            for g in &p.goals {
                let holds =
                    muppet_logic::evaluate_closed(&g.formula, combined, self.universe)
                        .unwrap_or(false);
                out.push((format!("{}: {}", p.name, g.name), holds));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::NamedGoal;
    use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
    use muppet_mesh::MeshVocab;

    /// Build the paper's running example session: K8s admin with the
    /// Fig. 2 ban, Istio admin with the given goal rows.
    fn paper_session<'a>(mv: &'a MeshVocab, istio_rows: &[IstioGoal]) -> Session<'a> {
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).unwrap();
        let istio_goals = translate_istio_goals(istio_rows, mv, &mut vocab).unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut session = Session::new(&mv.universe, vocab, Instance::new());
        session.add_axioms(axioms);
        session.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        session.add_party(
            Party::new(mv.istio_party, "istio-admin")
                .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
        );
        session
    }

    #[test]
    fn renaming_a_party_cannot_alias_another_partys_group_keys() {
        // Cache fingerprints of goal/commitment groups must derive from
        // the stable PartyId, not the display name: if party 0 is
        // renamed to what party 1 used to be called (and handed its
        // goals), the resulting groups must NOT collide with party 1's
        // original encodings in any warm store keyed by content_key.
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        let istio = session.party(mv.istio_party).unwrap().clone();
        let istio_keys: Vec<u128> = session
            .goal_groups(&istio)
            .iter()
            .map(|g| g.content_key())
            .collect();
        // Same name, same goals, different identity (the k8s slot).
        let impostor = Party::new(mv.k8s_party, istio.name.clone())
            .with_goals(istio.goals.iter().cloned());
        let impostor_keys: Vec<u128> = session
            .goal_groups(&impostor)
            .iter()
            .map(|g| g.content_key())
            .collect();
        assert_eq!(istio_keys.len(), impostor_keys.len());
        for (a, b) in istio_keys.iter().zip(&impostor_keys) {
            assert_ne!(a, b, "party rename aliased a cached group key");
        }
        // Commitment groups are tagged the same way.
        let mut committed = istio.clone();
        committed.offer.require(mv.istio_eg_guard, vec![mv.svc_atom("test-frontend").unwrap()]);
        let mut impostor_committed = impostor.clone();
        impostor_committed.offer = committed.offer.clone();
        let (_, a) = session.merge_offers(&[&committed], ReconcileMode::Blameable);
        let (_, b) = session.merge_offers(&[&impostor_committed], ReconcileMode::Blameable);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].name, b[0].name, "display names intentionally equal");
        assert_ne!(a[0].content_key(), b[0].content_key());
    }

    #[test]
    fn e1_fig3_goals_conflict_with_port_ban() {
        // The paper's central conflict: the union of the Fig. 2 and
        // Fig. 3 goal sets is unsatisfiable.
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success);
        // The minimal core blames exactly the ban and the backend →
        // frontend:23 reachability goal.
        assert_eq!(rec.core.len(), 2, "core: {:?}", rec.core);
        assert!(rec.core.iter().any(|n| n.contains("DENY port 23")));
        assert!(rec
            .core
            .iter()
            .any(|n| n.contains("test-backend -> test-frontend")));
    }

    #[test]
    fn e2_fig4_relaxation_reconciles() {
        // Relaxed goals (∃ ports): because service port exposure is in
        // the Istio administrator's domain, the synthesizer can re-expose
        // the frontend on one of the spare universe ports — the paper's
        // "choose up to four different ports".
        let mv = MeshVocab::paper_example();
        let mesh = mv.mesh().clone();
        let session = paper_session(&mv, &IstioGoal::fig4());
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.success, "core: {:?}", rec.core);
        // Verify the delivered configs satisfy every goal.
        let mut combined = session.structure().clone();
        for c in rec.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in session.check_goals(&combined) {
            assert!(holds, "goal {name} violated by delivered configs");
        }
        // And the K8s ban really bites: no flow to port 23 anywhere.
        let p23 = mv.port_atom(23).unwrap();
        for s in mesh.services() {
            for d in mesh.services() {
                let f = mv.allowed_formula(
                    Term::Const(mv.svc_atom(&s.name).unwrap()),
                    Term::Const(mv.svc_atom(&d.name).unwrap()),
                    Term::Const(p23),
                );
                assert!(
                    !muppet_logic::evaluate_closed(&f, &combined, &mv.universe).unwrap(),
                    "{} -> {} :23 should be blocked",
                    s.name,
                    d.name
                );
            }
        }
    }

    #[test]
    fn local_consistency_of_each_side() {
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        // Each party alone is locally consistent (the conflict is joint).
        let k8s = session.local_consistency(mv.k8s_party).unwrap();
        assert!(k8s.ok);
        assert!(k8s.witness.is_some());
        let istio = session.local_consistency(mv.istio_party).unwrap();
        assert!(istio.ok);
    }

    #[test]
    fn local_consistency_fails_on_self_contradiction() {
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig3());
        // Give the K8s admin two directly contradictory goals over its
        // own relations.
        let fe = mv.svc_atom("test-frontend").unwrap();
        let guard = Formula::pred(mv.k8s_in_guard, [Term::Const(fe)]);
        let k8s_id = mv.k8s_party;
        session.party_mut(k8s_id).unwrap().goals.extend([
            NamedGoal::hard("guard the frontend", guard.clone()),
            NamedGoal::hard("never guard the frontend", Formula::not(guard)),
        ]);
        let report = session.local_consistency(k8s_id).unwrap();
        assert!(!report.ok);
        assert_eq!(report.core.len(), 2, "core: {:?}", report.core);
        assert!(report.core.iter().all(|c| c.contains("guard the frontend")));
    }

    #[test]
    fn e3_envelope_has_fig5_shape() {
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        // Conformance: K8s is the provider; its fixed configuration is
        // (so far) empty — the envelope speaks entirely in Istio terms.
        let env = session
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap();
        assert_eq!(env.predicates.len(), 1);
        assert!(env.impossible.is_empty());
        let f = &env.predicates[0].formula;
        // Shape: ∀src ∀dst (or of exactly 5 disjunct families).
        let Formula::Forall(_, _, body) = f else {
            panic!("expected ∀src, got {f:?}");
        };
        let Formula::Forall(_, _, body) = body.as_ref() else {
            panic!("expected ∀dst");
        };
        let Formula::Or(disjuncts) = body.as_ref() else {
            panic!("expected disjunction, got {body:?}");
        };
        assert_eq!(disjuncts.len(), 5, "{disjuncts:#?}");
        // No K8s relation survives substitution.
        assert!(!f.mentions_domain(session.vocab(), Domain::Party(mv.k8s_party)));
        // The five families of Fig. 5: ¬listens(dst,23); istio_in_deny;
        // (istio_in_guard ∧ ¬istio_in_allow); istio_eg_deny;
        // (istio_eg_guard ∧ ¬istio_eg_allow).
        let mut seen_not_listens = false;
        let mut seen_eg_deny = false;
        let mut seen_eg_implicit = false;
        let mut seen_in_deny = false;
        let mut seen_in_implicit = false;
        for d in disjuncts {
            match d {
                Formula::Not(inner) => {
                    if let Formula::Pred(r, _) = inner.as_ref() {
                        if *r == mv.listens {
                            seen_not_listens = true;
                        }
                    }
                }
                Formula::Pred(r, _) if *r == mv.istio_eg_deny => seen_eg_deny = true,
                Formula::Pred(r, _) if *r == mv.istio_in_deny => seen_in_deny = true,
                Formula::And(parts) => {
                    let rels: Vec<_> = parts.iter().flat_map(|p| p.rels()).collect();
                    if rels.contains(&mv.istio_eg_guard) && rels.contains(&mv.istio_eg_allow) {
                        seen_eg_implicit = true;
                    }
                    if rels.contains(&mv.istio_in_guard) && rels.contains(&mv.istio_in_allow) {
                        seen_in_implicit = true;
                    }
                }
                other => panic!("unexpected disjunct {other:?}"),
            }
        }
        assert!(
            seen_not_listens
                && seen_eg_deny
                && seen_eg_implicit
                && seen_in_deny
                && seen_in_implicit
        );
        // Privacy: the envelope reveals the special status of port 23
        // "but little else".
        let leak = env.leakage(&mv.universe);
        assert_eq!(leak.revealed_atoms, vec!["23".to_string()]);
    }

    #[test]
    fn envelope_check_accepts_and_rejects_istio_configs() {
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        let env = session
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap();
        // Open Istio config (the current deployment): the frontend
        // listens on 23 and nothing blocks it ⇒ violates the envelope.
        let open = mv.structure_instance();
        assert!(!env.check(&open, &mv.universe).is_empty());
        // Istio config that bans egress to 23 for every service.
        let lockdown = mv
            .compile_istio(&[muppet_mesh::AuthorizationPolicy {
                name: "deny-23-egress".into(),
                selector: muppet_mesh::Selector::All,
                direction: muppet_mesh::Direction::Egress,
                action: muppet_mesh::Action::Deny,
                rules: vec![muppet_mesh::AuthPolicyRule::to_ports([23])],
            }])
            .unwrap();
        let with_lockdown = mv.structure_instance().union(&lockdown);
        assert!(env.check(&with_lockdown, &mv.universe).is_empty());
    }

    #[test]
    fn synthesize_against_envelope_produces_compatible_config() {
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig4());
        let env = session
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap();
        match session.synthesize_against(mv.istio_party, &env).unwrap() {
            Outcome::Sat { solution, .. } => {
                let istio_cfg =
                    solution.restrict_to_domain(session.vocab(), Domain::Party(mv.istio_party));
                assert!(env.check(&istio_cfg, &mv.universe).is_empty());
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn fig3_goals_cannot_satisfy_envelope() {
        // With the strict Fig. 3 goals (backend→frontend:23 required),
        // no Istio configuration satisfies envelope + goals.
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        let env = session
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap();
        match session.synthesize_against(mv.istio_party, &env).unwrap() {
            Outcome::Unsat { core, .. } => {
                assert!(core.iter().any(|n| n.contains("envelope from k8s-admin")));
                assert!(core
                    .iter()
                    .any(|n| n.contains("test-backend -> test-frontend")));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn minimal_edit_against_envelope_is_small() {
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        let env = session
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap();
        // Target: the Istio admin's current deployment (frontend exposed
        // on 23, no policies). Two one-edit fixes exist, both straight
        // out of Fig. 5: stop exposing port 23 (disjunct 1), or add an
        // empty ingress ALLOW policy on the frontend — a guard with no
        // allow rules, i.e. implicit-deny-everything (disjunct 5).
        let target = mv.structure_instance();
        let (outcome, dist) = session
            .minimal_edit(mv.istio_party, &env, &target)
            .unwrap();
        match outcome {
            Outcome::Sat { solution, .. } => {
                let istio_cfg =
                    solution.restrict_to_domain(session.vocab(), Domain::Party(mv.istio_party));
                assert!(env.check(&istio_cfg, &mv.universe).is_empty());
                assert_eq!(dist, 1, "a one-edit fix exists");
                assert_eq!(istio_cfg.distance(&target), 1);
                let fe = mv.svc_atom("test-frontend").unwrap();
                let p23 = mv.port_atom(23).unwrap();
                let unexposed = !istio_cfg.holds(mv.listens, &[fe, p23]);
                let locked_down = istio_cfg.holds(mv.istio_in_guard, &[fe])
                    && istio_cfg.count(mv.istio_in_allow) == 0;
                assert!(unexposed || locked_down, "{istio_cfg:?}");
            }
            other => panic!("expected sat at distance 1, got {other:?}"),
        }
    }

    #[test]
    fn blameable_mode_blames_committed_settings() {
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig3());
        // Drop the K8s *goal* and instead have the K8s admin hard-commit
        // a deny tuple that breaks istio goal 2.
        let k8s_id = mv.k8s_party;
        session.party_mut(k8s_id).unwrap().goals.clear();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        let mut offer = PartialInstance::new();
        offer.require(mv.k8s_in_deny, vec![fe, be, p23]);
        // Permit everything else for the K8s admin (an unbounded upper
        // bound would also work; requiring the single tuple plus leaving
        // other relations unbounded is simplest).
        session.party_mut(k8s_id).unwrap().offer = offer;
        let rec = session.reconcile(ReconcileMode::Blameable).unwrap();
        assert!(!rec.success);
        assert!(rec
            .core
            .iter()
            .any(|n| n.contains("k8s-admin: committed settings")));
        assert!(rec
            .core
            .iter()
            .any(|n| n.contains("test-backend -> test-frontend")));
        // Hard-bounds mode also fails but cannot name the commitment.
        let rec2 = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(!rec2.success);
        assert!(!rec2.core.iter().any(|n| n.contains("committed settings")));
    }

    #[test]
    fn impossible_goals_are_reported() {
        // ∃x (istio_in_guard(x) ∧ k8s_in_guard(x)) with an empty K8s
        // config: the quantifier expands (the variable reaches a K8s
        // atom), every disjunct contains a false K8s conjunct, and the
        // predicate collapses to False — no Istio configuration can
        // rescue the goal, so it lands in `impossible`.
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig3());
        let mut vocab = mv.vocab.clone();
        let x = vocab.fresh_var();
        let goal = Formula::exists(
            x,
            mv.svc_sort,
            Formula::and([
                Formula::pred(mv.istio_in_guard, [Term::Var(x)]),
                Formula::pred(mv.k8s_in_guard, [Term::Var(x)]),
            ]),
        );
        let k8s_id = mv.k8s_party;
        session
            .party_mut(k8s_id)
            .unwrap()
            .goals
            .push(NamedGoal::hard("joint guard somewhere", goal));
        let env = session
            .compute_envelope(k8s_id, mv.istio_party, &Instance::new())
            .unwrap();
        assert!(env
            .impossible
            .contains(&"joint guard somewhere".to_string()));
        assert!(!env.is_trivial());
        // With a K8s config guarding the frontend, the goal becomes a
        // real obligation on Istio instead.
        let fe = mv.svc_atom("test-frontend").unwrap();
        let mut c_a = Instance::new();
        c_a.insert(mv.k8s_in_guard, vec![fe]);
        let env = session
            .compute_envelope(k8s_id, mv.istio_party, &c_a)
            .unwrap();
        assert!(env.impossible.is_empty());
        assert!(env
            .predicates
            .iter()
            .any(|p| p.source_goal == "joint guard somewhere"));
    }

    #[test]
    fn residual_violations_are_detected() {
        // A K8s-only goal the K8s fixed config violates: "some service
        // must have an ingress guard" vs an empty C_A.
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig3());
        let mut vocab = mv.vocab.clone();
        let v = vocab.fresh_var();
        let goal = Formula::exists(
            v,
            mv.svc_sort,
            Formula::pred(mv.k8s_in_guard, [Term::Var(v)]),
        );
        let k8s_id = mv.k8s_party;
        session
            .party_mut(k8s_id)
            .unwrap()
            .goals
            .push(NamedGoal::hard("guard somewhere", goal));
        let env = session
            .compute_envelope(k8s_id, mv.istio_party, &Instance::new())
            .unwrap();
        assert!(env
            .residual_violations
            .contains(&"guard somewhere".to_string()));
    }

    #[test]
    fn unknown_party_errors() {
        let mv = MeshVocab::paper_example();
        let session = paper_session(&mv, &IstioGoal::fig3());
        let ghost = PartyId(9);
        assert!(matches!(
            session.local_consistency(ghost),
            Err(MuppetError::UnknownParty(_))
        ));
        assert!(session.party(ghost).is_err());
    }

    /// Acceptance: a deadline-bounded reconciliation that hits an
    /// (injected) Search-phase exhaustion degrades to a structured
    /// report instead of erroring or hanging.
    #[test]
    fn budgeted_reconcile_degrades_to_exhaustion_report() {
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig4());
        session.set_budget(
            Budget::unlimited().with_timeout(std::time::Duration::from_millis(100)),
        );
        let _armed = muppet_solver::fault::Armed::new(Phase::Search, 1);
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success, "exhausted run must not claim success");
        let ex = rec.exhausted.expect("must carry an exhaustion report");
        assert_eq!(ex.phase, Phase::Search);
        assert_eq!(ex.attempts, 1);
    }

    /// Acceptance: the same injected exhaustion is absorbed by an
    /// escalated retry — the failpoint consumes itself on attempt 1 and
    /// attempt 2 solves the instance for real.
    #[test]
    fn escalated_retry_recovers_from_injected_exhaustion() {
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig4());
        session.set_retry_policy(RetryPolicy::new(u64::MAX, 2));
        let _armed = muppet_solver::fault::Armed::new(Phase::Search, 1);
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(rec.exhausted.is_none(), "retry must clear the exhaustion");
        assert!(rec.success, "core: {:?}", rec.core);
    }

    /// Local consistency follows the same degradation contract.
    #[test]
    fn budgeted_local_consistency_degrades() {
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig4());
        session.set_budget(Budget::unlimited().with_conflict_cap(u64::MAX));
        let _armed = muppet_solver::fault::Armed::new(Phase::Search, 1);
        let report = session.local_consistency(mv.k8s_party).unwrap();
        assert!(!report.ok);
        let ex = report.exhausted.expect("must carry an exhaustion report");
        assert_eq!(ex.phase, Phase::Search);
    }

    /// Warm-path reconciliation and consistency must agree with the
    /// cold paths verdict-for-verdict, and the second warm call must
    /// actually reuse the prepared state.
    #[test]
    fn warm_paths_match_cold_verdicts_and_reuse_state() {
        let mv = MeshVocab::paper_example();
        let mut store = PreparedStore::new();

        // UNSAT case (Fig. 3): same verdict, same minimal core.
        let s3 = paper_session(&mv, &IstioGoal::fig3());
        let cold = s3.reconcile(ReconcileMode::HardBounds).unwrap();
        let warm = s3.reconcile_warm(ReconcileMode::HardBounds, &mut store).unwrap();
        assert_eq!(cold.success, warm.success);
        let (mut cc, mut wc) = (cold.core.clone(), warm.core.clone());
        cc.sort();
        wc.sort();
        assert_eq!(cc, wc);

        // Repeat: served from the same prepared query, same answer.
        let warm2 = s3.reconcile_warm(ReconcileMode::HardBounds, &mut store).unwrap();
        assert_eq!(warm2.success, cold.success);
        assert!(store.hits() >= 1, "second call must hit the store");
        let (_, reused) = store.group_counters();
        assert!(reused > 0, "repeat call must reuse encoded groups");

        // SAT case (Fig. 4) shares the same store; delivered configs
        // must satisfy every goal just like the cold path's do.
        let s4 = paper_session(&mv, &IstioGoal::fig4());
        let warm4 = s4.reconcile_warm(ReconcileMode::HardBounds, &mut store).unwrap();
        assert!(warm4.success, "core: {:?}", warm4.core);
        let mut combined = s4.structure().clone();
        for c in warm4.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in s4.check_goals(&combined) {
            assert!(holds, "goal {name} violated by warm-delivered configs");
        }

        // Local consistency parity.
        let ck = s3.local_consistency(mv.k8s_party).unwrap();
        let wk = s3.local_consistency_warm(mv.k8s_party, &mut store).unwrap();
        assert_eq!(ck.ok, wk.ok);
        assert_eq!(wk.witness.is_some(), ck.witness.is_some());
    }

    /// Warm paths under a symmetry-breaking session silently use the
    /// cold pipeline (permanent lex clauses must not enter the store).
    #[test]
    fn warm_paths_fall_back_under_symmetry_breaking() {
        let mv = MeshVocab::paper_example();
        let mut store = PreparedStore::new();
        let mut s = paper_session(&mv, &IstioGoal::fig4());
        s.set_symmetry_breaking(true);
        let rec = s.reconcile_warm(ReconcileMode::HardBounds, &mut store).unwrap();
        assert!(rec.success);
        assert!(store.is_empty(), "fallback must not populate the store");
    }

    /// An expired deadline (no fault injection at all) also yields the
    /// structured report rather than a panic or a wrong verdict.
    #[test]
    fn expired_deadline_reconcile_reports_exhaustion() {
        let mv = MeshVocab::paper_example();
        let mut session = paper_session(&mv, &IstioGoal::fig4());
        session.set_budget(
            Budget::unlimited().with_timeout(std::time::Duration::from_millis(0)),
        );
        let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
        assert!(!rec.success);
        assert!(rec.exhausted.is_some(), "expired deadline must degrade");
    }
}
