//! "Why" and "why not" explanations for envelope checks.
//!
//! Sec. 7 (*Human Factors / Presentation*): "There are logic-based
//! options, such as unsatisfiable cores, which can highlight portions of
//! the envelope that are in contradiction with candidate settings. …
//! This may need to be wedded to principled output forms like 'why' and
//! 'why not' modalities." This module implements that wedding: given a
//! violated envelope predicate and the recipient's configuration, it
//! produces the *witness* — the quantifier bindings under which the
//! predicate fails — and, for a disjunctive predicate like Fig. 5's,
//! the per-disjunct status ("why not" each escape hatch applied).

use std::collections::BTreeMap;

use muppet_logic::pretty::Printer;
use muppet_logic::{
    evaluate, AtomId, Formula, Instance, Universe, VarId, Vocabulary,
};

use crate::envelope::EnvelopePredicate;

/// One failing instantiation of a violated predicate.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The quantifier bindings (display name → atom name) under which
    /// the body fails, e.g. `src = test-backend, dst = test-frontend`.
    pub bindings: Vec<(String, String)>,
    /// For a disjunctive body: each disjunct rendered in English with
    /// its truth value under the bindings — the "why not" of every
    /// escape hatch.
    pub disjuncts: Vec<(String, bool)>,
}

/// A full explanation of one predicate over one configuration.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The goal the predicate descends from.
    pub source_goal: String,
    /// Does the predicate hold?
    pub holds: bool,
    /// When violated: every failing instantiation (bounded by
    /// `max_witnesses`).
    pub witnesses: Vec<Witness>,
}

impl Explanation {
    /// Render the explanation as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.holds {
            out.push_str(&format!(
                "predicate from {:?} HOLDS\n",
                self.source_goal
            ));
            return out;
        }
        out.push_str(&format!(
            "predicate from {:?} is VIOLATED\n",
            self.source_goal
        ));
        for w in &self.witnesses {
            let binds: Vec<String> = w
                .bindings
                .iter()
                .map(|(v, a)| format!("{v} = {a}"))
                .collect();
            out.push_str(&format!("  for {}:\n", binds.join(", ")));
            for (text, value) in &w.disjuncts {
                out.push_str(&format!(
                    "    [{}] {}\n",
                    if *value { "ok " } else { "FAIL" },
                    text
                ));
            }
        }
        out
    }
}

/// Explain a single envelope predicate against a configuration.
///
/// Universal quantifier prefixes are unrolled to find failing bindings
/// (`why not`); at the innermost level a disjunction is split so each
/// escape hatch gets its own verdict. Reports at most `max_witnesses`
/// failing instantiations.
pub fn explain_predicate(
    predicate: &EnvelopePredicate,
    config: &Instance,
    vocab: &Vocabulary,
    universe: &Universe,
    max_witnesses: usize,
) -> Explanation {
    let names: BTreeMap<VarId, String> = predicate.var_names.iter().cloned().collect();
    let mut witnesses = Vec::new();
    let mut env: BTreeMap<VarId, AtomId> = BTreeMap::new();
    let holds = walk(
        &predicate.formula,
        config,
        vocab,
        universe,
        &names,
        &mut env,
        &mut witnesses,
        max_witnesses,
    );
    Explanation {
        source_goal: predicate.source_goal.clone(),
        holds,
        witnesses,
    }
}

/// Recursively unroll leading ∀ binders; returns whether the formula
/// holds, collecting witnesses for failures.
#[allow(clippy::too_many_arguments)]
fn walk(
    f: &Formula,
    config: &Instance,
    vocab: &Vocabulary,
    universe: &Universe,
    names: &BTreeMap<VarId, String>,
    env: &mut BTreeMap<VarId, AtomId>,
    witnesses: &mut Vec<Witness>,
    max_witnesses: usize,
) -> bool {
    match f {
        Formula::Forall(v, sort, body) => {
            let mut all = true;
            for &atom in universe.atoms_of(*sort) {
                env.insert(*v, atom);
                if !walk(
                    body,
                    config,
                    vocab,
                    universe,
                    names,
                    env,
                    witnesses,
                    max_witnesses,
                ) {
                    all = false;
                }
                env.remove(v);
                if witnesses.len() >= max_witnesses && !all {
                    break;
                }
            }
            all
        }
        body => {
            let holds = evaluate(body, config, universe, &mut env.clone()).unwrap_or(false);
            if !holds && witnesses.len() < max_witnesses {
                witnesses.push(make_witness(
                    body, config, vocab, universe, names, env,
                ));
            }
            holds
        }
    }
}

fn make_witness(
    body: &Formula,
    config: &Instance,
    vocab: &Vocabulary,
    universe: &Universe,
    names: &BTreeMap<VarId, String>,
    env: &BTreeMap<VarId, AtomId>,
) -> Witness {
    let bindings = env
        .iter()
        .map(|(v, a)| {
            (
                names
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| format!("x{}", v.0)),
                universe.atom_name(*a).to_string(),
            )
        })
        .collect();
    // Per-disjunct verdicts, with the bindings substituted into the
    // rendering for readability.
    let parts: Vec<&Formula> = match body {
        Formula::Or(ds) => ds.iter().collect(),
        other => vec![other],
    };
    let mut printer = Printer::new(vocab, universe);
    for (v, n) in names {
        printer.name_var(*v, n.clone());
    }
    let disjuncts = parts
        .into_iter()
        .map(|d| {
            let mut grounded = d.clone();
            for (&v, &a) in env {
                grounded = grounded.substitute(v, a);
            }
            let value =
                evaluate(&grounded, config, universe, &mut BTreeMap::new()).unwrap_or(false);
            (printer.english(d), value)
        })
        .collect();
    Witness {
        bindings,
        disjuncts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::{NamedGoal, Party};
    use crate::session::Session;
    use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
    use muppet_mesh::MeshVocab;
    use muppet_logic::PartyId;

    fn paper_env() -> (MeshVocab, crate::envelope::Envelope, Vocabulary) {
        let mv = MeshVocab::paper_example();
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&fig2(), &mv, &mut vocab).unwrap();
        let istio_goals =
            translate_istio_goals(&IstioGoal::fig3(), &mv, &mut vocab).unwrap();
        let axioms = mv.well_formedness_axioms(&mut vocab);
        let mut s = Session::new(&mv.universe, vocab.clone(), Instance::new());
        s.add_axioms(axioms);
        s.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        s.add_party(
            Party::new(mv.istio_party, "istio-admin")
                .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
        );
        let env = s
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap();
        (mv, env, vocab)
    }

    #[test]
    fn violated_predicate_names_the_failing_pair() {
        let (mv, env, vocab) = paper_env();
        // The bare deployment violates the envelope: every service can
        // reach the frontend on 23.
        let config = mv.structure_instance();
        let exp = explain_predicate(&env.predicates[0], &config, &vocab, &mv.universe, 10);
        assert!(!exp.holds);
        // Three witnesses: src ∈ {fe, be, db} × dst = fe.
        assert_eq!(exp.witnesses.len(), 3);
        for w in &exp.witnesses {
            let dst = w.bindings.iter().find(|(n, _)| n == "dst").unwrap();
            assert_eq!(dst.1, "test-frontend");
            // All five escape hatches fail.
            assert_eq!(w.disjuncts.len(), 5);
            assert!(w.disjuncts.iter().all(|(_, v)| !v));
        }
        let text = exp.render();
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("dst = test-frontend"));
        assert!(text.contains("[FAIL]"));
    }

    #[test]
    fn partially_fixed_config_shows_which_hatch_opened() {
        let (mv, env, vocab) = paper_env();
        // Block egress to 23 from the backend only: the backend pair is
        // now fine (disjunct 4 holds); fe→fe and db→fe still fail.
        let mut config = mv.structure_instance();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        config.insert(mv.istio_eg_deny, vec![be, p23]);
        let exp = explain_predicate(&env.predicates[0], &config, &vocab, &mv.universe, 10);
        assert!(!exp.holds);
        assert_eq!(exp.witnesses.len(), 2);
        assert!(exp
            .witnesses
            .iter()
            .all(|w| w.bindings.iter().any(|(n, a)| n == "src" && a != "test-backend")));
    }

    #[test]
    fn satisfied_predicate_has_no_witnesses() {
        let (mv, env, vocab) = paper_env();
        // Unexpose port 23 entirely.
        let mut config = mv.structure_instance();
        let fe = mv.svc_atom("test-frontend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        config.remove(mv.listens, &[fe, p23]);
        let exp = explain_predicate(&env.predicates[0], &config, &vocab, &mv.universe, 10);
        assert!(exp.holds);
        assert!(exp.witnesses.is_empty());
        assert!(exp.render().contains("HOLDS"));
    }

    #[test]
    fn witness_limit_is_respected() {
        let (mv, env, vocab) = paper_env();
        let config = mv.structure_instance();
        let exp = explain_predicate(&env.predicates[0], &config, &vocab, &mv.universe, 1);
        assert!(!exp.holds);
        assert_eq!(exp.witnesses.len(), 1);
    }

    #[test]
    fn non_quantified_predicate_explains_directly() {
        let mut universe = Universe::new();
        let s = universe.add_sort("S");
        let a = universe.add_atom(s, "a");
        let mut vocab = Vocabulary::new();
        let r = vocab.add_simple_rel("r", vec![s], muppet_logic::Domain::Party(PartyId(1)));
        let pred = EnvelopePredicate {
            source_goal: "g".into(),
            obligated_by: PartyId(0),
            formula: Formula::pred(r, [muppet_logic::Term::Const(a)]),
            var_names: vec![],
        };
        let exp = explain_predicate(&pred, &Instance::new(), &vocab, &universe, 5);
        assert!(!exp.holds);
        assert_eq!(exp.witnesses.len(), 1);
        assert!(exp.witnesses[0].bindings.is_empty());
        assert_eq!(exp.witnesses[0].disjuncts.len(), 1);
    }
}
