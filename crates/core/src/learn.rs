//! Envelope *learning*: characterizing the recipient's solution space by
//! iteration, without syntactic access to the sender's goals.
//!
//! Sec. 7 (*Envelopes for Stateful Systems*): "much existing synthesis in
//! the stateful setting use techniques that gradually learn constraints
//! from counterexamples. In principle, complete envelopes could be
//! obtained from these constraints after iterating until the solution
//! space is fully characterized (as Cimatti, et al. do), rather than
//! halting at the first correct candidate."
//!
//! Alg. 3 needs to *decompose and substitute inside* the sender's goal
//! formulas. When goals are opaque — an oracle, a stateful property
//! checked by unrolling, a legacy verifier — that is unavailable. This
//! module learns the envelope semantically instead:
//!
//! 1. ask the solver for a recipient configuration (over a finite
//!    *scope* of candidate tuples) under which the sender's goals hold;
//! 2. **generalize** the found model to a prime implicant: drop each
//!    literal whose value provably does not matter (an UNSAT check of
//!    `¬goals` under the remaining cube);
//! 3. block the cube and repeat until no uncovered satisfying
//!    configuration remains.
//!
//! The resulting cube list is a DNF over the recipient's tuples that is
//! — by construction — *necessary and sufficient* within the scope:
//! exactly an envelope, obtained without ever looking inside the goals.

use muppet_logic::{
    AtomId, Formula, Instance, PartialInstance, PartyId, RelId, Term,
};
use muppet_solver::{FormulaGroup, Outcome, PreparedStore, QueryStats};

use crate::session::{MuppetError, Session};

/// The finite set of recipient tuples the learner characterizes over.
/// Tuples outside the scope are treated as absent (closed world).
#[derive(Clone, Debug)]
pub struct Scope {
    /// Ground tuples of recipient-owned relations.
    pub tuples: Vec<(RelId, Vec<AtomId>)>,
}

impl Scope {
    /// A scope from an explicit tuple list.
    pub fn new(tuples: Vec<(RelId, Vec<AtomId>)>) -> Scope {
        Scope { tuples }
    }

    /// Number of scope tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the scope empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A cube: a partial assignment of scope tuples. Tuples in neither list
/// are "don't care".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cube {
    /// Tuples that must be present.
    pub positive: Vec<(RelId, Vec<AtomId>)>,
    /// Tuples that must be absent.
    pub negative: Vec<(RelId, Vec<AtomId>)>,
}

impl Cube {
    /// Does a configuration match this cube?
    pub fn matches(&self, config: &Instance) -> bool {
        self.positive.iter().all(|(r, t)| config.holds(*r, t))
            && self.negative.iter().all(|(r, t)| !config.holds(*r, t))
    }

    /// The cube as a conjunction formula.
    pub fn to_formula(&self) -> Formula {
        let mut parts: Vec<Formula> = Vec::new();
        for (r, t) in &self.positive {
            parts.push(Formula::pred(*r, t.iter().map(|&a| Term::Const(a))));
        }
        for (r, t) in &self.negative {
            parts.push(Formula::not(Formula::pred(
                *r,
                t.iter().map(|&a| Term::Const(a)),
            )));
        }
        Formula::and(parts)
    }

    /// Number of fixed literals (lower = more general).
    pub fn literals(&self) -> usize {
        self.positive.len() + self.negative.len()
    }
}

/// The learned envelope: a DNF over the scope.
#[derive(Clone, Debug)]
pub struct LearnedEnvelope {
    /// The prime-implicant cubes. Empty means *no* recipient
    /// configuration (within scope) satisfies the sender's goals.
    pub cubes: Vec<Cube>,
    /// Solver iterations spent (find + generalization queries).
    pub queries: usize,
    /// True when the space was fully characterized within the iteration
    /// budget.
    pub complete: bool,
}

impl LearnedEnvelope {
    /// Does a configuration (restricted to the scope) satisfy the
    /// learned envelope?
    pub fn check(&self, config: &Instance) -> bool {
        self.cubes.iter().any(|c| c.matches(config))
    }

    /// The envelope as a disjunction-of-cubes formula.
    pub fn to_formula(&self) -> Formula {
        Formula::or(self.cubes.iter().map(Cube::to_formula).collect::<Vec<_>>())
    }
}

/// Learn `E_{from→to}` over `scope`, treating the sender's goals as an
/// opaque satisfiability oracle.
///
/// `max_cubes` bounds the iteration (each iteration adds one prime
/// implicant); if the budget is exhausted before full characterization,
/// the result has `complete == false` (its cubes are still *sufficient*,
/// just possibly not necessary).
pub fn learn_envelope(
    session: &Session<'_>,
    from: PartyId,
    c_from: &Instance,
    to: PartyId,
    scope: &Scope,
    max_cubes: usize,
) -> Result<LearnedEnvelope, MuppetError> {
    let mut store = PreparedStore::new();
    learn_envelope_with_store(session, from, c_from, to, scope, max_cubes, &mut store)
}

/// [`learn_envelope`] with a caller-held [`PreparedStore`]. The find
/// loop runs on a warm incremental engine: the goal group is grounded
/// and encoded once, each iteration adds only its one new blocking-cube
/// group, and learned clauses persist — so iteration `n` does `O(1)`
/// new encoding work instead of re-compiling `n` groups. Generalization
/// probes change the bounds per candidate literal, so they stay on the
/// one-shot facade.
pub fn learn_envelope_with_store(
    session: &Session<'_>,
    from: PartyId,
    c_from: &Instance,
    to: PartyId,
    scope: &Scope,
    max_cubes: usize,
    store: &mut PreparedStore,
) -> Result<LearnedEnvelope, MuppetError> {
    let sender = session.party(from)?;
    session.party(to)?;
    let goal_formulas: Vec<Formula> =
        sender.goals.iter().map(|g| g.formula.clone()).collect();
    let fixed = session.structure().union(c_from);

    // Scope bounds: recipient relations range over exactly the scope.
    let mut scope_bounds = PartialInstance::new();
    let to_rels = session.owned_rels(to);
    for &rel in &to_rels {
        scope_bounds.bound(rel);
    }
    for (rel, tuple) in &scope.tuples {
        scope_bounds.permit(*rel, tuple.clone());
    }

    let mut cubes: Vec<Cube> = Vec::new();
    let mut queries = 0usize;
    let mut complete = false;
    let mut groups = vec![FormulaGroup::new("goals", goal_formulas.clone())];

    while cubes.len() < max_cubes {
        // 1. Find a satisfying recipient configuration not covered yet,
        //    on the warm engine (fresh groups only are encoded).
        queries += 1;
        let (outcome, _attempts) = session.run_warm_op(
            store,
            &scope_bounds,
            &to_rels,
            &fixed,
            &groups,
            |pq, active, budget| pq.solve(active, budget),
            |phase| Outcome::Unknown {
                phase,
                stats: QueryStats::default(),
                partial: None,
            },
            Outcome::is_unknown,
        )?;
        let model = match outcome {
            Outcome::Sat { solution, .. } => solution,
            Outcome::Unsat { .. } => {
                complete = true;
                break;
            }
            Outcome::Unknown { phase, stats, .. } => {
                // Learning has no partial-result channel: a cube set
                // generalized under an exhausted query would be unsound.
                return Err(MuppetError::Exhausted { phase, stats });
            }
        };

        // 2. Seed cube: the model's full assignment of the scope.
        let mut cube = Cube {
            positive: Vec::new(),
            negative: Vec::new(),
        };
        for (rel, tuple) in &scope.tuples {
            if model.holds(*rel, tuple) {
                cube.positive.push((*rel, tuple.clone()));
            } else {
                cube.negative.push((*rel, tuple.clone()));
            }
        }

        // 3. Generalize to a prime implicant: a literal can be dropped
        //    when `¬goals` is unsatisfiable under the remaining cube.
        let negated_goals = Formula::not(Formula::and(goal_formulas.clone()));
        let mut idx = 0usize;
        while idx < cube.literals() {
            let mut candidate = cube.clone();
            if idx < candidate.positive.len() {
                candidate.positive.remove(idx);
            } else {
                candidate.negative.remove(idx - candidate.positive.len());
            }
            // Bounds for the candidate cube: positives required,
            // negatives excluded, dropped literals free within scope.
            let mut bounds = PartialInstance::new();
            for &rel in &to_rels {
                bounds.bound(rel);
            }
            for (rel, tuple) in &scope.tuples {
                let negated = candidate
                    .negative
                    .iter()
                    .any(|(r, t)| r == rel && t == tuple);
                if !negated {
                    bounds.permit(*rel, tuple.clone());
                }
            }
            for (rel, tuple) in &candidate.positive {
                bounds.require(*rel, tuple.clone());
            }
            let mut q = session.scoped_query(&to_rels, fixed.clone());
            q.set_bounds(bounds)
                .set_minimize_cores(false)
                .add_group(FormulaGroup::new("neg goals", vec![negated_goals.clone()]));
            queries += 1;
            let (outcome, _attempts) =
                session.run_budgeted(&mut q, |q| q.solve(), Outcome::is_unknown)?;
            match outcome {
                Outcome::Unsat { .. } => {
                    // Every completion satisfies the goals: drop it.
                    cube = candidate;
                }
                Outcome::Sat { .. } => {
                    idx += 1;
                }
                Outcome::Unknown { .. } => {
                    // Cannot prove the literal droppable: keep it. The
                    // cube stays sound, just possibly less general.
                    idx += 1;
                }
            }
        }
        groups.push(FormulaGroup::new(
            format!("block cube {}", cubes.len()),
            vec![Formula::not(cube.to_formula())],
        ));
        cubes.push(cube);
    }

    Ok(LearnedEnvelope {
        cubes,
        queries,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::{NamedGoal, Party};
    use crate::session::Session;
    use muppet_logic::{evaluate_closed, Domain, Universe, Vocabulary};

    /// Sender owns deny(S); recipient owns allow(S), guard(S); structure
    /// up(S); 2 atoms — the same tiny domain as the envelope property
    /// tests, so learned and syntactic envelopes can be compared.
    struct Tiny {
        universe: Universe,
        vocab: Vocabulary,
        sender: PartyId,
        recipient: PartyId,
        deny: RelId,
        allow: RelId,
        guard: RelId,
        up: RelId,
        atoms: Vec<AtomId>,
    }

    fn tiny() -> Tiny {
        let mut universe = Universe::new();
        let s = universe.add_sort("S");
        let atoms = vec![universe.add_atom(s, "a"), universe.add_atom(s, "b")];
        let mut vocab = Vocabulary::new();
        let sender = PartyId(0);
        let recipient = PartyId(1);
        let deny = vocab.add_simple_rel("deny", vec![s], Domain::Party(sender));
        let allow = vocab.add_simple_rel("allow", vec![s], Domain::Party(recipient));
        let guard = vocab.add_simple_rel("guard", vec![s], Domain::Party(recipient));
        let up = vocab.add_simple_rel("up", vec![s], Domain::Structure);
        Tiny {
            universe,
            vocab,
            sender,
            recipient,
            deny,
            allow,
            guard,
            up,
            atoms,
        }
    }

    fn scope_of(t: &Tiny) -> Scope {
        Scope::new(
            [t.allow, t.guard]
                .iter()
                .flat_map(|&r| t.atoms.iter().map(move |&a| (r, vec![a])))
                .collect(),
        )
    }

    fn session_with_goal<'a>(t: &'a Tiny, goal: Formula) -> Session<'a> {
        let mut s = Session::new(&t.universe, t.vocab.clone(), {
            // Structure: both services up.
            let mut st = Instance::new();
            for &a in &t.atoms {
                st.insert(t.up, vec![a]);
            }
            st
        });
        s.add_party(
            Party::new(t.sender, "sender").with_goals([NamedGoal::hard("g", goal)]),
        );
        s.add_party(Party::new(t.recipient, "recipient"));
        s
    }

    /// The learned DNF must agree with direct goal evaluation on *every*
    /// scope assignment — i.e. it is a necessary-and-sufficient envelope,
    /// obtained without decomposing the goal.
    #[test]
    fn learned_envelope_characterizes_the_space_exactly() {
        let t = tiny();
        let mut vocab = t.vocab.clone();
        let x = vocab.fresh_var();
        let goals = vec![
            // ∀x: deny(x) ∨ allow(x)
            Formula::forall(
                x,
                muppet_logic::SortId(0),
                Formula::or([
                    Formula::pred(t.deny, [Term::Var(x)]),
                    Formula::pred(t.allow, [Term::Var(x)]),
                ]),
            ),
            // ∀x: guard(x) ⇒ allow(x)
            Formula::forall(
                x,
                muppet_logic::SortId(0),
                Formula::implies(
                    Formula::pred(t.guard, [Term::Var(x)]),
                    Formula::pred(t.allow, [Term::Var(x)]),
                ),
            ),
            // ∃x: allow(x) ∧ ¬guard(x) ∧ up(x)
            Formula::exists(
                x,
                muppet_logic::SortId(0),
                Formula::and([
                    Formula::pred(t.allow, [Term::Var(x)]),
                    Formula::not(Formula::pred(t.guard, [Term::Var(x)])),
                    Formula::pred(t.up, [Term::Var(x)]),
                ]),
            ),
        ];
        for goal in goals {
            for deny_mask in 0..4u8 {
                let mut c_a = Instance::new();
                for (i, &a) in t.atoms.iter().enumerate() {
                    if deny_mask & (1 << i) != 0 {
                        c_a.insert(t.deny, vec![a]);
                    }
                }
                let session = session_with_goal(&t, goal.clone());
                let scope = scope_of(&t);
                let learned =
                    learn_envelope(&session, t.sender, &c_a, t.recipient, &scope, 64)
                        .unwrap();
                assert!(learned.complete);
                // Compare against direct evaluation over all 16 scope
                // assignments.
                for mask in 0..16u8 {
                    let mut c_b = Instance::new();
                    for (bit, (rel, tuple)) in scope.tuples.iter().enumerate() {
                        if mask & (1 << bit) != 0 {
                            c_b.insert(*rel, tuple.clone());
                        }
                    }
                    let combined = session.structure().union(&c_a).union(&c_b);
                    let goal_holds =
                        evaluate_closed(&goal, &combined, &t.universe).unwrap();
                    assert_eq!(
                        learned.check(&c_b),
                        goal_holds,
                        "goal {goal:?} deny_mask {deny_mask} scope mask {mask}"
                    );
                }
            }
        }
    }

    #[test]
    fn generalization_produces_small_cubes() {
        let t = tiny();
        let mut vocab = t.vocab.clone();
        let x = vocab.fresh_var();
        // Goal touches only allow(a): the learned envelope must not
        // mention guard at all.
        let goal = Formula::pred(t.allow, [Term::Const(t.atoms[0])]);
        let _ = x;
        let session = session_with_goal(&t, goal);
        let learned = learn_envelope(
            &session,
            t.sender,
            &Instance::new(),
            t.recipient,
            &scope_of(&t),
            64,
        )
        .unwrap();
        assert!(learned.complete);
        assert_eq!(learned.cubes.len(), 1, "{:?}", learned.cubes);
        assert_eq!(learned.cubes[0].literals(), 1);
        assert_eq!(learned.cubes[0].positive.len(), 1);
        // Far fewer queries than the 2^4 assignments.
        assert!(learned.queries <= 8, "{}", learned.queries);
    }

    #[test]
    fn unsatisfiable_goals_learn_the_empty_envelope() {
        let t = tiny();
        let goal = Formula::and([
            Formula::pred(t.allow, [Term::Const(t.atoms[0])]),
            Formula::not(Formula::pred(t.allow, [Term::Const(t.atoms[0])])),
        ]);
        let session = session_with_goal(&t, goal);
        let learned = learn_envelope(
            &session,
            t.sender,
            &Instance::new(),
            t.recipient,
            &scope_of(&t),
            64,
        )
        .unwrap();
        assert!(learned.complete);
        assert!(learned.cubes.is_empty());
        assert!(!learned.check(&Instance::new()));
        assert_eq!(learned.to_formula(), Formula::or(Vec::<Formula>::new()));
    }

    /// On the mesh domain: the learned envelope agrees with the Alg. 3
    /// (syntactic) envelope over a focused scope — the two routes to
    /// `E_{K8s→Istio}` coincide.
    #[test]
    fn learned_matches_syntactic_envelope_on_mesh_scope() {
        use muppet_goals::{fig2, translate_k8s_goals};
        use muppet_mesh::MeshVocab;

        let mv = MeshVocab::paper_example();
        let mut vocab = mv.vocab.clone();
        let k8s_goals = translate_k8s_goals(&fig2(), &mv, &mut vocab).unwrap();
        let mut session = Session::new(&mv.universe, vocab, Instance::new());
        session.add_party(
            Party::new(mv.k8s_party, "k8s-admin")
                .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
        );
        session.add_party(Party::new(mv.istio_party, "istio-admin"));

        let fe = mv.svc_atom("test-frontend").unwrap();
        let be = mv.svc_atom("test-backend").unwrap();
        let p23 = mv.port_atom(23).unwrap();
        // Scope: the tuples that matter for the port-23 ban when only
        // fe could listen on 23 and only be/fe can send.
        let scope = Scope::new(vec![
            (mv.listens, vec![fe, p23]),
            (mv.istio_eg_deny, vec![be, p23]),
            (mv.istio_eg_deny, vec![fe, p23]),
            (mv.istio_in_guard, vec![fe]),
            (mv.istio_in_deny, vec![fe, be]),
            (mv.istio_in_deny, vec![fe, fe]),
        ]);
        let db = mv.svc_atom("test-db").unwrap();
        let scope = Scope::new(
            scope
                .tuples
                .into_iter()
                .chain([
                    (mv.istio_eg_deny, vec![db, p23]),
                    (mv.istio_in_deny, vec![fe, db]),
                ])
                .collect(),
        );

        let c_a = Instance::new();
        let learned =
            learn_envelope(&session, mv.k8s_party, &c_a, mv.istio_party, &scope, 256)
                .unwrap();
        assert!(learned.complete);
        let syntactic = session
            .compute_envelope(mv.k8s_party, mv.istio_party, &c_a)
            .unwrap();

        // Exhaustive agreement over the 2^8 scope assignments.
        for mask in 0..(1u32 << scope.len()) {
            let mut c_b = Instance::new();
            for (bit, (rel, tuple)) in scope.tuples.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    c_b.insert(*rel, tuple.clone());
                }
            }
            let syn_ok = syntactic.check(&c_b, session.universe()).is_empty();
            assert_eq!(
                learned.check(&c_b),
                syn_ok,
                "mask {mask}: learned and syntactic envelopes disagree"
            );
        }
    }
}
