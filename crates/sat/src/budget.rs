//! Resource budgets for solver calls: wall-clock deadlines, conflict
//! and propagation caps, and cooperative cancellation.
//!
//! A [`Budget`] travels with a query from the session layer down into
//! the CDCL search loop, grounding, and MUS extraction, making every
//! phase of the pipeline interruptible. All limits are *absolute*: a
//! deadline is a point in time and caps are totals over the budget's
//! lifetime, so the same `Budget` value can be shared by the several
//! solver calls that make up one logical query (e.g. the linear search
//! of target-oriented solving, or the deletion loop of MUS extraction)
//! and exhausts exactly once across all of them.
//!
//! [`RetryPolicy`] complements the budget: it describes how a caller
//! should escalate conflict caps across repeated attempts (Luby-style
//! growth, bounded attempts) when a budgeted solve comes back unknown.

use crate::luby::luby;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cooperative-cancellation flag.
///
/// Clone the token and hand one copy to the solving thread (inside a
/// [`Budget`]) and keep the other; calling [`CancelToken::cancel`]
/// makes every budget check observe cancellation at the next
/// opportunity (the CDCL loop polls between propagations).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Safe to call from any thread, repeatedly.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a budget check reported exhaustion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The conflict cap was reached.
    Conflicts,
    /// The propagation cap was reached.
    Propagations,
    /// The cancellation token was triggered.
    Cancelled,
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhaustion::Deadline => write!(f, "deadline"),
            Exhaustion::Conflicts => write!(f, "conflict cap"),
            Exhaustion::Propagations => write!(f, "propagation cap"),
            Exhaustion::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Resource limits for a solve. The default budget is unlimited.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    conflicts: Option<u64>,
    propagations: Option<u64>,
    /// Cancellation tokens; any one of them firing exhausts the budget.
    /// More than one arises when a portfolio race adds its
    /// loser-cancellation token on top of a caller's token.
    cancels: Vec<CancelToken>,
}

impl Budget {
    /// No limits at all (same as `Budget::default()`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Cap wall-clock time, starting now. A timeout too large to
    /// represent as an `Instant` (e.g. `--timeout-ms u64::MAX` from
    /// the CLI) saturates to "no deadline" instead of panicking on
    /// `Instant` overflow.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Cap wall-clock time at an absolute instant.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Cap total conflicts spent under this budget.
    pub fn with_conflict_cap(mut self, conflicts: u64) -> Budget {
        self.conflicts = Some(conflicts);
        self
    }

    /// Cap total propagations spent under this budget.
    pub fn with_propagation_cap(mut self, propagations: u64) -> Budget {
        self.propagations = Some(propagations);
        self
    }

    /// Attach a cooperative-cancellation token. May be called more than
    /// once; every attached token is observed (first one to fire wins).
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancels.push(token);
        self
    }

    /// Replace the conflict cap (keeping deadline/cancellation), e.g.
    /// when a [`RetryPolicy`] escalates between attempts. `None` lifts
    /// the cap.
    pub fn set_conflict_cap(&mut self, conflicts: Option<u64>) {
        self.conflicts = conflicts;
    }

    /// The configured conflict cap, if any.
    pub fn conflict_cap(&self) -> Option<u64> {
        self.conflicts
    }

    /// `true` if no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.conflicts.is_none()
            && self.propagations.is_none()
            && self.cancels.is_empty()
    }

    /// `true` if a deadline or cancellation token is configured (the
    /// limits that remain meaningful across retry attempts).
    pub fn has_deadline_or_cancel(&self) -> bool {
        self.deadline.is_some() || !self.cancels.is_empty()
    }

    /// Cheap check of the non-counter limits: cancellation and (at the
    /// caller's discretion) the deadline. Counter caps are checked by
    /// [`Budget::check`] with the current totals.
    pub fn poll(&self) -> Option<Exhaustion> {
        if self.cancels.iter().any(CancelToken::is_cancelled) {
            return Some(Exhaustion::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(Exhaustion::Deadline);
            }
        }
        None
    }

    /// Full check against the given work totals (counted since the
    /// budget was installed).
    pub fn check(&self, conflicts: u64, propagations: u64) -> Option<Exhaustion> {
        if let Some(cap) = self.conflicts {
            if conflicts >= cap {
                return Some(Exhaustion::Conflicts);
            }
        }
        if let Some(cap) = self.propagations {
            if propagations >= cap {
                return Some(Exhaustion::Propagations);
            }
        }
        self.poll()
    }

    /// Time remaining until the deadline (`None` when no deadline).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// How to escalate conflict budgets across repeated solve attempts.
///
/// Attempt `i` (1-based) is granted `initial_conflicts * luby(i)`
/// conflicts — the Luby sequence keeps the total work within a constant
/// factor of the unknown optimal cap, the same argument as for restart
/// scheduling. A wall-clock deadline in the accompanying [`Budget`] is
/// *shared* across attempts (it is an absolute point in time), so
/// retries never extend a caller's deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Conflict cap for the first attempt.
    pub initial_conflicts: u64,
    /// Total attempts allowed (including the first). At least 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// A single attempt with no conflict cap: the behavior callers get
    /// when they never configure retries.
    fn default() -> Self {
        RetryPolicy {
            initial_conflicts: u64::MAX,
            max_attempts: 1,
        }
    }
}

impl RetryPolicy {
    /// `attempts` tries, starting at `initial_conflicts` conflicts and
    /// growing by the Luby sequence.
    pub fn new(initial_conflicts: u64, attempts: u32) -> RetryPolicy {
        RetryPolicy {
            initial_conflicts,
            max_attempts: attempts.max(1),
        }
    }

    /// `true` when no conflict cap is configured (a single uncapped
    /// attempt).
    pub fn is_uncapped(&self) -> bool {
        self.initial_conflicts == u64::MAX
    }

    /// Conflict cap for 1-based attempt `attempt`, or `None` when the
    /// policy is uncapped.
    pub fn conflict_cap(&self, attempt: u32) -> Option<u64> {
        if self.is_uncapped() {
            None
        } else {
            Some(
                self.initial_conflicts
                    .saturating_mul(luby(attempt.max(1) as u64)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(u64::MAX, u64::MAX), None);
        assert_eq!(b.poll(), None);
    }

    #[test]
    fn conflict_cap_trips() {
        let b = Budget::unlimited().with_conflict_cap(10);
        assert_eq!(b.check(9, 0), None);
        assert_eq!(b.check(10, 0), Some(Exhaustion::Conflicts));
    }

    #[test]
    fn propagation_cap_trips() {
        let b = Budget::unlimited().with_propagation_cap(100);
        assert_eq!(b.check(0, 99), None);
        assert_eq!(b.check(0, 100), Some(Exhaustion::Propagations));
    }

    #[test]
    fn deadline_trips_once_passed() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.poll(), Some(Exhaustion::Deadline));
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert_eq!(b.poll(), None);
        assert!(b.remaining_time().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn absurd_timeout_saturates_to_no_deadline() {
        // `Instant::now() + Duration::MAX` would panic; the budget must
        // degrade to "unlimited time" instead.
        let b = Budget::unlimited().with_timeout(Duration::MAX);
        assert_eq!(b.poll(), None);
        assert!(b.remaining_time().is_none(), "saturated = no deadline");
        // u64::MAX milliseconds may or may not overflow the platform's
        // Instant; either way the budget must not panic or trip early.
        let b = Budget::unlimited().with_timeout(Duration::from_millis(u64::MAX));
        assert_eq!(b.poll(), None);
        // Sane timeouts still install a deadline.
        let b = Budget::unlimited().with_timeout(Duration::from_secs(60));
        assert!(b.remaining_time().is_some());
    }

    #[test]
    fn cancellation_is_observed_via_clone() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        assert_eq!(b.poll(), None);
        token.cancel();
        assert_eq!(b.poll(), Some(Exhaustion::Cancelled));
        assert_eq!(b.check(0, 0), Some(Exhaustion::Cancelled));
    }

    #[test]
    fn stacked_cancel_tokens_all_observed() {
        let caller = CancelToken::new();
        let race = CancelToken::new();
        let b = Budget::unlimited()
            .with_cancel(caller.clone())
            .with_cancel(race.clone());
        assert!(!b.is_unlimited());
        assert_eq!(b.poll(), None);
        race.cancel();
        assert_eq!(b.poll(), Some(Exhaustion::Cancelled));
        // Cloning shares the tokens, and the caller token alone is
        // also enough.
        let b2 = Budget::unlimited().with_cancel(caller.clone());
        assert_eq!(b2.poll(), None);
        caller.cancel();
        assert_eq!(b2.poll(), Some(Exhaustion::Cancelled));
    }

    #[test]
    fn retry_policy_escalates_by_luby() {
        let p = RetryPolicy::new(100, 5);
        assert_eq!(p.conflict_cap(1), Some(100));
        assert_eq!(p.conflict_cap(2), Some(100));
        assert_eq!(p.conflict_cap(3), Some(200));
        assert_eq!(p.conflict_cap(7), Some(400));
        assert!(RetryPolicy::default().conflict_cap(1).is_none());
    }
}
