//! The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
//!
//! CDCL restarts scheduled by the Luby sequence are within a constant
//! factor of the optimal universal restart strategy; scaled by a base
//! conflict interval they give the solver its restart cadence.

/// `luby(i)` for `i >= 1`: the i-th element of the Luby sequence.
///
/// Defined by: `luby(2^k - 1) = 2^(k-1)` and
/// `luby(i) = luby(i - 2^(k-1) + 1)` for `2^(k-1) <= i < 2^k - 1`.
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    let mut i = i;
    loop {
        // Smallest k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Iterator over the Luby sequence scaled by `base` conflicts.
#[derive(Debug)]
pub(crate) struct LubyRestarts {
    base: u64,
    index: u64,
}

impl LubyRestarts {
    pub fn new(base: u64) -> LubyRestarts {
        LubyRestarts { base, index: 0 }
    }

    /// Conflict budget for the next run.
    pub fn next_budget(&mut self) -> u64 {
        self.index += 1;
        luby(self.index) * self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_matches_known_values() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby((i + 1) as u64), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn restarts_scale_by_base() {
        let mut r = LubyRestarts::new(64);
        assert_eq!(r.next_budget(), 64);
        assert_eq!(r.next_budget(), 64);
        assert_eq!(r.next_budget(), 128);
        assert_eq!(r.next_budget(), 64);
    }

    #[test]
    fn luby_is_power_of_two() {
        for i in 1..=1000u64 {
            assert!(luby(i).is_power_of_two());
        }
    }

    #[test]
    fn luby_self_similarity() {
        // luby(i) for i in the left half of a block equals luby at the
        // reduced index.
        for k in 2..10u32 {
            let block = (1u64 << k) - 1;
            for i in (1u64 << (k - 1))..block {
                assert_eq!(luby(i), luby(i - ((1u64 << (k - 1)) - 1)));
            }
        }
    }
}
