//! Cross-solver learned-clause exchange.
//!
//! A portfolio of diversified solvers shares proofs through an object
//! implementing [`ClauseExchange`]: each worker *exports* learned
//! clauses whose LBD is at or below its configured threshold as they
//! are learned, and *imports* clauses learned by the other workers at
//! restart boundaries (decision level 0, where integrating foreign
//! clauses is trivially sound — a learned clause is a logical
//! consequence of the shared problem clauses, so any worker may adopt
//! it).
//!
//! The trait lives here so the CDCL loop can call it; the concrete
//! bounded pool lives in the `muppet-portfolio` crate. Implementations
//! decide the schedule: a racing pool hands over everything new, a
//! deterministic pool only releases clauses sealed at fixed epochs.

use crate::lit::Lit;

/// A shared learned-clause pool connecting portfolio workers.
///
/// Implementations must be cheap under concurrent calls: `export` runs
/// on the hot learning path (though only for clauses under the LBD
/// threshold) and `import` runs at restart boundaries.
pub trait ClauseExchange: Send + Sync + std::fmt::Debug {
    /// Offer a clause learned by `worker` (asserting literal first).
    /// The pool may drop it (duplicates, byte budget).
    fn export(&self, worker: usize, lits: &[Lit], lbd: u32);

    /// Clauses learned by *other* workers that `worker` has not yet
    /// imported, as `(literals, lbd)` pairs.
    fn import(&self, worker: usize) -> Vec<(Vec<Lit>, u32)>;
}
