//! Clause storage.
//!
//! Clauses live in a single arena ([`ClauseDb`]) and are referenced by
//! index. Deleted clauses are tombstoned and their slots recycled through a
//! free list; watch lists are purged lazily during propagation and rebuilt
//! on database reduction.

use crate::lit::Lit;

/// An index into the solver's clause arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// Retention tier of a learnt clause (Chanseok-Oh style three-tier DB).
///
/// Ordered by value: `Core < Mid < Local`, so "promote" means moving to
/// a *smaller* tier. Problem clauses carry `Core` but are never counted
/// or evicted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum Tier {
    /// Glue clauses (lowest LBD): kept forever.
    Core,
    /// Medium-LBD clauses: bounded; stale ones are demoted to Local.
    Mid,
    /// Everything else: aggressively evicted by activity.
    Local,
}

/// A single clause plus the metadata CDCL bookkeeping needs.
#[derive(Clone, Debug)]
pub(crate) struct Clause {
    /// The literals. Positions 0 and 1 are the watched literals.
    pub lits: Vec<Lit>,
    /// Learned (conflict-derived) clauses may be deleted; problem clauses
    /// never are.
    pub learnt: bool,
    /// Literal-block distance at learning time; lower is "glue-ier" and
    /// more valuable.
    pub lbd: u32,
    /// Bump-and-decay activity for the reduction heuristic.
    pub activity: f64,
    /// Retention tier (meaningful for learnt clauses only).
    pub tier: Tier,
    /// Tombstone flag; set by deletion, slot recycled later.
    pub deleted: bool,
}

/// Arena of clauses with slot recycling.
///
/// Deletion is two-phase: [`ClauseDb::delete`] tombstones the clause and
/// parks the slot on a *pending* list (stale watchers may still point at
/// it); [`ClauseDb::collect_garbage`] — called by the solver once watch
/// lists have been purged — moves pending slots to the free list for reuse.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    free: Vec<u32>,
    pending: Vec<u32>,
    /// Number of live learnt clauses (for the reduction trigger).
    pub num_learnt: usize,
    /// Live learnt clauses currently in [`Tier::Core`].
    pub num_core: usize,
    /// Live learnt clauses currently in [`Tier::Mid`].
    pub num_mid: usize,
    /// Live learnt clauses currently in [`Tier::Local`].
    pub num_local: usize,
}

impl ClauseDb {
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32, tier: Tier) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        if learnt {
            self.num_learnt += 1;
            match tier {
                Tier::Core => self.num_core += 1,
                Tier::Mid => self.num_mid += 1,
                Tier::Local => self.num_local += 1,
            }
        }
        let clause = Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
            tier,
            deleted: false,
        };
        if let Some(slot) = self.free.pop() {
            self.clauses[slot as usize] = clause;
            ClauseRef(slot)
        } else {
            self.clauses.push(clause);
            ClauseRef((self.clauses.len() - 1) as u32)
        }
    }

    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    /// Tombstone a clause. The slot is *not* reused until
    /// [`ClauseDb::collect_garbage`]; callers must treat `deleted` clauses
    /// as absent (stale watchers check the flag).
    pub fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        if c.learnt {
            self.num_learnt -= 1;
            match c.tier {
                Tier::Core => self.num_core -= 1,
                Tier::Mid => self.num_mid -= 1,
                Tier::Local => self.num_local -= 1,
            }
        }
        c.deleted = true;
        c.lits.clear();
        c.lits.shrink_to_fit();
        self.pending.push(cref.0);
    }

    /// `true` if tombstoned slots are waiting to be reclaimed.
    pub fn has_pending_garbage(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Reclaim tombstoned slots. The caller promises no watcher or reason
    /// still references them.
    pub fn collect_garbage(&mut self) {
        self.free.append(&mut self.pending);
    }

    /// Move a live learnt clause to a new tier, keeping the per-tier
    /// counts in sync.
    pub fn retier(&mut self, cref: ClauseRef, tier: Tier) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(c.learnt && !c.deleted);
        if c.tier == tier {
            return;
        }
        match c.tier {
            Tier::Core => self.num_core -= 1,
            Tier::Mid => self.num_mid -= 1,
            Tier::Local => self.num_local -= 1,
        }
        match tier {
            Tier::Core => self.num_core += 1,
            Tier::Mid => self.num_mid += 1,
            Tier::Local => self.num_local += 1,
        }
        c.tier = tier;
    }

    /// Iterate over the refs of all live learnt clauses.
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }

    /// Iterate over the refs of *all* live clauses (problem + learnt).
    pub fn live_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }

    /// Total live clauses (problem + learnt).
    #[cfg(test)]
    pub fn num_live(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(ixs: &[i32]) -> Vec<Lit> {
        ixs.iter()
            .map(|&i| {
                let v = Var::from_index(i.unsigned_abs() as usize);
                Lit::new(v, i >= 0)
            })
            .collect()
    }

    #[test]
    fn alloc_get_delete_recycles_slots() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(lits(&[0, 1]), false, 0, Tier::Core);
        let c2 = db.alloc(lits(&[1, 2]), true, 2, Tier::Core);
        assert_eq!(db.get(c1).lits.len(), 2);
        assert!(db.get(c2).learnt);
        assert_eq!(db.num_learnt, 1);
        db.delete(c2);
        assert_eq!(db.num_learnt, 0);
        assert_eq!(db.num_live(), 1);
        // Slot is not recycled until garbage collection...
        assert!(db.has_pending_garbage());
        let c3 = db.alloc(lits(&[2, 3]), false, 0, Tier::Core);
        assert_ne!(c3, c2);
        // ...and is recycled after.
        db.collect_garbage();
        assert!(!db.has_pending_garbage());
        let c4 = db.alloc(lits(&[3, 4]), false, 0, Tier::Core);
        assert_eq!(c4, c2);
        assert!(!db.get(c4).deleted);
    }

    #[test]
    fn learnt_refs_skips_deleted_and_problem_clauses() {
        let mut db = ClauseDb::new();
        let _p = db.alloc(lits(&[0, 1]), false, 0, Tier::Core);
        let l1 = db.alloc(lits(&[1, 2]), true, 2, Tier::Mid);
        let l2 = db.alloc(lits(&[2, 3]), true, 3, Tier::Local);
        db.delete(l1);
        assert_eq!(db.learnt_refs(), vec![l2]);
    }

    #[test]
    fn tier_counts_track_alloc_delete_retier() {
        let mut db = ClauseDb::new();
        // Problem clauses never count toward any tier.
        let _p = db.alloc(lits(&[0, 1]), false, 0, Tier::Core);
        assert_eq!((db.num_core, db.num_mid, db.num_local), (0, 0, 0));
        let a = db.alloc(lits(&[1, 2]), true, 2, Tier::Core);
        let b = db.alloc(lits(&[2, 3]), true, 5, Tier::Mid);
        let c = db.alloc(lits(&[3, 4]), true, 9, Tier::Local);
        assert_eq!((db.num_core, db.num_mid, db.num_local), (1, 1, 1));
        // Demotion and promotion move the counts, not the total.
        db.retier(b, Tier::Local);
        assert_eq!((db.num_core, db.num_mid, db.num_local), (1, 0, 2));
        db.retier(c, Tier::Core);
        assert_eq!((db.num_core, db.num_mid, db.num_local), (2, 0, 1));
        db.retier(c, Tier::Core); // no-op
        assert_eq!((db.num_core, db.num_mid, db.num_local), (2, 0, 1));
        db.delete(a);
        db.delete(c);
        assert_eq!((db.num_core, db.num_mid, db.num_local), (0, 0, 1));
        assert_eq!(db.num_learnt, 1);
    }
}
