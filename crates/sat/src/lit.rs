//! Variables, literals and the three-valued assignment type.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from zero.
///
/// Variables are created by [`crate::Solver::new_var`]; the solver owns the
/// numbering. `Var` is a plain index wrapper so it can key into dense
/// vectors without hashing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Construct a variable from its raw index.
    ///
    /// Only meaningful for indices previously handed out by a solver (or
    /// when building a [`crate::DimacsProblem`] by hand).
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means the *negative*
/// literal, the classic MiniSat packing. This keeps watch lists and
/// assignment lookups branch-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var` (true when `var` is true).
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var` (true when `var` is false).
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// Build a literal from a variable and a polarity flag
    /// (`positive == true` gives the positive literal).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The dense index of the literal itself (distinct for each polarity);
    /// used to key watch lists.
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }

}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued truth assignment: true, false or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not yet assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Truth value of a literal whose variable has this assignment,
    /// accounting for the literal's polarity.
    pub(crate) fn of_lit(self, lit: Lit) -> LBool {
        match self {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// Convert from a concrete boolean.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` iff assigned (either polarity).
    pub fn is_assigned(self) -> bool {
        !matches!(self, LBool::Undef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_packing_roundtrip() {
        let v = Var::from_index(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_ne!(p.code(), n.code());
    }

    #[test]
    fn lbool_of_lit_respects_polarity() {
        let v = Var::from_index(0);
        assert_eq!(LBool::True.of_lit(Lit::pos(v)), LBool::True);
        assert_eq!(LBool::True.of_lit(Lit::neg(v)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::pos(v)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::neg(v)), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Lit::pos(v)), LBool::Undef);
    }

    #[test]
    fn lit_new_matches_pos_neg() {
        let v = Var::from_index(3);
        assert_eq!(Lit::new(v, true), Lit::pos(v));
        assert_eq!(Lit::new(v, false), Lit::neg(v));
    }
}
