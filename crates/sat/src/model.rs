//! Satisfying assignments.

use crate::lit::{Lit, Var};

/// A total satisfying assignment returned by [`crate::Solver::solve`].
///
/// The model is a snapshot: it stays valid even if the solver is mutated
/// afterwards (incremental use).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    pub(crate) fn new(values: Vec<bool>) -> Model {
        Model { values }
    }

    /// Truth value of a variable.
    ///
    /// # Panics
    /// Panics if `var` was created after this model was produced.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Truth value of a literal.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of variables covered by the model.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Check that every clause (given as a slice of literals) is satisfied.
    /// Convenience for tests and debugging.
    pub fn satisfies_clause(&self, clause: &[Lit]) -> bool {
        clause.iter().any(|&l| self.lit_value(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_lookups() {
        let m = Model::new(vec![true, false]);
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert!(m.value(v0));
        assert!(!m.value(v1));
        assert!(m.lit_value(Lit::pos(v0)));
        assert!(!m.lit_value(Lit::neg(v0)));
        assert!(m.lit_value(Lit::neg(v1)));
        assert_eq!(m.num_vars(), 2);
        assert!(m.satisfies_clause(&[Lit::neg(v0), Lit::neg(v1)]));
        assert!(!m.satisfies_clause(&[Lit::neg(v0), Lit::pos(v1)]));
    }
}
