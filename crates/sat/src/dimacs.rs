//! DIMACS CNF reading and writing.
//!
//! Muppet itself never touches DIMACS — goals arrive as CSV and configs as
//! YAML — but the format is invaluable for debugging the grounding layer
//! (dump a query, run it through a reference solver) and for testing this
//! solver against standard instances.

use std::fmt;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A parsed DIMACS problem: a clause list over `num_vars` variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsProblem {
    /// Declared variable count (1-based variables `1..=num_vars`).
    pub num_vars: usize,
    /// Clauses, as vectors of literals over 0-based [`Var`]s.
    pub clauses: Vec<Vec<Lit>>,
}

/// Upper bound on the variable count [`parse_dimacs`] accepts. An
/// absurd `p cnf` header must fail with a parse error, not drive
/// [`DimacsProblem::into_solver`] into an out-of-memory abort — this is
/// the only solver-facing path fed by raw external input.
pub const MAX_DIMACS_VARS: usize = 1 << 22;

/// Errors produced by [`parse_dimacs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token could not be parsed as a literal.
    BadLiteral(String),
    /// A literal references a variable above the declared count.
    VarOutOfRange(i64),
    /// A clause was not terminated by `0` before end of input.
    UnterminatedClause,
    /// The declared variable count exceeds [`MAX_DIMACS_VARS`].
    TooManyVars(usize),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::BadHeader(l) => write!(f, "bad DIMACS header: {l:?}"),
            DimacsError::BadLiteral(t) => write!(f, "bad DIMACS literal: {t:?}"),
            DimacsError::VarOutOfRange(v) => write!(f, "variable {v} out of declared range"),
            DimacsError::UnterminatedClause => write!(f, "unterminated clause at end of input"),
            DimacsError::TooManyVars(n) => {
                write!(f, "declared {n} variables exceeds the {MAX_DIMACS_VARS} limit")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parse a DIMACS CNF document.
///
/// Comments (`c …`) are skipped. The declared clause count is not enforced
/// (many generators get it wrong); the declared variable count is treated
/// as a minimum and literal bounds are checked against it only when larger
/// literals do not appear.
pub fn parse_dimacs(input: &str) -> Result<DimacsProblem, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut max_var: usize = 0;

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            let nv: usize = parts[2]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            if nv > MAX_DIMACS_VARS {
                return Err(DimacsError::TooManyVars(nv));
            }
            // The declared clause count is not enforced, but it must at
            // least be a number — a header like `p cnf 3 -1` is hostile
            // input, not a sloppy generator.
            let _: usize = parts[3]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            num_vars = Some(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = n.unsigned_abs() as usize;
                // Reject before constructing a `Var`: indexes are u32
                // internally, and a silently truncated variable would
                // corrupt the clause rather than error.
                if v > MAX_DIMACS_VARS {
                    return Err(DimacsError::VarOutOfRange(n));
                }
                max_var = max_var.max(v);
                let var = Var::from_index(v - 1);
                current.push(Lit::new(var, n > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::UnterminatedClause);
    }
    let declared = num_vars.ok_or_else(|| DimacsError::BadHeader("<missing>".to_string()))?;
    if max_var > declared {
        // `max_var` is bounded by MAX_DIMACS_VARS, so this conversion
        // cannot truncate; `try_from` keeps that fact checked.
        let v = i64::try_from(max_var).unwrap_or(i64::MAX);
        return Err(DimacsError::VarOutOfRange(v));
    }
    Ok(DimacsProblem {
        num_vars: declared,
        clauses,
    })
}

/// Render clauses as a DIMACS CNF document.
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", num_vars, clauses.len()));
    for c in clauses {
        for &l in c {
            let n = (l.var().index() + 1) as i64;
            let n = if l.is_positive() { n } else { -n };
            out.push_str(&n.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

impl DimacsProblem {
    /// Load this problem into a fresh [`Solver`].
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        s.new_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let p = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.clauses.len(), 2);
        assert_eq!(p.clauses[0][1], Lit::neg(Var::from_index(1)));
    }

    #[test]
    fn parse_multiline_clause() {
        let p = parse_dimacs("p cnf 2 1\n1\n2 0\n").unwrap();
        assert_eq!(p.clauses, vec![vec![
            Lit::pos(Var::from_index(0)),
            Lit::pos(Var::from_index(1)),
        ]]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_dimacs("p cnf x 2\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 zebra 0\n"),
            Err(DimacsError::BadLiteral(_))
        ));
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 2\n"),
            Err(DimacsError::UnterminatedClause)
        ));
        assert!(matches!(
            parse_dimacs("p cnf 1 1\n2 0\n"),
            Err(DimacsError::VarOutOfRange(_))
        ));
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(DimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn absurd_sizes_error_instead_of_exhausting_memory() {
        // A hostile header must fail at parse time, long before
        // `into_solver` would try to allocate per-variable state.
        assert!(matches!(
            parse_dimacs("p cnf 99999999999 1\n1 0\n"),
            Err(DimacsError::TooManyVars(_))
        ));
        // A hostile literal must not silently truncate to a u32 index.
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n8589934593 0\n"),
            Err(DimacsError::VarOutOfRange(_))
        ));
        // The boundary itself is accepted.
        let at_cap = format!("p cnf {MAX_DIMACS_VARS} 1\n1 0\n");
        assert!(parse_dimacs(&at_cap).is_ok());
    }

    #[test]
    fn adversarial_headers_near_i32_max_are_rejected() {
        // Declared var counts that would truncate a 32-bit index must
        // error at the header, never reach allocation.
        for nv in ["2147483647", "2147483648", "4294967295", "4294967296"] {
            assert!(
                matches!(
                    parse_dimacs(&format!("p cnf {nv} 1\n1 0\n")),
                    Err(DimacsError::TooManyVars(_))
                ),
                "header var count {nv} must be rejected"
            );
        }
        // Literals at and around i32::MAX exceed the declared range and
        // the hard cap; both directions must error, not wrap.
        for lit in ["2147483647", "-2147483648", "9223372036854775807", "-9223372036854775808"] {
            assert!(
                matches!(
                    parse_dimacs(&format!("p cnf 2 1\n{lit} 0\n")),
                    Err(DimacsError::VarOutOfRange(_))
                ),
                "literal {lit} must be rejected"
            );
        }
        // A non-numeric or negative clause count is a bad header, even
        // though the value itself is unused.
        assert!(matches!(
            parse_dimacs("p cnf 3 zebra\n1 0\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("p cnf 3 -1\n1 0\n"),
            Err(DimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 3 2\n1 -2 0\n-3 0\n";
        let p = parse_dimacs(src).unwrap();
        let out = write_dimacs(p.num_vars, &p.clauses);
        assert_eq!(parse_dimacs(&out).unwrap(), p);
    }

    #[test]
    fn into_solver_solves() {
        let p = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let mut s = p.into_solver();
        assert!(s.solve().is_sat());
    }
}
