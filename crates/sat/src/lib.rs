//! # muppet-sat — a CDCL SAT solver
//!
//! This crate is the bottom of the Muppet reproduction stack. The paper's
//! prototype sat on top of Pardinus/Kodkod, which in turn drive an external
//! SAT solver (MiniSat-class). Everything above (`muppet-solver`,
//! `muppet-logic`, `muppet`) reduces questions about configurations — local
//! consistency (Alg. 1), reconciliation (Alg. 2), envelope checking,
//! synthesis and minimal-edit counter-offers — to propositional
//! satisfiability queries answered here.
//!
//! ## Features
//!
//! * Conflict-driven clause learning with first-UIP conflict analysis and
//!   learned-clause minimization.
//! * Two-literal watched propagation.
//! * VSIDS decision heuristic (indexed max-heap) with phase saving.
//! * Luby-sequence restarts.
//! * Three-tier (core/mid/local) learned-clause database keyed by LBD
//!   (glue level), with demotion/eviction and on-use promotion; a flat
//!   single-cap policy remains available as a baseline.
//! * Budget-bounded inprocessing at restart boundaries: clause
//!   subsumption, self-subsuming resolution and vivification over the
//!   learnt DB.
//! * Incremental solving under **assumptions**, returning an assumption
//!   *core* on UNSAT — the mechanism behind the paper's "unsatisfiable core
//!   with blame information" feedback (Sec. 4.3).
//! * Deletion-based MUS (minimal unsatisfiable subset) extraction over
//!   named clause groups ([`mus::shrink_core`]), following Torlak et al.'s
//!   minimal-core approach the paper cites.
//! * DIMACS CNF parsing and emission for debugging and interop.
//!
//! ## Quick example
//!
//! ```
//! use muppet_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! match s.solve() {
//!     SolveResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod clause;
mod dimacs;
mod heap;
mod lit;
mod luby;
mod model;
pub mod mus;
pub mod share;
mod solver;

pub use budget::{Budget, CancelToken, Exhaustion, RetryPolicy};
pub use dimacs::{parse_dimacs, write_dimacs, DimacsError, DimacsProblem};
pub use lit::{LBool, Lit, Var};
pub use luby::luby;
pub use model::Model;
pub use share::ClauseExchange;
pub use solver::{ReduceStrategy, RestartPolicy, SolveResult, Solver, SolverStats};
