//! Indexed max-heap ordered by variable activity (the VSIDS order).
//!
//! Supports O(log n) insert / pop / remove and, crucially, `increase`d
//! re-ordering when a contained variable's activity is bumped — the
//! operation MiniSat's `order_heap` provides.

use crate::lit::Var;

/// Max-heap over variables keyed by an external activity array.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActivityHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `u32::MAX` when absent.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl ActivityHeap {
    pub fn new() -> ActivityHeap {
        ActivityHeap::default()
    }

    /// Make room for a new variable (initially absent from the heap).
    pub fn grow(&mut self) {
        self.pos.push(ABSENT);
    }

    pub fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != ABSENT
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v.0);
        self.pos[v.index()] = (self.heap.len() - 1) as u32;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Pop the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restore heap order after `v`'s activity was increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(i) = self.position(v) {
            self.sift_up(i, activity);
        }
    }

    /// Rebuild the heap after a global activity rescale (order unchanged,
    /// so this is a no-op kept for clarity) or after bulk insertion.
    pub fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    fn position(&self, v: Var) -> Option<usize> {
        let p = self.pos[v.index()];
        if p == ABSENT {
            None
        } else {
            Some(p as usize)
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = ActivityHeap::new();
        for _ in 0..5 {
            h.grow();
        }
        for i in 0..5 {
            h.insert(var(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&activity).map(Var::index)).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn bumped_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for _ in 0..3 {
            h.grow();
        }
        for i in 0..3 {
            h.insert(var(i), &activity);
        }
        activity[0] = 10.0;
        h.bumped(var(0), &activity);
        assert_eq!(h.pop(&activity), Some(var(0)));
    }

    #[test]
    fn insert_is_idempotent_and_contains_tracks() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.grow();
        h.grow();
        h.insert(var(0), &activity);
        h.insert(var(0), &activity);
        assert!(h.contains(var(0)));
        assert!(!h.contains(var(1)));
        assert_eq!(h.pop(&activity), Some(var(0)));
        assert_eq!(h.pop(&activity), None);
        assert!(h.is_empty());
    }
}
