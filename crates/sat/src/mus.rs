//! Minimal unsatisfiable subset (MUS) extraction over named groups.
//!
//! The paper's feedback mechanism (Sec. 4.3) blames failures on specific
//! user inputs: "on configurations with 'holes,' feedback comes as an
//! unsatisfiable core with blame information", following Torlak et al.'s
//! minimal-core work. The encoding layer guards each user-visible unit
//! (one goal row, one policy rule, one envelope predicate) with a fresh
//! *selector* variable; solving under the selectors as assumptions yields
//! a core of selectors, which this module shrinks to a *minimal* one by
//! deletion-based minimization.

use crate::lit::Lit;
use crate::solver::{SolveResult, Solver};

/// Result of [`shrink_core`].
#[derive(Clone, Debug, PartialEq)]
pub enum ShrinkResult {
    /// The assumptions are jointly UNSAT; the payload is a minimal core.
    Minimal(Vec<Lit>),
    /// The assumptions are satisfiable — there is no core to shrink.
    Sat,
    /// A resource budget fired mid-minimization.
    Exhausted {
        /// Smallest core established so far — still a sound UNSAT core,
        /// just not proven minimal — or `None` when the budget fired
        /// before even the initial solve finished.
        best: Option<Vec<Lit>>,
    },
}

impl ShrinkResult {
    /// The minimal core, if minimization ran to completion.
    pub fn minimal(self) -> Option<Vec<Lit>> {
        match self {
            ShrinkResult::Minimal(core) => Some(core),
            _ => None,
        }
    }
}

/// Shrink an assumption core to a minimal one (an irreducible subset whose
/// members are all necessary for unsatisfiability).
///
/// `assumptions` must be jointly UNSAT with the solver's clauses. The
/// returned subset is UNSAT, and removing any single member makes the
/// check pass (i.e. it is a MUS over the assumption set, not merely a
/// smaller core).
///
/// Deletion-based: try dropping each member in turn; keep the drop when
/// the rest remains UNSAT. Each probe is a full (incremental) solver call,
/// so cost is `O(k)` solves for `k` initial core members — fine at Muppet
/// scale where cores name a handful of goals.
///
/// Minimization respects any budget installed with
/// [`Solver::set_budget`] (or `set_conflict_budget`): each probe is a
/// budgeted solve, and once the budget fires the best core found so far
/// is returned as [`ShrinkResult::Exhausted`] rather than discarded.
pub fn shrink_core(solver: &mut Solver, assumptions: &[Lit]) -> ShrinkResult {
    // Start from the solver-reported core, which is usually already much
    // smaller than the full assumption set.
    let mut core: Vec<Lit> = match solver.solve_with_assumptions(assumptions) {
        SolveResult::Unsat(core) => {
            if core.is_empty() {
                // Formula unsat on its own: the empty core is minimal.
                return ShrinkResult::Minimal(Vec::new());
            }
            core
        }
        SolveResult::Sat(_) => return ShrinkResult::Sat,
        SolveResult::Unknown => return ShrinkResult::Exhausted { best: None },
    };

    let mut i = 0;
    while i < core.len() {
        let candidate: Vec<Lit> = core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &l)| l)
            .collect();
        match solver.solve_with_assumptions(&candidate) {
            SolveResult::Unsat(sub) => {
                // Still unsat without core[i]; adopt the (possibly even
                // smaller) reported core and restart scanning from the
                // current position.
                if sub.is_empty() {
                    return ShrinkResult::Minimal(Vec::new());
                }
                core = sub;
                i = 0;
            }
            SolveResult::Sat(_) => {
                // core[i] is necessary.
                i += 1;
            }
            SolveResult::Unknown => return ShrinkResult::Exhausted { best: Some(core) },
        }
    }
    ShrinkResult::Minimal(core)
}

/// Like [`shrink_core`], but **deterministic**: the result is a pure
/// function of the assumption order and the problem semantics,
/// independent of the solver's heuristic state (learned clauses,
/// activities, restarts).
///
/// Starts from the *full ordered assumption list* — not the
/// solver-reported core, whose membership depends on search history —
/// and deletes left to right, never adopting reported sub-cores. The
/// warm incremental engine relies on this to return byte-identical
/// cores from warm, cold and portfolio runs; the price is `O(n)` probes
/// over all `n` assumptions rather than `O(k)` over the first core's
/// `k` members, which is fine at Muppet scale.
pub fn shrink_core_ordered(solver: &mut Solver, assumptions: &[Lit]) -> ShrinkResult {
    // Establish (or confirm) UNSAT; the reported core is discarded.
    match solver.solve_with_assumptions(assumptions) {
        SolveResult::Unsat(core) => {
            if core.is_empty() {
                // Formula unsat on its own: the empty core is minimal.
                return ShrinkResult::Minimal(Vec::new());
            }
        }
        SolveResult::Sat(_) => return ShrinkResult::Sat,
        SolveResult::Unknown => return ShrinkResult::Exhausted { best: None },
    }
    let mut core: Vec<Lit> = assumptions.to_vec();
    let mut i = 0;
    while i < core.len() {
        let candidate: Vec<Lit> = core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &l)| l)
            .collect();
        match solver.solve_with_assumptions(&candidate) {
            SolveResult::Unsat(_) => {
                // Still unsat without core[i]: drop it. The index now
                // points at the next element; every element left of `i`
                // has already been proven necessary *given the current
                // suffix*, and dropping a later element never makes an
                // earlier one droppable once it was necessary, so no
                // rescan is needed.
                core.remove(i);
            }
            SolveResult::Sat(_) => {
                // core[i] is necessary.
                i += 1;
            }
            SolveResult::Unknown => return ShrinkResult::Exhausted { best: Some(core) },
        }
    }
    ShrinkResult::Minimal(core)
}

/// Check whether a set of assumptions is a *minimal* unsatisfiable subset:
/// UNSAT as given, SAT after removing any single element. Intended for
/// tests and assertions.
pub fn is_minimal_core(solver: &mut Solver, core: &[Lit]) -> bool {
    if !solver.solve_with_assumptions(core).is_unsat() {
        return false;
    }
    for i in 0..core.len() {
        let candidate: Vec<Lit> = core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &l)| l)
            .collect();
        if !solver.solve_with_assumptions(&candidate).is_sat() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::{Lit, Var};

    /// Build: selector s_i activates group clause(s). Groups:
    ///   g0: x        g1: ¬x       g2: y   (irrelevant)
    /// MUS over {s0, s1, s2} must be exactly {s0, s1}.
    #[test]
    fn shrinks_to_exact_conflict_pair() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let sel: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause([Lit::neg(sel[0]), Lit::pos(x)]);
        s.add_clause([Lit::neg(sel[1]), Lit::neg(x)]);
        s.add_clause([Lit::neg(sel[2]), Lit::pos(y)]);
        let assumptions: Vec<Lit> = sel.iter().map(|&v| Lit::pos(v)).collect();
        let mut core = shrink_core(&mut s, &assumptions).minimal().unwrap();
        core.sort_unstable();
        let mut expect = vec![Lit::pos(sel[0]), Lit::pos(sel[1])];
        expect.sort_unstable();
        assert_eq!(core, expect);
        assert!(is_minimal_core(&mut s, &core));
    }

    #[test]
    fn sat_assumptions_report_sat() {
        let mut s = Solver::new();
        let x = s.new_var();
        s.add_clause([Lit::pos(x)]);
        assert_eq!(shrink_core(&mut s, &[Lit::pos(x)]), ShrinkResult::Sat);
    }

    #[test]
    fn unsat_formula_gives_empty_core() {
        let mut s = Solver::new();
        let x = s.new_var();
        s.add_clause([Lit::pos(x)]);
        s.add_clause([Lit::neg(x)]);
        let y = s.new_var();
        assert_eq!(
            shrink_core(&mut s, &[Lit::pos(y)]),
            ShrinkResult::Minimal(Vec::new())
        );
    }

    /// An expired deadline makes shrinking exhaust immediately instead of
    /// hanging or misreporting SAT/UNSAT.
    #[test]
    fn expired_budget_exhausts_before_probing() {
        use crate::budget::Budget;
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x), Lit::pos(y)]);
        s.set_budget(Budget::unlimited().with_conflict_cap(0));
        assert_eq!(
            shrink_core(&mut s, &[Lit::neg(x), Lit::neg(y)]),
            ShrinkResult::Exhausted { best: None }
        );
    }

    /// Overlapping conflicts: groups {a}, {¬a ∨ b}, {¬b}, {¬a}. Two MUSes
    /// exist ({g0,g3} and {g0,g1,g2}); the shrunk core must be one of them
    /// and must be minimal.
    #[test]
    fn finds_some_minimal_core_among_several() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let sel: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause([Lit::neg(sel[0]), Lit::pos(a)]);
        s.add_clause([Lit::neg(sel[1]), Lit::neg(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(sel[2]), Lit::neg(b)]);
        s.add_clause([Lit::neg(sel[3]), Lit::neg(a)]);
        let assumptions: Vec<Lit> = sel.iter().map(|&v| Lit::pos(v)).collect();
        let core = shrink_core(&mut s, &assumptions).minimal().unwrap();
        assert!(is_minimal_core(&mut s, &core));
        assert!(core.len() == 2 || core.len() == 3);
        assert!(core.contains(&Lit::pos(sel[0])));
    }

    /// Ordered shrinking is a pure function of the assumption order:
    /// with several MUSes available it always lands on the same one,
    /// even after the solver has accumulated unrelated search state.
    #[test]
    fn ordered_shrink_is_deterministic_under_warm_state() {
        let build = |s: &mut Solver| -> Vec<Lit> {
            let a = s.new_var();
            let b = s.new_var();
            let sel: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            s.add_clause([Lit::neg(sel[0]), Lit::pos(a)]);
            s.add_clause([Lit::neg(sel[1]), Lit::neg(a), Lit::pos(b)]);
            s.add_clause([Lit::neg(sel[2]), Lit::neg(b)]);
            s.add_clause([Lit::neg(sel[3]), Lit::neg(a)]);
            sel.iter().map(|&v| Lit::pos(v)).collect()
        };
        let mut cold = Solver::new();
        let assumptions = build(&mut cold);
        let cold_core = shrink_core_ordered(&mut cold, &assumptions).minimal().unwrap();
        // {s0, s3} is the left-to-right deletion fixpoint.
        assert_eq!(cold_core, vec![assumptions[0], assumptions[3]]);
        assert!(is_minimal_core(&mut cold, &cold_core));

        let mut warm = Solver::new();
        let assumptions = build(&mut warm);
        // Perturb heuristic state with unrelated solves first.
        for _ in 0..3 {
            assert!(warm.solve_with_assumptions(&assumptions[1..2]).is_sat());
            assert!(warm
                .solve_with_assumptions(&[assumptions[0], assumptions[3]])
                .is_unsat());
        }
        let warm_core = shrink_core_ordered(&mut warm, &assumptions).minimal().unwrap();
        assert_eq!(warm_core, vec![assumptions[0], assumptions[3]]);
    }
}
