//! The CDCL search engine.
//!
//! A MiniSat-lineage solver: two-watched-literal propagation, first-UIP
//! conflict analysis with basic learned-clause minimization, VSIDS + phase
//! saving, Luby restarts, LBD-aware clause-database reduction, and
//! assumption-based incremental solving with core extraction.

use crate::budget::Budget;
use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::ActivityHeap;
use crate::lit::{LBool, Lit, Var};
use crate::luby::LubyRestarts;
use crate::model::Model;
use crate::share::ClauseExchange;
use std::sync::Arc;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveResult {
    /// Satisfiable, with a total model.
    Sat(Model),
    /// Unsatisfiable. The payload is a *core*: a subset of the assumptions
    /// passed to [`Solver::solve_with_assumptions`] that is already jointly
    /// inconsistent with the clauses. Empty when the clauses alone are
    /// unsatisfiable.
    Unsat(Vec<Lit>),
    /// A configured resource limit (conflict budget, deadline,
    /// propagation cap, or cancellation) fired before an answer.
    Unknown,
}

impl SolveResult {
    /// `true` if this result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` if this result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat(_))
    }
}

/// Counters describing the work a solver has done. Useful for the paper's
/// performance experiments (E4) and the ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Total clauses ever learned (not the number currently retained in
    /// the DB — see `deleted_clauses` for what reduction removed).
    pub learned_clauses: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Learned clauses exported to a shared portfolio pool.
    pub exported_clauses: u64,
    /// Foreign clauses imported from a shared portfolio pool.
    pub imported_clauses: u64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Seeded xorshift64 state driving occasional random decisions
/// (portfolio tie-breaking diversification).
#[derive(Clone, Copy, Debug)]
struct RandomBranching {
    state: u64,
    /// A random decision is attempted with probability ~`1/inv_freq`.
    inv_freq: u32,
}

impl RandomBranching {
    fn next(&mut self) -> u64 {
        // xorshift64: full-period, allocation-free, deterministic.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

/// A worker's connection to a shared portfolio clause pool.
#[derive(Clone, Debug)]
struct ExchangeLink {
    worker: usize,
    pool: Arc<dyn ClauseExchange>,
    /// Only clauses with LBD at or below this are exported.
    export_lbd_max: u32,
}

/// Clauses longer than this are never exported: they are unlikely to
/// help other workers and would churn the byte-bounded pool.
const EXPORT_MAX_LEN: usize = 32;

/// A CDCL SAT solver. See the [crate docs](crate) for an overview.
///
/// `Solver` is `Clone`: a portfolio clones one master solver per worker
/// so every worker starts from the full incremental clause state, then
/// diversifies via [`Solver::set_restart_base`],
/// [`Solver::set_var_decay`], [`Solver::set_default_polarity`] /
/// [`Solver::randomize_polarities`] and
/// [`Solver::set_random_branching`].
#[derive(Clone, Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Watch lists indexed by `Lit::code()`; `watches[p]` holds clauses to
    /// visit when `p` becomes true (i.e. clauses watching `¬p`).
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable.
    polarity: Vec<bool>,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    heap: ActivityHeap,
    /// Assignment trail; decision-level boundaries in `trail_lim`.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    /// False once a top-level contradiction has been derived.
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    seen: Vec<bool>,
    /// Scratch buffers reused across conflicts.
    analyze_tmp: Vec<Lit>,
    to_clear: Vec<Var>,
    max_learnt: usize,
    conflict_budget: Option<u64>,
    /// Base conflict interval for Luby restarts (diversified per worker).
    restart_base: u64,
    /// VSIDS decay factor (diversified per worker).
    var_decay: f64,
    /// Occasional random decisions, when configured.
    rnd: Option<RandomBranching>,
    /// Shared learned-clause pool, when part of a portfolio.
    exchange: Option<ExchangeLink>,
    /// Resource budget for subsequent solves (deadline / caps /
    /// cancellation). Caps are measured against `budget_base`.
    budget: Budget,
    /// `(conflicts, propagations)` totals at the moment the budget was
    /// installed, so its caps count only work done under it.
    budget_base: (u64, u64),
    /// Statistics since construction.
    pub stats: SolverStats,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 64;

enum SearchOutcome {
    Sat(Model),
    Unsat(Vec<Lit>),
    Restart,
    Budget,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            seen: Vec::new(),
            analyze_tmp: Vec::new(),
            to_clear: Vec::new(),
            max_learnt: 4000,
            conflict_budget: None,
            restart_base: RESTART_BASE,
            var_decay: VAR_DECAY,
            rnd: None,
            exchange: None,
            budget: Budget::unlimited(),
            budget_base: (0, 0),
            stats: SolverStats::default(),
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow();
        self.heap.insert(v, &self.activity);
        v
    }

    /// Allocate `n` fresh variables and return them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Limit the total number of conflicts across subsequent `solve` calls'
    /// searches; `None` removes the limit. When exhausted, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget.map(|b| self.stats.conflicts + b);
    }

    /// Install a [`Budget`] governing subsequent `solve` calls: wall-clock
    /// deadline, conflict/propagation caps, and cooperative cancellation.
    /// Caps count work done from this call onward; the deadline and
    /// cancellation token are absolute. When any limit fires, `solve`
    /// returns [`SolveResult::Unknown`].
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
        self.budget_base = (self.stats.conflicts, self.stats.propagations);
    }

    /// The currently installed budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Check the installed budget against work done since it was
    /// installed. `None` while within limits.
    pub fn budget_exhausted(&self) -> Option<crate::budget::Exhaustion> {
        if self.budget.is_unlimited() {
            return None;
        }
        self.budget.check(
            self.stats.conflicts - self.budget_base.0,
            self.stats.propagations - self.budget_base.1,
        )
    }

    /// Lower the learned-clause retention threshold. Exposed for tests
    /// that need to exercise database reduction and garbage collection
    /// deterministically on small instances.
    #[doc(hidden)]
    pub fn set_max_learnt(&mut self, max: usize) {
        self.max_learnt = max;
    }

    /// `false` once the clause set has been proved unsatisfiable at the
    /// top level (every future `solve` returns `Unsat`).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Set the base conflict interval of the Luby restart schedule
    /// (clamped to ≥ 1). Distinct bases give portfolio workers distinct
    /// restart sequences.
    pub fn set_restart_base(&mut self, base: u64) {
        self.restart_base = base.max(1);
    }

    /// Set the VSIDS activity decay factor, clamped to `[0.5, 0.999]`.
    /// Lower values focus harder on recent conflicts.
    pub fn set_var_decay(&mut self, decay: f64) {
        self.var_decay = decay.clamp(0.5, 0.999);
    }

    /// Reset every variable's saved phase to `polarity` (the phase used
    /// the next time the variable is decided, until search overwrites
    /// it). The solver's own default is `false`.
    pub fn set_default_polarity(&mut self, polarity: bool) {
        for p in &mut self.polarity {
            *p = polarity;
        }
    }

    /// Randomize every variable's saved phase from `seed`
    /// (deterministically — the same seed gives the same phases).
    pub fn randomize_polarities(&mut self, seed: u64) {
        let mut rng = RandomBranching {
            state: seed | 1,
            inv_freq: 0,
        };
        for p in &mut self.polarity {
            *p = rng.next() & 1 == 1;
        }
    }

    /// Make roughly one in `inv_freq` branching decisions pick a random
    /// unassigned variable instead of the VSIDS maximum, seeded
    /// deterministically. `inv_freq == 0` disables random branching.
    pub fn set_random_branching(&mut self, seed: u64, inv_freq: u32) {
        self.rnd = if inv_freq == 0 {
            None
        } else {
            Some(RandomBranching {
                state: seed | 1,
                inv_freq,
            })
        };
    }

    /// Connect this solver to a shared portfolio clause pool as worker
    /// `worker`. Clauses learned with LBD ≤ `export_lbd_max` (and at
    /// most 32 literals) are exported as they are learned; foreign
    /// clauses are imported at every restart boundary.
    pub fn set_clause_exchange(
        &mut self,
        worker: usize,
        pool: Arc<dyn ClauseExchange>,
        export_lbd_max: u32,
    ) {
        self.exchange = Some(ExchangeLink {
            worker,
            pool,
            export_lbd_max,
        });
    }

    /// Disconnect from any shared clause pool.
    pub fn clear_clause_exchange(&mut self) {
        self.exchange = None;
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the clause set is now known to be
    /// unsatisfiable at the top level.
    ///
    /// The clause is simplified on entry: duplicate literals are removed,
    /// tautologies are discarded, and literals already false at level 0 are
    /// dropped. Adding a clause cancels any in-progress search state (the
    /// solver backtracks to decision level 0), which makes the solver safe
    /// to use incrementally between `solve` calls.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        // Tautology / root simplification.
        let mut simplified = Vec::with_capacity(clause.len());
        for (i, &l) in clause.iter().enumerate() {
            if i + 1 < clause.len() && clause[i + 1] == !l {
                return true; // tautology: l and ¬l adjacent after sort
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => continue,   // falsified at level 0: drop
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(simplified, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.get(cref);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).code()].push(Watcher {
            cref,
            blocker: l1,
        });
        self.watches[(!l1).code()].push(Watcher {
            cref,
            blocker: l0,
        });
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = lit.is_positive();
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Two-watched-literal unit propagation. Returns a conflicting clause
    /// if one is found.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true, clause satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                if self.db.get(w.cref).deleted {
                    // Stale watcher from a lazily-deleted clause: drop it.
                    continue;
                }
                // Normalize so the falsified watched literal is at index 1.
                let first = {
                    let c = self.db.get_mut(w.cref);
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                    c.lits[0]
                };
                let w_new = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = w_new;
                    j += 1;
                    continue;
                }
                // Look for an unfalsified replacement watch.
                {
                    let assigns = &self.assigns;
                    let c = self.db.get_mut(w.cref);
                    for k in 2..c.lits.len() {
                        let q = c.lits[k];
                        if assigns[q.var().index()].of_lit(q) != LBool::False {
                            c.lits.swap(1, k);
                            let new_watch = (!c.lits[1]).code();
                            self.watches[new_watch].push(w_new);
                            continue 'watchers;
                        }
                    }
                }
                // Clause is unit or conflicting under the current trail.
                ws[j] = w_new;
                j += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    // Copy the remaining watchers back unchanged.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.heap.rebuild(&self.activity);
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let inc = self.cla_inc;
        let c = self.db.get_mut(cref);
        if !c.learnt {
            return;
        }
        c.activity += inc;
        if c.activity > RESCALE_LIMIT {
            for r in self.db.learnt_refs() {
                self.db.get_mut(r).activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
        self.cla_inc /= CLA_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();
        debug_assert!(self.to_clear.is_empty());

        loop {
            self.bump_clause(confl);
            self.analyze_tmp.clear();
            self.analyze_tmp
                .extend(self.db.get(confl).lits.iter().copied());
            let start = usize::from(p.is_some());
            for k in start..self.analyze_tmp.len() {
                let q = self.analyze_tmp[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()]
                .expect("non-decision literal on conflict path must have a reason");
        }

        // Basic learned-clause minimization: a literal is redundant if its
        // reason's antecedents are all already in the clause (or fixed at
        // level 0).
        let minimized: Vec<Lit> = {
            let mut out = Vec::with_capacity(learnt.len());
            out.push(learnt[0]);
            for &l in &learnt[1..] {
                let redundant = match self.reason[l.var().index()] {
                    None => false,
                    Some(cr) => self.db.get(cr).lits[1..].iter().all(|&q| {
                        self.seen[q.var().index()] || self.level[q.var().index()] == 0
                    }),
                };
                if !redundant {
                    out.push(l);
                }
            }
            out
        };

        for v in self.to_clear.drain(..) {
            self.seen[v.index()] = false;
        }

        let mut learnt = minimized;
        // Backtrack level = second-highest decision level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()]
                    > self.level[learnt[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.export_learnt(&learnt, 1);
            self.enqueue(learnt[0], None);
        } else {
            let lbd = self.compute_lbd(&learnt);
            self.export_learnt(&learnt, lbd);
            let asserting = learnt[0];
            let cref = self.db.alloc(learnt, true, lbd);
            self.attach(cref);
            self.bump_clause(cref);
            self.enqueue(asserting, Some(cref));
        }
    }

    /// Offer a freshly learned clause to the shared pool, if this
    /// solver is a portfolio worker and the clause is glue-y enough.
    fn export_learnt(&mut self, lits: &[Lit], lbd: u32) {
        let exported = match &self.exchange {
            Some(link) if lbd <= link.export_lbd_max && lits.len() <= EXPORT_MAX_LEN => {
                link.pool.export(link.worker, lits, lbd);
                true
            }
            _ => false,
        };
        if exported {
            self.stats.exported_clauses += 1;
        }
    }

    /// Integrate clauses learned by other portfolio workers. Must be
    /// called at decision level 0; returns `false` if an import proved
    /// the formula unsatisfiable outright.
    fn import_shared(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let Some(link) = self.exchange.clone() else {
            return true;
        };
        for (lits, lbd) in link.pool.import(link.worker) {
            if !self.ok {
                return false;
            }
            self.add_shared(lits, lbd);
        }
        self.ok
    }

    /// Integrate a batch of foreign learned clauses, e.g. a portfolio
    /// pool drained back into the master solver after a race. Cancels
    /// any in-progress search state (like [`Solver::add_clause`]); the
    /// clauses are stored as learnt, so database reduction can evict
    /// them again if they never help.
    pub fn absorb_shared(&mut self, clauses: Vec<(Vec<Lit>, u32)>) {
        if !self.ok {
            return;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        for (lits, lbd) in clauses {
            if !self.ok {
                return;
            }
            self.add_shared(lits, lbd);
        }
    }

    /// Add a foreign learned clause. Mirrors the level-0 simplification
    /// of [`Solver::add_clause`], but stores the clause as *learnt* so
    /// database reduction can evict it again if it never helps.
    fn add_shared(&mut self, lits: Vec<Lit>, lbd: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut clause = lits;
        clause.sort_unstable();
        clause.dedup();
        let mut simplified = Vec::with_capacity(clause.len());
        for (i, &l) in clause.iter().enumerate() {
            if i + 1 < clause.len() && clause[i + 1] == !l {
                return; // tautology
            }
            match self.lit_value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => continue,
                LBool::Undef => simplified.push(l),
            }
        }
        self.stats.imported_clauses += 1;
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let cref = self.db.alloc(simplified, true, lbd.max(1));
                self.attach(cref);
            }
        }
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        let c = self.db.get(cref);
        let v = c.lits[0].var();
        self.reason[v.index()] == Some(cref) && self.assigns[v.index()].is_assigned()
    }

    /// Delete roughly half of the learned clauses, preferring to keep
    /// low-LBD ("glue") and high-activity clauses. Deletion is lazy: stale
    /// watchers are dropped during propagation and fully collected at the
    /// next restart.
    fn reduce_db(&mut self) {
        let mut refs: Vec<ClauseRef> = self
            .db
            .learnt_refs()
            .into_iter()
            .filter(|&r| !self.locked(r) && self.db.get(r).lits.len() > 2)
            .collect();
        refs.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            ca.lbd
                .cmp(&cb.lbd)
                .then(cb.activity.partial_cmp(&ca.activity).unwrap_or(std::cmp::Ordering::Equal))
        });
        let keep = refs.len() / 2;
        for &r in &refs[keep..] {
            if self.db.get(r).lbd <= 3 {
                continue; // always keep glue clauses
            }
            self.db.delete(r);
            self.stats.deleted_clauses += 1;
        }
        self.max_learnt += self.max_learnt / 3;
    }

    /// Drop stale watchers and let the clause DB recycle tombstoned slots.
    /// Must be called at decision level 0.
    fn collect_garbage(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.db.has_pending_garbage() {
            return;
        }
        for list in &mut self.watches {
            let db = &self.db;
            list.retain(|w| !db.get(w.cref).deleted);
        }
        self.db.collect_garbage();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Occasional random decision for portfolio diversification: a
        // random unassigned variable instead of the VSIDS maximum. The
        // variable stays in the heap; assigned entries are skipped (and
        // re-inserted on backtrack) by the normal path below.
        if let Some(r) = &mut self.rnd {
            if !self.assigns.is_empty() {
                let roll = r.next();
                if roll % u64::from(r.inv_freq) == 0 {
                    let idx = (r.next() >> 16) as usize % self.assigns.len();
                    if !self.assigns[idx].is_assigned() {
                        return Some(Lit::new(Var::from_index(idx), self.polarity[idx]));
                    }
                }
            }
        }
        while let Some(v) = self.heap.pop(&self.activity) {
            if !self.assigns[v.index()].is_assigned() {
                return Some(Lit::new(v, self.polarity[v.index()]));
            }
        }
        None
    }

    fn extract_model(&self) -> Model {
        let values = self
            .assigns
            .iter()
            .map(|a| match a {
                LBool::True => true,
                LBool::False => false,
                // Unconstrained variables may remain unassigned only if
                // they were never entered into the heap, which new_var
                // prevents; default defensively.
                LBool::Undef => false,
            })
            .collect();
        Model::new(values)
    }

    /// Compute the subset of assumptions responsible for the falsification
    /// of assumption `a` (which currently evaluates to false).
    fn analyze_final(&mut self, a: Lit) -> Vec<Lit> {
        let mut core = vec![a];
        if self.decision_level() == 0 {
            return core;
        }
        debug_assert!(self.to_clear.is_empty());
        self.seen[a.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision inside the assumption prefix: it is one of
                    // the assumptions (solve only decides assumptions
                    // before branching, and branches cannot be reached with
                    // an unresolved falsified assumption).
                    core.push(x);
                }
                Some(cr) => {
                    self.analyze_tmp.clear();
                    self.analyze_tmp
                        .extend(self.db.get(cr).lits.iter().copied());
                    for &q in &self.analyze_tmp[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[a.var().index()] = false;
        // Deduplicate: the falsified assumption may also appear as a
        // decision (contradictory assumption pairs).
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Solve the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumption literals.
    ///
    /// On `Unsat`, the returned core is a subset of `assumptions` that is
    /// jointly inconsistent with the clause set (not necessarily minimal —
    /// see [`crate::mus`] for minimization).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat(Vec::new());
        }
        // An already-exhausted budget (expired deadline, tripped
        // cancellation) means we must not start searching at all.
        if self.budget_exhausted().is_some() {
            return SolveResult::Unknown;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat(Vec::new());
        }
        self.collect_garbage();
        if !self.import_shared() {
            return SolveResult::Unsat(Vec::new());
        }
        let mut restarts = LubyRestarts::new(self.restart_base);
        loop {
            if self.budget_exhausted().is_some() {
                self.cancel_until(0);
                return SolveResult::Unknown;
            }
            let budget = restarts.next_budget();
            match self.search(budget, assumptions) {
                SearchOutcome::Sat(m) => {
                    self.cancel_until(0);
                    return SolveResult::Sat(m);
                }
                SearchOutcome::Unsat(core) => {
                    self.cancel_until(0);
                    return SolveResult::Unsat(core);
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    self.collect_garbage();
                    if !self.import_shared() {
                        return SolveResult::Unsat(Vec::new());
                    }
                }
                SearchOutcome::Budget => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> SearchOutcome {
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat(Vec::new());
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.record_learnt(learnt);
                self.decay_activities();
                if let Some(limit) = self.conflict_budget {
                    if self.stats.conflicts >= limit {
                        return SearchOutcome::Budget;
                    }
                }
                if self.budget_exhausted().is_some() {
                    return SearchOutcome::Budget;
                }
            } else {
                if conflicts_here >= budget {
                    return SearchOutcome::Restart;
                }
                // Conflict-free stretches still consume wall clock and
                // propagations; poll the budget every few hundred
                // decisions so deadlines and cancellation stay responsive.
                if self.stats.decisions & 0xFF == 0 && self.budget_exhausted().is_some() {
                    return SearchOutcome::Budget;
                }
                if self.db.num_learnt > self.max_learnt {
                    self.reduce_db();
                }
                // Place assumptions as the first decisions.
                let mut next = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: dummy decision level keeps
                            // the level↔assumption-index correspondence.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            let core = self.analyze_final(a);
                            return SearchOutcome::Unsat(core);
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                if next.is_none() {
                    next = self.pick_branch();
                    if next.is_none() {
                        return SearchOutcome::Sat(self.extract_model());
                    }
                    self.stats.decisions += 1;
                }
                self.new_decision_level();
                self.enqueue(next.expect("checked above"), None);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hole-index loops in PHP encoders read better as written
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, i: i32) -> Lit {
        let idx = i.unsigned_abs() as usize - 1;
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::new(vars[idx], i > 0)
    }

    /// Build a solver from clauses in DIMACS-like integer notation.
    fn solver_from(clauses: &[&[i32]]) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(&mut s, &mut vars, i)).collect();
            s.add_clause(ls);
        }
        (s, vars)
    }

    #[test]
    fn trivially_sat() {
        let (mut s, vars) = solver_from(&[&[1, 2], &[-1]]);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(!m.value(vars[0]));
                assert!(m.value(vars[1]));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn trivially_unsat() {
        let (mut s, _) = solver_from(&[&[1], &[-1]]);
        assert!(s.solve().is_unsat());
        assert!(!s.is_ok());
        // Remains unsat forever.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unsat_via_resolution_chain() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ ¬b) is unsat.
        let (mut s, _) = solver_from(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautologies_are_ignored() {
        let (mut s, _) = solver_from(&[&[1, -1], &[2, -2, 3]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let (mut s, vars) = solver_from(&[&[1, 1, 1]]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(vars[0])),
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // Classic PHP(4,3): var p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_3_into_3_is_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| s.new_vars(3)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..3 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                // Verify: it is a perfect matching.
                for row in &p {
                    assert!(row.iter().any(|&v| m.value(v)));
                }
                for j in 0..3 {
                    assert_eq!(p.iter().filter(|row| m.value(row[j])).count(), 1);
                }
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn assumptions_flip_satisfiability() {
        let (mut s, mut vars) = solver_from(&[&[1, 2]]);
        let a = lit(&mut s, &mut vars, -1);
        let b = lit(&mut s, &mut vars, -2);
        // Assuming ¬a forces b.
        match s.solve_with_assumptions(&[a]) {
            SolveResult::Sat(m) => assert!(m.value(vars[1])),
            r => panic!("{r:?}"),
        }
        // Assuming ¬a ∧ ¬b is unsat; the core must mention both.
        match s.solve_with_assumptions(&[a, b]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&a));
                assert!(core.contains(&b));
            }
            r => panic!("{r:?}"),
        }
        // The solver is still usable and sat without assumptions.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn contradictory_assumptions_yield_core() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v), Lit::neg(v)]); // tautology, ignored
        let w = s.new_var();
        s.add_clause([Lit::pos(w)]);
        match s.solve_with_assumptions(&[Lit::pos(v), Lit::neg(v)]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&Lit::pos(v)) && core.contains(&Lit::neg(v)));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn core_excludes_irrelevant_assumptions() {
        // x1 must be true; assumption ¬x1 conflicts but x2/x3 assumptions
        // are irrelevant and must not appear in the core.
        let (mut s, mut vars) = solver_from(&[&[1]]);
        let na = lit(&mut s, &mut vars, -1);
        let b = lit(&mut s, &mut vars, 2);
        let c = lit(&mut s, &mut vars, 3);
        match s.solve_with_assumptions(&[b, c, na]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&na));
                assert!(!core.contains(&b));
                assert!(!core.contains(&c));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn assumption_core_via_propagation_chain() {
        // a → b → c, assume a and ¬c: core = {a, ¬c}.
        let (mut s, mut vars) = solver_from(&[&[-1, 2], &[-2, 3]]);
        let a = lit(&mut s, &mut vars, 1);
        let nc = lit(&mut s, &mut vars, -3);
        let junk = {
            let v = s.new_var();
            Lit::pos(v)
        };
        match s.solve_with_assumptions(&[junk, a, nc]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&a));
                assert!(core.contains(&nc));
                assert!(!core.contains(&junk));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn incremental_add_after_solve() {
        let (mut s, mut vars) = solver_from(&[&[1, 2]]);
        assert!(s.solve().is_sat());
        let c1 = lit(&mut s, &mut vars, -1);
        s.add_clause([c1]);
        assert!(s.solve().is_sat());
        let c2 = lit(&mut s, &mut vars, -2);
        s.add_clause([c2]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn models_satisfy_all_clauses_random() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x4d55_5050);
        for round in 0..30 {
            let n = 8 + round % 5;
            let mut s = Solver::new();
            let vars = s.new_vars(n);
            let mut clauses = Vec::new();
            for _ in 0..(3 * n) {
                let len = rng.random_range(1..=3);
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = vars[rng.random_range(0..n)];
                    c.push(Lit::new(v, rng.random_bool(0.5)));
                }
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if let SolveResult::Sat(m) = s.solve() {
                for c in &clauses {
                    assert!(m.satisfies_clause(c), "clause {c:?} unsatisfied");
                }
            }
        }
    }

    #[test]
    fn clause_db_reduction_and_gc_under_pressure() {
        // PHP(7,6) with an aggressively small retention threshold: the
        // solver must reduce its learned-clause database (and collect the
        // tombstoned slots at restarts) repeatedly and still prove UNSAT.
        let mut s = Solver::new();
        s.set_max_learnt(25);
        let p: Vec<Vec<Var>> = (0..7).map(|_| s.new_vars(6)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(
            s.stats.deleted_clauses > 0,
            "reduction must have fired: {:?}",
            s.stats
        );
        assert!(s.stats.restarts > 0, "restarts engaged: {:?}", s.stats);
    }

    #[test]
    fn reduction_does_not_change_satisfiable_answers() {
        // A satisfiable instance solved under the same pressure: the
        // model must still satisfy every clause.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut s = Solver::new();
        s.set_max_learnt(20);
        let n = 30;
        let vars = s.new_vars(n);
        // Random planted-solution instance: fix a hidden assignment and
        // emit clauses it satisfies.
        let hidden: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
        let mut clauses = Vec::new();
        for _ in 0..(6 * n) {
            let mut clause = Vec::new();
            // Ensure at least one literal agrees with the hidden model.
            let anchor = rng.random_range(0..n);
            clause.push(Lit::new(vars[anchor], hidden[anchor]));
            for _ in 0..2 {
                let v = rng.random_range(0..n);
                clause.push(Lit::new(vars[v], rng.random_bool(0.5)));
            }
            clauses.push(clause.clone());
            s.add_clause(clause);
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                for c in &clauses {
                    assert!(m.satisfies_clause(c));
                }
            }
            other => panic!("planted instance must be SAT: {other:?}"),
        }
    }

    #[test]
    fn budget_returns_unknown_on_hard_instance() {
        // PHP(7,6) takes well over 2 conflicts.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..7).map(|_| s.new_vars(6)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        s.set_conflict_budget(Some(2));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }
}
