//! The CDCL search engine.
//!
//! A MiniSat-lineage solver: two-watched-literal propagation, first-UIP
//! conflict analysis with basic learned-clause minimization, VSIDS + phase
//! saving, Luby restarts, LBD-aware clause-database reduction, and
//! assumption-based incremental solving with core extraction.

use crate::budget::Budget;
use crate::clause::{ClauseDb, ClauseRef, Tier};
use crate::heap::ActivityHeap;
use crate::lit::{LBool, Lit, Var};
use crate::luby::LubyRestarts;
use crate::model::Model;
use crate::share::ClauseExchange;
use std::sync::Arc;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveResult {
    /// Satisfiable, with a total model.
    Sat(Model),
    /// Unsatisfiable. The payload is a *core*: a subset of the assumptions
    /// passed to [`Solver::solve_with_assumptions`] that is already jointly
    /// inconsistent with the clauses. Empty when the clauses alone are
    /// unsatisfiable.
    Unsat(Vec<Lit>),
    /// A configured resource limit (conflict budget, deadline,
    /// propagation cap, or cancellation) fired before an answer.
    Unknown,
}

impl SolveResult {
    /// `true` if this result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` if this result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat(_))
    }
}

/// Counters describing the work a solver has done. Useful for the paper's
/// performance experiments (E4) and the ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Total clauses ever learned (not the number currently retained in
    /// the DB — see `deleted_clauses` for what reduction removed).
    pub learned_clauses: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Learned clauses exported to a shared portfolio pool.
    pub exported_clauses: u64,
    /// Foreign clauses imported from a shared portfolio pool.
    pub imported_clauses: u64,
    /// Inprocessing passes run at restart boundaries.
    pub inprocessings: u64,
    /// Learnt clauses removed by inprocessing (root-satisfied or
    /// subsumed by another clause).
    pub subsumed_clauses: u64,
    /// Learnt clauses shortened by self-subsuming resolution or root
    /// simplification.
    pub strengthened_clauses: u64,
    /// Learnt clauses shortened by vivification.
    pub vivified_clauses: u64,
    /// Learnt clauses demoted Mid → Local by tiered reduction.
    pub tier_demotions: u64,
    /// Learnt clauses promoted to a better tier after their LBD
    /// improved during conflict analysis.
    pub tier_promotions: u64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Seeded xorshift64 state driving occasional random decisions
/// (portfolio tie-breaking diversification).
#[derive(Clone, Copy, Debug)]
struct RandomBranching {
    state: u64,
    /// A random decision is attempted with probability ~`1/inv_freq`.
    inv_freq: u32,
}

impl RandomBranching {
    fn next(&mut self) -> u64 {
        // xorshift64: full-period, allocation-free, deterministic.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

/// A worker's connection to a shared portfolio clause pool.
#[derive(Clone, Debug)]
struct ExchangeLink {
    worker: usize,
    pool: Arc<dyn ClauseExchange>,
    /// Only clauses with LBD at or below this are exported.
    export_lbd_max: u32,
}

/// Clauses longer than this are never exported: they are unlikely to
/// help other workers and would churn the byte-bounded pool.
const EXPORT_MAX_LEN: usize = 32;

/// Learned-clause retention policy.
///
/// `Flat` is the legacy single-cap policy (delete the worse half of the
/// learnt DB whenever it exceeds `max_learnt`); `Tiered` is the
/// Chanseok-Oh style three-tier policy (glue clauses kept forever,
/// mid-LBD clauses demoted when stale, the rest evicted by activity).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReduceStrategy {
    /// Single retention cap over the whole learnt DB (legacy policy).
    Flat,
    /// Three-tier core/mid/local DB keyed by LBD (default).
    #[default]
    Tiered,
}

/// Restart scheduling policy.
///
/// `Luby` is the fixed universal schedule (restart_base-scaled Luby
/// sequence) and the default: restart behaviour stays reproducible and
/// robust across instance families. `Glucose` restarts when the recent
/// learnt-clause LBD trend turns worse than the run's global average
/// (with trail-depth blocking near models) — an adaptive policy whose
/// aggressive trajectories pay off on refutation-heavy workloads but
/// swing wildly on satisfiable ones; portfolio workers are the natural
/// place to mix it in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RestartPolicy {
    /// Fixed Luby-sequence schedule (default).
    #[default]
    Luby,
    /// Adaptive LBD-trend restarts with trail blocking.
    Glucose,
}

/// Glucose restart trigger: recent-LBD EMA must exceed the global
/// average by this factor.
const GLUCOSE_K: f64 = 1.25;
/// Smoothing window of the recent-LBD EMA (in conflicts).
const GLUCOSE_EMA_WINDOW: f64 = 32.0;
/// Glucose restart *blocking*: when the assignment trail at a conflict
/// is this much deeper than its recent average, the solver is likely
/// closing in on a model — suppress the pending restart.
const GLUCOSE_BLOCK_R: f64 = 1.4;
/// Smoothing window of the trail-depth EMA (in conflicts).
const GLUCOSE_TRAIL_WINDOW: f64 = 5000.0;

/// LBD at or below which a learnt clause is glue ([`Tier::Core`]).
const CORE_LBD: u32 = 3;
/// LBD at or below which a learnt clause is [`Tier::Mid`].
const MID_LBD: u32 = 6;
/// Conflicts between inprocessing passes.
const INPROCESS_INTERVAL: u64 = 6000;
/// Upper bound on the geometric interval backoff (interval doubles
/// after every pass up to `interval * cap`).
const INPROCESS_STRETCH_CAP: u64 = 16;
/// Clauses longer than this are not used as subsumption candidates.
const SUBSUME_MAX_LEN: usize = 20;
/// Cap on subset checks per subsumption pass.
const SUBSUME_CHECK_CAP: usize = 100_000;
/// Clauses longer than this are not vivified.
const VIVIFY_MAX_LEN: usize = 40;
/// Cap on propagations per vivification pass.
const VIVIFY_PROP_CAP: u64 = 20_000;

/// A CDCL SAT solver. See the [crate docs](crate) for an overview.
///
/// `Solver` is `Clone`: a portfolio clones one master solver per worker
/// so every worker starts from the full incremental clause state, then
/// diversifies via [`Solver::set_restart_base`],
/// [`Solver::set_var_decay`], [`Solver::set_default_polarity`] /
/// [`Solver::randomize_polarities`] and
/// [`Solver::set_random_branching`].
#[derive(Clone, Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Watch lists indexed by `Lit::code()`; `watches[p]` holds clauses to
    /// visit when `p` becomes true (i.e. clauses watching `¬p`).
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Saved phase per variable.
    polarity: Vec<bool>,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    heap: ActivityHeap,
    /// Assignment trail; decision-level boundaries in `trail_lim`.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    /// False once a top-level contradiction has been derived.
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    seen: Vec<bool>,
    /// Scratch buffers reused across conflicts.
    analyze_tmp: Vec<Lit>,
    to_clear: Vec<Var>,
    /// Stamp scratch for [`Solver::compute_lbd`], indexed by decision
    /// level.
    lbd_marks: Vec<u64>,
    lbd_stamp: u64,
    max_learnt: usize,
    /// Retention policy for learnt clauses.
    reduce_strategy: ReduceStrategy,
    /// Retention cap for [`Tier::Mid`] (tiered policy only).
    mid_budget: usize,
    /// Retention cap for [`Tier::Local`] (tiered policy only).
    local_budget: usize,
    /// Whether inprocessing runs at restart boundaries.
    inprocess_on: bool,
    /// Conflict count at the last inprocessing pass.
    inprocess_base: u64,
    /// Conflicts between inprocessing passes.
    inprocess_interval: u64,
    /// Geometric backoff multiplier on the interval: doubles after every
    /// pass (instances that keep searching get proportionally cheaper
    /// inprocessing), capped so a pass still fires now and then.
    inprocess_stretch: u64,
    conflict_budget: Option<u64>,
    /// Base conflict interval for Luby restarts, and the minimum
    /// conflicts between Glucose restarts (diversified per worker).
    restart_base: u64,
    /// Restart scheduling policy.
    restart_policy: RestartPolicy,
    /// Recursive learned-clause minimization (off = legacy one-step
    /// antecedent check only).
    ccmin_deep: bool,
    /// DFS worklist for [`Solver::lit_redundant`] (kept allocated).
    ccmin_stack: Vec<Lit>,
    /// EMA of recent learnt-clause LBDs (Glucose policy; reset to 0 at
    /// each restart so the window refills before the next trigger).
    lbd_fast: f64,
    /// EMA of the assignment-trail depth at conflicts (restart blocking).
    trail_ema: f64,
    /// Running sum of all learnt-clause LBDs this run.
    lbd_sum: f64,
    /// Number of LBD samples behind `lbd_sum`.
    lbd_samples: u64,
    /// VSIDS decay factor (diversified per worker).
    var_decay: f64,
    /// Ramp `var_decay` toward [`VAR_DECAY_CAP`] at each restart (off =
    /// legacy fixed decay).
    decay_ramp: bool,
    /// Occasional random decisions, when configured.
    rnd: Option<RandomBranching>,
    /// Shared learned-clause pool, when part of a portfolio.
    exchange: Option<ExchangeLink>,
    /// Resource budget for subsequent solves (deadline / caps /
    /// cancellation). Caps are measured against `budget_base`.
    budget: Budget,
    /// `(conflicts, propagations)` totals at the moment the budget was
    /// installed, so its caps count only work done under it.
    budget_base: (u64, u64),
    /// Statistics since construction.
    pub stats: SolverStats,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
/// Ceiling of the VSIDS decay ramp: activity memory lengthens as the
/// run matures (young search adapts fast; a long refutation benefits
/// from a near-stable variable order).
const VAR_DECAY_CAP: f64 = 0.999;
/// Per-restart increment of the VSIDS decay ramp.
const VAR_DECAY_RAMP: f64 = 0.002;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 64;

enum SearchOutcome {
    Sat(Model),
    Unsat(Vec<Lit>),
    Restart,
    Budget,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: ActivityHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            seen: Vec::new(),
            analyze_tmp: Vec::new(),
            to_clear: Vec::new(),
            lbd_marks: vec![0],
            lbd_stamp: 0,
            max_learnt: 4000,
            reduce_strategy: ReduceStrategy::Tiered,
            mid_budget: 2000,
            local_budget: 2000,
            inprocess_on: true,
            inprocess_base: 0,
            inprocess_interval: INPROCESS_INTERVAL,
            inprocess_stretch: 1,
            conflict_budget: None,
            restart_base: RESTART_BASE,
            restart_policy: RestartPolicy::default(),
            decay_ramp: true,
            ccmin_deep: true,
            ccmin_stack: Vec::new(),
            lbd_fast: 0.0,
            trail_ema: 0.0,
            lbd_sum: 0.0,
            lbd_samples: 0,
            var_decay: VAR_DECAY,
            rnd: None,
            exchange: None,
            budget: Budget::unlimited(),
            budget_base: (0, 0),
            stats: SolverStats::default(),
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.lbd_marks.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow();
        self.heap.insert(v, &self.activity);
        v
    }

    /// Allocate `n` fresh variables and return them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Limit the total number of conflicts across subsequent `solve` calls'
    /// searches; `None` removes the limit. When exhausted, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget.map(|b| self.stats.conflicts + b);
    }

    /// Install a [`Budget`] governing subsequent `solve` calls: wall-clock
    /// deadline, conflict/propagation caps, and cooperative cancellation.
    /// Caps count work done from this call onward; the deadline and
    /// cancellation token are absolute. When any limit fires, `solve`
    /// returns [`SolveResult::Unknown`].
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
        self.budget_base = (self.stats.conflicts, self.stats.propagations);
    }

    /// The currently installed budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Check the installed budget against work done since it was
    /// installed. `None` while within limits.
    pub fn budget_exhausted(&self) -> Option<crate::budget::Exhaustion> {
        if self.budget.is_unlimited() {
            return None;
        }
        self.budget.check(
            self.stats.conflicts - self.budget_base.0,
            self.stats.propagations - self.budget_base.1,
        )
    }

    /// Lower the learned-clause retention threshold. Exposed for tests
    /// that need to exercise database reduction and garbage collection
    /// deterministically on small instances.
    ///
    /// Under [`ReduceStrategy::Tiered`] the single knob maps onto the
    /// tier budgets deterministically: `mid = max / 2`,
    /// `local = max - max / 2` (the core tier is never bounded).
    #[doc(hidden)]
    pub fn set_max_learnt(&mut self, max: usize) {
        self.max_learnt = max;
        self.mid_budget = max / 2;
        self.local_budget = max - max / 2;
    }

    /// Select the learned-clause retention policy. The default is
    /// [`ReduceStrategy::Tiered`]; [`ReduceStrategy::Flat`] restores the
    /// legacy single-cap behaviour (useful as a baseline oracle).
    pub fn set_reduce_strategy(&mut self, strategy: ReduceStrategy) {
        self.reduce_strategy = strategy;
    }

    /// The active learned-clause retention policy.
    pub fn reduce_strategy(&self) -> ReduceStrategy {
        self.reduce_strategy
    }

    /// Enable or disable the inprocessing pass (subsumption,
    /// self-subsuming resolution, vivification) run at restart
    /// boundaries. On by default.
    pub fn set_inprocessing(&mut self, on: bool) {
        self.inprocess_on = on;
    }

    /// Conflicts between inprocessing passes (clamped to ≥ 1; default
    /// 4000). Small intervals make the pass fire on tiny instances —
    /// useful for differential testing; production callers should keep
    /// the default.
    pub fn set_inprocess_interval(&mut self, conflicts: u64) {
        self.inprocess_interval = conflicts.max(1);
    }

    /// Live learnt clauses per tier: `(core, mid, local)`.
    pub fn tier_sizes(&self) -> (usize, usize, usize) {
        (self.db.num_core, self.db.num_mid, self.db.num_local)
    }

    /// Reset the statistics counters *and* the schedule bookkeeping that
    /// is derived from them (the inprocessing interval). Portfolio
    /// workers cloned from a warm master call this so their counters —
    /// and therefore their deterministic replay — start from zero.
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
        self.inprocess_base = 0;
        self.inprocess_stretch = 1;
    }

    /// `false` once the clause set has been proved unsatisfiable at the
    /// top level (every future `solve` returns `Unsat`).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Set the base conflict interval of the Luby restart schedule
    /// (clamped to ≥ 1). Distinct bases give portfolio workers distinct
    /// restart sequences.
    pub fn set_restart_base(&mut self, base: u64) {
        self.restart_base = base.max(1);
    }

    /// Choose the restart scheduling policy. The default `Glucose`
    /// policy restarts when the recent learnt-LBD trend is worse than
    /// the run's average; `Luby` restores the legacy fixed schedule.
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.restart_policy = policy;
    }

    /// Enable or disable recursive learned-clause minimization (on by
    /// default). Off restores the legacy one-step antecedent check.
    pub fn set_deep_minimization(&mut self, on: bool) {
        self.ccmin_deep = on;
    }

    /// Enable or disable the VSIDS decay ramp (on by default): decay
    /// climbs from its configured base toward 0.999 at each restart, so
    /// long refutations settle into a near-stable variable order. Off
    /// restores the legacy fixed decay.
    pub fn set_decay_ramp(&mut self, on: bool) {
        self.decay_ramp = on;
    }

    /// Configure this solver as the pre-tiered-DB legacy kernel: flat
    /// clause-DB reduction, Luby restarts, no inprocessing, one-step
    /// clause minimization. The harness K1 lane uses this as the
    /// sequential baseline ("pre-change oracle") that the modern
    /// defaults are gated against.
    pub fn set_legacy_kernel(&mut self) {
        self.set_reduce_strategy(ReduceStrategy::Flat);
        self.set_restart_policy(RestartPolicy::Luby);
        self.set_inprocessing(false);
        self.set_deep_minimization(false);
        self.set_decay_ramp(false);
    }

    /// Set the VSIDS activity decay factor, clamped to `[0.5, 0.999]`.
    /// Lower values focus harder on recent conflicts.
    pub fn set_var_decay(&mut self, decay: f64) {
        self.var_decay = decay.clamp(0.5, 0.999);
    }

    /// Reset every variable's saved phase to `polarity` (the phase used
    /// the next time the variable is decided, until search overwrites
    /// it). The solver's own default is `false`.
    pub fn set_default_polarity(&mut self, polarity: bool) {
        for p in &mut self.polarity {
            *p = polarity;
        }
    }

    /// Randomize every variable's saved phase from `seed`
    /// (deterministically — the same seed gives the same phases).
    pub fn randomize_polarities(&mut self, seed: u64) {
        let mut rng = RandomBranching {
            state: seed | 1,
            inv_freq: 0,
        };
        for p in &mut self.polarity {
            *p = rng.next() & 1 == 1;
        }
    }

    /// Make roughly one in `inv_freq` branching decisions pick a random
    /// unassigned variable instead of the VSIDS maximum, seeded
    /// deterministically. `inv_freq == 0` disables random branching.
    pub fn set_random_branching(&mut self, seed: u64, inv_freq: u32) {
        self.rnd = if inv_freq == 0 {
            None
        } else {
            Some(RandomBranching {
                state: seed | 1,
                inv_freq,
            })
        };
    }

    /// Connect this solver to a shared portfolio clause pool as worker
    /// `worker`. Clauses learned with LBD ≤ `export_lbd_max` (and at
    /// most 32 literals) are exported as they are learned; foreign
    /// clauses are imported at every restart boundary.
    pub fn set_clause_exchange(
        &mut self,
        worker: usize,
        pool: Arc<dyn ClauseExchange>,
        export_lbd_max: u32,
    ) {
        self.exchange = Some(ExchangeLink {
            worker,
            pool,
            export_lbd_max,
        });
    }

    /// Disconnect from any shared clause pool.
    pub fn clear_clause_exchange(&mut self) {
        self.exchange = None;
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the clause set is now known to be
    /// unsatisfiable at the top level.
    ///
    /// The clause is simplified on entry: duplicate literals are removed,
    /// tautologies are discarded, and literals already false at level 0 are
    /// dropped. Adding a clause cancels any in-progress search state (the
    /// solver backtracks to decision level 0), which makes the solver safe
    /// to use incrementally between `solve` calls.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        // Tautology / root simplification.
        let mut simplified = Vec::with_capacity(clause.len());
        for (i, &l) in clause.iter().enumerate() {
            if i + 1 < clause.len() && clause[i + 1] == !l {
                return true; // tautology: l and ¬l adjacent after sort
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => continue,   // falsified at level 0: drop
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(simplified, false, 0, Tier::Core);
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.get(cref);
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).code()].push(Watcher {
            cref,
            blocker: l1,
        });
        self.watches[(!l1).code()].push(Watcher {
            cref,
            blocker: l0,
        });
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = lit.is_positive();
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Two-watched-literal unit propagation. Returns a conflicting clause
    /// if one is found.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true, clause satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                if self.db.get(w.cref).deleted {
                    // Stale watcher from a lazily-deleted clause: drop it.
                    continue;
                }
                // Normalize so the falsified watched literal is at index 1.
                let first = {
                    let c = self.db.get_mut(w.cref);
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                    c.lits[0]
                };
                let w_new = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = w_new;
                    j += 1;
                    continue;
                }
                // Look for an unfalsified replacement watch.
                {
                    let assigns = &self.assigns;
                    let c = self.db.get_mut(w.cref);
                    for k in 2..c.lits.len() {
                        let q = c.lits[k];
                        if assigns[q.var().index()].of_lit(q) != LBool::False {
                            c.lits.swap(1, k);
                            let new_watch = (!c.lits[1]).code();
                            self.watches[new_watch].push(w_new);
                            continue 'watchers;
                        }
                    }
                }
                // Clause is unit or conflicting under the current trail.
                ws[j] = w_new;
                j += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    // Copy the remaining watchers back unchanged.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.heap.rebuild(&self.activity);
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let inc = self.cla_inc;
        let c = self.db.get_mut(cref);
        if !c.learnt {
            return;
        }
        c.activity += inc;
        if c.activity > RESCALE_LIMIT {
            for r in self.db.learnt_refs() {
                self.db.get_mut(r).activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
        self.cla_inc /= CLA_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();
        debug_assert!(self.to_clear.is_empty());

        loop {
            self.bump_clause(confl);
            self.analyze_tmp.clear();
            self.analyze_tmp
                .extend(self.db.get(confl).lits.iter().copied());
            // A learnt clause used in conflict analysis gets its LBD
            // refreshed; improvements promote it toward the core tier
            // (tiered policy only — the flat baseline never re-scores).
            // Core clauses are already in the best tier and their stored
            // LBD no longer matters, so skip the recount for them: they
            // are exactly the clauses conflict analysis touches most,
            // and the walk would dominate per-conflict cost.
            if self.reduce_strategy == ReduceStrategy::Tiered
                && self.db.get(confl).learnt
                && self.db.get(confl).lbd > CORE_LBD
            {
                let tmp = std::mem::take(&mut self.analyze_tmp);
                let lbd = self.compute_lbd(&tmp);
                self.analyze_tmp = tmp;
                let c = self.db.get_mut(confl);
                if lbd < c.lbd {
                    c.lbd = lbd;
                    let tier = Self::tier_for(lbd);
                    if tier < c.tier {
                        self.db.retier(confl, tier);
                        self.stats.tier_promotions += 1;
                    }
                }
            }
            let start = usize::from(p.is_some());
            for k in start..self.analyze_tmp.len() {
                let q = self.analyze_tmp[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()]
                .expect("non-decision literal on conflict path must have a reason");
        }

        // Learned-clause minimization: drop literals whose reason chains
        // bottom out in the clause itself (or in level-0 facts). The
        // deep mode follows chains recursively (MiniSat's `litRedundant`
        // with the abstract-level early-out); the legacy mode checks one
        // reason step only.
        let minimized: Vec<Lit> = if self.ccmin_deep {
            let abstract_levels: u64 = learnt[1..]
                .iter()
                .fold(0, |a, l| a | 1u64 << (self.level[l.var().index()] & 63));
            let mut out = Vec::with_capacity(learnt.len());
            out.push(learnt[0]);
            for &l in &learnt[1..] {
                let redundant = self.reason[l.var().index()].is_some()
                    && self.lit_redundant(l, abstract_levels);
                if !redundant {
                    out.push(l);
                }
            }
            out
        } else {
            let mut out = Vec::with_capacity(learnt.len());
            out.push(learnt[0]);
            for &l in &learnt[1..] {
                let redundant = match self.reason[l.var().index()] {
                    None => false,
                    Some(cr) => self.db.get(cr).lits[1..].iter().all(|&q| {
                        self.seen[q.var().index()] || self.level[q.var().index()] == 0
                    }),
                };
                if !redundant {
                    out.push(l);
                }
            }
            out
        };

        for v in self.to_clear.drain(..) {
            self.seen[v.index()] = false;
        }

        let mut learnt = minimized;
        // Backtrack level = second-highest decision level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()]
                    > self.level[learnt[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    /// Is `p` (a literal of the fresh learnt clause, with a reason)
    /// redundant — i.e. does every path of its implication ancestry end
    /// in another clause literal or a level-0 fact? DFS over reasons;
    /// `abstract_levels` is a bitmask of the clause's decision levels,
    /// used to fail fast on ancestors from levels the clause cannot
    /// absorb. Newly proven-redundant variables stay marked in `seen`
    /// (and queued on `to_clear`) so later literals reuse the proof.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u64) -> bool {
        debug_assert!(self.ccmin_stack.is_empty());
        self.ccmin_stack.push(p);
        let top = self.to_clear.len();
        while let Some(q) = self.ccmin_stack.pop() {
            let cr = self.reason[q.var().index()]
                .expect("only literals with reasons are stacked");
            let n = self.db.get(cr).lits.len();
            // lits[0] is the implied literal (`q` itself); its
            // antecedents are the rest.
            for i in 1..n {
                let a = self.db.get(cr).lits[i];
                let v = a.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                if self.reason[v.index()].is_some()
                    && (1u64 << (self.level[v.index()] & 63)) & abstract_levels != 0
                {
                    self.seen[v.index()] = true;
                    self.to_clear.push(v);
                    self.ccmin_stack.push(a);
                } else {
                    // A decision (or foreign-level) ancestor: p is not
                    // redundant. Roll back the speculative marks.
                    for u in self.to_clear.drain(top..) {
                        self.seen[u.index()] = false;
                    }
                    self.ccmin_stack.clear();
                    return false;
                }
            }
        }
        true
    }

    /// Literal-block distance: the number of *distinct live decision
    /// levels* among the clause's literals. Unassigned literals and
    /// root-assigned (level-0) literals carry no live level and are not
    /// counted — a dead level is not glue. Clamped to ≥ 1.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp += 1;
        let stamp = self.lbd_stamp;
        let mut distinct = 0u32;
        for l in lits {
            let v = l.var().index();
            if !self.assigns[v].is_assigned() {
                continue;
            }
            let lvl = self.level[v] as usize;
            if lvl == 0 {
                continue;
            }
            if self.lbd_marks[lvl] != stamp {
                self.lbd_marks[lvl] = stamp;
                distinct += 1;
            }
        }
        distinct.max(1)
    }

    /// The retention tier a learnt clause of the given LBD starts in.
    fn tier_for(lbd: u32) -> Tier {
        if lbd <= CORE_LBD {
            Tier::Core
        } else if lbd <= MID_LBD {
            Tier::Mid
        } else {
            Tier::Local
        }
    }

    /// Feed one learnt-clause LBD into the Glucose restart trend.
    fn note_lbd(&mut self, lbd: u32) {
        let l = f64::from(lbd);
        self.lbd_fast += (l - self.lbd_fast) / GLUCOSE_EMA_WINDOW;
        self.lbd_sum += l;
        self.lbd_samples += 1;
    }

    /// `true` when the adaptive policy wants a restart: the recent-LBD
    /// EMA runs `GLUCOSE_K` above the global average (current conflicts
    /// are producing worse clauses than this run typically does).
    fn glucose_restart_due(&self) -> bool {
        self.lbd_samples > 0 && self.lbd_fast * self.lbd_samples as f64 > GLUCOSE_K * self.lbd_sum
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.note_lbd(1);
            self.export_learnt(&learnt, 1);
            self.enqueue(learnt[0], None);
        } else {
            let lbd = self.compute_lbd(&learnt);
            self.note_lbd(lbd);
            self.export_learnt(&learnt, lbd);
            let asserting = learnt[0];
            let cref = self.db.alloc(learnt, true, lbd, Self::tier_for(lbd));
            self.attach(cref);
            self.bump_clause(cref);
            self.enqueue(asserting, Some(cref));
        }
    }

    /// Offer a freshly learned clause to the shared pool, if this
    /// solver is a portfolio worker and the clause is glue-y enough.
    fn export_learnt(&mut self, lits: &[Lit], lbd: u32) {
        let exported = match &self.exchange {
            Some(link) if lbd <= link.export_lbd_max && lits.len() <= EXPORT_MAX_LEN => {
                link.pool.export(link.worker, lits, lbd);
                true
            }
            _ => false,
        };
        if exported {
            self.stats.exported_clauses += 1;
        }
    }

    /// Integrate clauses learned by other portfolio workers. Must be
    /// called at decision level 0; returns `false` if an import proved
    /// the formula unsatisfiable outright.
    fn import_shared(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let Some(link) = self.exchange.clone() else {
            return true;
        };
        for (lits, lbd) in link.pool.import(link.worker) {
            if !self.ok {
                return false;
            }
            self.add_shared(lits, lbd);
        }
        self.ok
    }

    /// Integrate a batch of foreign learned clauses, e.g. a portfolio
    /// pool drained back into the master solver after a race. Cancels
    /// any in-progress search state (like [`Solver::add_clause`]); the
    /// clauses are stored as learnt, so database reduction can evict
    /// them again if they never help.
    pub fn absorb_shared(&mut self, clauses: Vec<(Vec<Lit>, u32)>) {
        if !self.ok {
            return;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        for (lits, lbd) in clauses {
            if !self.ok {
                return;
            }
            self.add_shared(lits, lbd);
        }
    }

    /// Add a foreign learned clause. Mirrors the level-0 simplification
    /// of [`Solver::add_clause`], but stores the clause as *learnt* so
    /// database reduction can evict it again if it never helps.
    fn add_shared(&mut self, lits: Vec<Lit>, lbd: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut clause = lits;
        clause.sort_unstable();
        clause.dedup();
        let mut simplified = Vec::with_capacity(clause.len());
        for (i, &l) in clause.iter().enumerate() {
            if i + 1 < clause.len() && clause[i + 1] == !l {
                return; // tautology
            }
            match self.lit_value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => continue,
                LBool::Undef => simplified.push(l),
            }
        }
        self.stats.imported_clauses += 1;
        match simplified.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                // Level-0 simplification may have shortened the clause
                // below the exporter's LBD; a clause of n literals can
                // span at most n levels, so clamp before storing.
                let lbd = lbd.min(simplified.len() as u32).max(1);
                let cref = self.db.alloc(simplified, true, lbd, Self::tier_for(lbd));
                self.attach(cref);
            }
        }
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        let c = self.db.get(cref);
        let v = c.lits[0].var();
        self.reason[v.index()] == Some(cref) && self.assigns[v.index()].is_assigned()
    }

    /// Legacy flat reduction: delete roughly half of the learned
    /// clauses, preferring to keep low-LBD ("glue") and high-activity
    /// clauses. Deletion is lazy: stale watchers are dropped during
    /// propagation and fully collected at the next restart.
    fn reduce_db_flat(&mut self) {
        let mut refs: Vec<ClauseRef> = self
            .db
            .learnt_refs()
            .into_iter()
            .filter(|&r| !self.locked(r) && self.db.get(r).lits.len() > 2)
            .collect();
        refs.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            ca.lbd
                .cmp(&cb.lbd)
                .then(cb.activity.partial_cmp(&ca.activity).unwrap_or(std::cmp::Ordering::Equal))
        });
        let keep = refs.len() / 2;
        for &r in &refs[keep..] {
            if self.db.get(r).lbd <= CORE_LBD {
                continue; // always keep glue clauses
            }
            self.db.delete(r);
            self.stats.deleted_clauses += 1;
        }
        self.max_learnt += self.max_learnt / 3;
    }

    /// Tiered reduction, mid tier: demote the staler half (highest LBD,
    /// lowest activity) to [`Tier::Local`], where activity-based
    /// eviction will deal with it. Nothing is deleted here, so glue-ish
    /// clauses that get used again can still be promoted back.
    fn reduce_mid(&mut self) {
        let mut refs: Vec<ClauseRef> = self
            .db
            .learnt_refs()
            .into_iter()
            .filter(|&r| self.db.get(r).tier == Tier::Mid)
            .collect();
        refs.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            ca.lbd
                .cmp(&cb.lbd)
                .then(cb.activity.partial_cmp(&ca.activity).unwrap_or(std::cmp::Ordering::Equal))
        });
        let keep = refs.len() / 2;
        for &r in &refs[keep..] {
            self.db.retier(r, Tier::Local);
            self.stats.tier_demotions += 1;
        }
        self.mid_budget += self.mid_budget / 3;
    }

    /// Tiered reduction, local tier: delete the colder half by activity
    /// (ties broken toward higher LBD). Locked and binary clauses are
    /// exempt, as in the flat policy.
    fn reduce_local(&mut self) {
        let mut refs: Vec<ClauseRef> = self
            .db
            .learnt_refs()
            .into_iter()
            .filter(|&r| {
                self.db.get(r).tier == Tier::Local
                    && !self.locked(r)
                    && self.db.get(r).lits.len() > 2
            })
            .collect();
        refs.sort_by(|&a, &b| {
            let ca = self.db.get(a);
            let cb = self.db.get(b);
            cb.activity
                .partial_cmp(&ca.activity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ca.lbd.cmp(&cb.lbd))
        });
        let keep = refs.len() / 2;
        for &r in &refs[keep..] {
            self.db.delete(r);
            self.stats.deleted_clauses += 1;
        }
        self.local_budget += self.local_budget / 3;
    }

    /// `true` when enough conflicts have accumulated since the last
    /// inprocessing pass. Pure function of solver state, so lockstep
    /// portfolio workers inprocess at identical points.
    fn inprocess_due(&self) -> bool {
        let due = self.inprocess_interval.saturating_mul(self.inprocess_stretch);
        self.inprocess_on && self.stats.conflicts.saturating_sub(self.inprocess_base) >= due
    }

    /// Inprocessing: simplify the learnt DB at a restart boundary.
    /// Three sub-passes — root-level simplification, backward
    /// subsumption + self-subsuming resolution, and vivification — each
    /// bounded by work caps and the installed [`Budget`], so a deadline
    /// is never blown here. Only learnt (redundant) clauses are ever
    /// deleted or shortened, which keeps every pass sound under
    /// incremental use. Returns `false` if simplification derived a
    /// top-level contradiction.
    fn inprocess(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        self.inprocess_base = self.stats.conflicts;
        self.inprocess_stretch = (self.inprocess_stretch * 2).min(INPROCESS_STRETCH_CAP);
        self.stats.inprocessings += 1;
        if !self.simplify_learnt() {
            return false;
        }
        if self.budget_exhausted().is_some() {
            return self.ok;
        }
        if !self.subsume_pass() {
            return false;
        }
        if self.budget_exhausted().is_some() {
            return self.ok;
        }
        self.vivify_pass()
    }

    /// Delete a learnt clause, detaching it from any level-0 reason
    /// slot first (a root-established literal never needs its reason
    /// again, so forgetting it is safe).
    fn delete_learnt(&mut self, r: ClauseRef) {
        let v = self.db.get(r).lits[0].var();
        if self.reason[v.index()] == Some(r) {
            self.reason[v.index()] = None;
        }
        self.db.delete(r);
    }

    /// Replace a learnt clause by a strictly smaller set of literals,
    /// preserving its activity. Handles the unit and empty cases at
    /// decision level 0.
    fn replace_learnt(&mut self, r: ClauseRef, kept: Vec<Lit>) {
        debug_assert_eq!(self.decision_level(), 0);
        let (old_lbd, activity) = {
            let c = self.db.get(r);
            (c.lbd, c.activity)
        };
        self.delete_learnt(r);
        match kept.len() {
            0 => self.ok = false,
            1 => match self.lit_value(kept[0]) {
                LBool::True => {}
                LBool::False => self.ok = false,
                LBool::Undef => {
                    self.enqueue(kept[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            },
            _ => {
                let lbd = old_lbd.min(kept.len() as u32).max(1);
                let cref = self.db.alloc(kept, true, lbd, Self::tier_for(lbd));
                self.attach(cref);
                self.db.get_mut(cref).activity = activity;
            }
        }
    }

    /// Root-level simplification of the learnt DB: drop clauses already
    /// satisfied at level 0, and strip literals already false at level 0.
    fn simplify_learnt(&mut self) -> bool {
        for r in self.db.learnt_refs() {
            if !self.ok {
                return false;
            }
            let n = self.db.get(r).lits.len();
            let mut satisfied = false;
            let mut falsified = false;
            for i in 0..n {
                let l = self.db.get(r).lits[i];
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => falsified = true,
                    LBool::Undef => {}
                }
            }
            if satisfied {
                self.delete_learnt(r);
                self.stats.subsumed_clauses += 1;
            } else if falsified {
                let kept: Vec<Lit> = {
                    let lits = &self.db.get(r).lits;
                    let assigns = &self.assigns;
                    lits.iter()
                        .copied()
                        .filter(|&l| assigns[l.var().index()].of_lit(l) != LBool::False)
                        .collect()
                };
                self.replace_learnt(r, kept);
                self.stats.strengthened_clauses += 1;
            }
        }
        self.ok
    }

    /// Backward subsumption and self-subsuming resolution over the
    /// learnt DB. Any live clause (problem or learnt) may act as a
    /// subsumer, but only learnt clauses are deleted or strengthened —
    /// removing or shortening a redundant clause is always sound.
    fn subsume_pass(&mut self) -> bool {
        // Occurrence lists and var-bitmask signatures over the live DB.
        let refs = self.db.live_refs();
        let arena = refs.iter().map(|r| r.0 as usize).max().map_or(0, |m| m + 1);
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); self.watches.len()];
        let mut sig: Vec<u64> = vec![0; arena];
        for &r in &refs {
            let mut s = 0u64;
            for &l in &self.db.get(r).lits {
                occ[l.code()].push(r);
                s |= 1u64 << (l.var().index() % 64);
            }
            sig[r.0 as usize] = s;
        }
        // Stamp marks over literal codes identify the current subsumer's
        // literals in O(1).
        let mut marks: Vec<u32> = vec![0; self.watches.len()];
        let mut stamp: u32 = 0;
        let mut checks: usize = 0;
        for &c in &refs {
            if !self.ok {
                return false;
            }
            if checks > SUBSUME_CHECK_CAP || self.budget_exhausted().is_some() {
                break;
            }
            let clen = self.db.get(c).lits.len();
            if self.db.get(c).deleted || clen > SUBSUME_MAX_LEN {
                continue;
            }
            stamp += 1;
            for &l in &self.db.get(c).lits {
                marks[l.code()] = stamp;
            }
            let csig = sig[c.0 as usize];
            // Backward subsumption: scan the occurrence list of the
            // rarest literal of `c` for clauses that contain all of `c`.
            let scan = self
                .db
                .get(c)
                .lits
                .iter()
                .copied()
                .min_by_key(|l| occ[l.code()].len());
            if let Some(l_min) = scan {
                for &d in &occ[l_min.code()] {
                    if checks > SUBSUME_CHECK_CAP {
                        break;
                    }
                    if d == c {
                        continue;
                    }
                    // Every candidate visit counts against the cap — the
                    // occurrence-list walk itself is the dominant cost on
                    // dense instances, so an uncounted walk would let one
                    // pass burn unbounded time before the cap fires.
                    checks += 1;
                    let dc = self.db.get(d);
                    if dc.deleted || !dc.learnt || dc.lits.len() < clen {
                        continue;
                    }
                    if csig & !sig[d.0 as usize] != 0 {
                        continue; // some var of c does not occur in d
                    }
                    let covered = dc.lits.iter().filter(|l| marks[l.code()] == stamp).count();
                    if covered == clen && !self.locked(d) {
                        self.delete_learnt(d);
                        self.stats.subsumed_clauses += 1;
                    }
                }
            }
            if self.db.get(c).deleted {
                continue; // c itself went away (possible via aliasing)
            }
            // Self-subsuming resolution: if c \ {l} ⊆ d and ¬l ∈ d, the
            // resolvent of c and d on l subsumes d, so ¬l can be struck
            // from d.
            for li in 0..clen {
                let l = self.db.get(c).lits[li];
                for &d in &occ[(!l).code()] {
                    if checks > SUBSUME_CHECK_CAP {
                        break;
                    }
                    checks += 1;
                    let dc = self.db.get(d);
                    if dc.deleted || !dc.learnt || dc.lits.len() < clen {
                        continue;
                    }
                    if csig & !sig[d.0 as usize] != 0 {
                        continue;
                    }
                    // d holds ¬l (never marked); all other lits of c must
                    // appear in d.
                    let covered = dc.lits.iter().filter(|q| marks[q.code()] == stamp).count();
                    if covered == clen - 1 && !self.locked(d) {
                        let kept: Vec<Lit> = dc
                            .lits
                            .iter()
                            .copied()
                            .filter(|&q| q != !l)
                            .collect();
                        debug_assert_eq!(kept.len(), dc.lits.len() - 1);
                        self.replace_learnt(d, kept);
                        self.stats.strengthened_clauses += 1;
                        if !self.ok {
                            return false;
                        }
                    }
                }
                if checks > SUBSUME_CHECK_CAP {
                    break;
                }
            }
        }
        self.ok
    }

    /// Vivification: for each valuable learnt clause, assume the
    /// negation of a prefix of its literals and propagate. A conflict or
    /// an implied literal proves a shorter clause is entailed; a
    /// falsified literal is redundant and dropped. Bounded by a
    /// propagation cap and the installed budget.
    fn vivify_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let start_props = self.stats.propagations;
        for r in self.db.learnt_refs() {
            if !self.ok {
                return false;
            }
            if self.stats.propagations - start_props > VIVIFY_PROP_CAP
                || self.budget_exhausted().is_some()
            {
                break;
            }
            {
                let c = self.db.get(r);
                if c.deleted
                    || c.tier == Tier::Local
                    || c.lits.len() < 3
                    || c.lits.len() > VIVIFY_MAX_LEN
                {
                    continue;
                }
            }
            if self.locked(r) {
                continue;
            }
            let lits = self.db.get(r).lits.clone();
            let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
            let probe_base = self.trail.len();
            self.new_decision_level();
            for &l in &lits {
                match self.lit_value(l) {
                    LBool::True => {
                        // ¬(kept prefix) implies l: the clause shortens
                        // to the prefix plus l.
                        kept.push(l);
                        break;
                    }
                    LBool::False => {
                        // ¬(kept prefix) implies ¬l: l is redundant.
                        continue;
                    }
                    LBool::Undef => {
                        self.enqueue(!l, None);
                        kept.push(l);
                        if self.propagate().is_some() {
                            // ¬(prefix ∪ {l}) is contradictory: the
                            // clause shortens to kept.
                            break;
                        }
                    }
                }
            }
            // Backtracking saves the phase of every trail literal, and
            // these probe assignments are noise, not search history:
            // letting them through would scramble phase saving on every
            // pass and wreck the search trajectory it protects. Restore
            // the saved phases the probe would overwrite.
            let saved: Vec<(usize, bool)> = self.trail[probe_base..]
                .iter()
                .map(|l| {
                    let i = l.var().index();
                    (i, self.polarity[i])
                })
                .collect();
            self.cancel_until(0);
            for (i, p) in saved {
                self.polarity[i] = p;
            }
            if kept.len() < lits.len() {
                self.stats.vivified_clauses += 1;
                self.replace_learnt(r, kept);
            }
        }
        self.ok
    }

    /// Drop stale watchers and let the clause DB recycle tombstoned slots.
    /// Must be called at decision level 0.
    fn collect_garbage(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.db.has_pending_garbage() {
            return;
        }
        for list in &mut self.watches {
            let db = &self.db;
            list.retain(|w| !db.get(w.cref).deleted);
        }
        self.db.collect_garbage();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Occasional random decision for portfolio diversification: a
        // random unassigned variable instead of the VSIDS maximum. The
        // variable stays in the heap; assigned entries are skipped (and
        // re-inserted on backtrack) by the normal path below.
        if let Some(r) = &mut self.rnd {
            if !self.assigns.is_empty() {
                let roll = r.next();
                if roll % u64::from(r.inv_freq) == 0 {
                    let idx = (r.next() >> 16) as usize % self.assigns.len();
                    if !self.assigns[idx].is_assigned() {
                        return Some(Lit::new(Var::from_index(idx), self.polarity[idx]));
                    }
                }
            }
        }
        while let Some(v) = self.heap.pop(&self.activity) {
            if !self.assigns[v.index()].is_assigned() {
                return Some(Lit::new(v, self.polarity[v.index()]));
            }
        }
        None
    }

    fn extract_model(&self) -> Model {
        let values = self
            .assigns
            .iter()
            .map(|a| match a {
                LBool::True => true,
                LBool::False => false,
                // Unconstrained variables may remain unassigned only if
                // they were never entered into the heap, which new_var
                // prevents; default defensively.
                LBool::Undef => false,
            })
            .collect();
        Model::new(values)
    }

    /// Compute the subset of assumptions responsible for the falsification
    /// of assumption `a` (which currently evaluates to false).
    fn analyze_final(&mut self, a: Lit) -> Vec<Lit> {
        let mut core = vec![a];
        if self.decision_level() == 0 {
            return core;
        }
        debug_assert!(self.to_clear.is_empty());
        self.seen[a.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    // A decision inside the assumption prefix: it is one of
                    // the assumptions (solve only decides assumptions
                    // before branching, and branches cannot be reached with
                    // an unresolved falsified assumption).
                    core.push(x);
                }
                Some(cr) => {
                    self.analyze_tmp.clear();
                    self.analyze_tmp
                        .extend(self.db.get(cr).lits.iter().copied());
                    for &q in &self.analyze_tmp[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[a.var().index()] = false;
        // Deduplicate: the falsified assumption may also appear as a
        // decision (contradictory assumption pairs).
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Solve the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumption literals.
    ///
    /// On `Unsat`, the returned core is a subset of `assumptions` that is
    /// jointly inconsistent with the clause set (not necessarily minimal —
    /// see [`crate::mus`] for minimization).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat(Vec::new());
        }
        // An already-exhausted budget (expired deadline, tripped
        // cancellation) means we must not start searching at all.
        if self.budget_exhausted().is_some() {
            return SolveResult::Unknown;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat(Vec::new());
        }
        self.collect_garbage();
        if !self.import_shared() {
            return SolveResult::Unsat(Vec::new());
        }
        let mut restarts = LubyRestarts::new(self.restart_base);
        loop {
            if self.budget_exhausted().is_some() {
                self.cancel_until(0);
                return SolveResult::Unknown;
            }
            let budget = match self.restart_policy {
                RestartPolicy::Luby => restarts.next_budget(),
                // Glucose decides inside `search`, via the LBD trend.
                RestartPolicy::Glucose => u64::MAX,
            };
            match self.search(budget, assumptions) {
                SearchOutcome::Sat(m) => {
                    self.cancel_until(0);
                    return SolveResult::Sat(m);
                }
                SearchOutcome::Unsat(core) => {
                    self.cancel_until(0);
                    return SolveResult::Unsat(core);
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    if self.decay_ramp {
                        self.var_decay = (self.var_decay + VAR_DECAY_RAMP).min(VAR_DECAY_CAP);
                    }
                    self.cancel_until(0);
                    self.collect_garbage();
                    if self.inprocess_due() {
                        if !self.inprocess() {
                            return SolveResult::Unsat(Vec::new());
                        }
                        self.collect_garbage();
                    }
                    if !self.import_shared() {
                        return SolveResult::Unsat(Vec::new());
                    }
                }
                SearchOutcome::Budget => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> SearchOutcome {
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                // Trail-depth trend for Glucose restart blocking: an
                // unusually deep trail at conflict time suppresses the
                // pending restart (the solver may be closing on a model).
                let depth = self.trail.len() as f64;
                self.trail_ema += (depth - self.trail_ema) / GLUCOSE_TRAIL_WINDOW;
                // Blocking only after the trail average has warmed up:
                // an unwarmed average reads every trail as "deep" and
                // would suppress all early restarts.
                if self.restart_policy == RestartPolicy::Glucose
                    && self.stats.conflicts >= GLUCOSE_TRAIL_WINDOW as u64
                    && self.glucose_restart_due()
                    && depth > GLUCOSE_BLOCK_R * self.trail_ema
                {
                    self.lbd_fast = 0.0; // block: refill the window instead
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat(Vec::new());
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.record_learnt(learnt);
                self.decay_activities();
                if let Some(limit) = self.conflict_budget {
                    if self.stats.conflicts >= limit {
                        return SearchOutcome::Budget;
                    }
                }
                if self.budget_exhausted().is_some() {
                    return SearchOutcome::Budget;
                }
            } else {
                let restart_due = match self.restart_policy {
                    RestartPolicy::Luby => conflicts_here >= budget,
                    RestartPolicy::Glucose => {
                        conflicts_here >= self.restart_base && self.glucose_restart_due()
                    }
                };
                if restart_due {
                    // Refill the recent-LBD window from scratch next run,
                    // as Glucose empties its queue on restart. (No-op
                    // bookkeeping under Luby.)
                    self.lbd_fast = 0.0;
                    return SearchOutcome::Restart;
                }
                // Conflict-free stretches still consume wall clock and
                // propagations; poll the budget every few hundred
                // decisions so deadlines and cancellation stay responsive.
                if self.stats.decisions & 0xFF == 0 && self.budget_exhausted().is_some() {
                    return SearchOutcome::Budget;
                }
                match self.reduce_strategy {
                    ReduceStrategy::Flat => {
                        if self.db.num_learnt > self.max_learnt {
                            self.reduce_db_flat();
                        }
                    }
                    ReduceStrategy::Tiered => {
                        if self.db.num_mid > self.mid_budget {
                            self.reduce_mid();
                        }
                        if self.db.num_local > self.local_budget {
                            self.reduce_local();
                        }
                    }
                }
                // Place assumptions as the first decisions.
                let mut next = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: dummy decision level keeps
                            // the level↔assumption-index correspondence.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            let core = self.analyze_final(a);
                            return SearchOutcome::Unsat(core);
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                if next.is_none() {
                    next = self.pick_branch();
                    if next.is_none() {
                        return SearchOutcome::Sat(self.extract_model());
                    }
                    self.stats.decisions += 1;
                }
                self.new_decision_level();
                self.enqueue(next.expect("checked above"), None);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hole-index loops in PHP encoders read better as written
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, i: i32) -> Lit {
        let idx = i.unsigned_abs() as usize - 1;
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::new(vars[idx], i > 0)
    }

    /// Build a solver from clauses in DIMACS-like integer notation.
    fn solver_from(clauses: &[&[i32]]) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let mut vars = Vec::new();
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(&mut s, &mut vars, i)).collect();
            s.add_clause(ls);
        }
        (s, vars)
    }

    #[test]
    fn trivially_sat() {
        let (mut s, vars) = solver_from(&[&[1, 2], &[-1]]);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(!m.value(vars[0]));
                assert!(m.value(vars[1]));
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn trivially_unsat() {
        let (mut s, _) = solver_from(&[&[1], &[-1]]);
        assert!(s.solve().is_unsat());
        assert!(!s.is_ok());
        // Remains unsat forever.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unsat_via_resolution_chain() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ ¬b) is unsat.
        let (mut s, _) = solver_from(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautologies_are_ignored() {
        let (mut s, _) = solver_from(&[&[1, -1], &[2, -2, 3]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let (mut s, vars) = solver_from(&[&[1, 1, 1]]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(vars[0])),
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // Classic PHP(4,3): var p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_3_into_3_is_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| s.new_vars(3)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..3 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                // Verify: it is a perfect matching.
                for row in &p {
                    assert!(row.iter().any(|&v| m.value(v)));
                }
                for j in 0..3 {
                    assert_eq!(p.iter().filter(|row| m.value(row[j])).count(), 1);
                }
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn assumptions_flip_satisfiability() {
        let (mut s, mut vars) = solver_from(&[&[1, 2]]);
        let a = lit(&mut s, &mut vars, -1);
        let b = lit(&mut s, &mut vars, -2);
        // Assuming ¬a forces b.
        match s.solve_with_assumptions(&[a]) {
            SolveResult::Sat(m) => assert!(m.value(vars[1])),
            r => panic!("{r:?}"),
        }
        // Assuming ¬a ∧ ¬b is unsat; the core must mention both.
        match s.solve_with_assumptions(&[a, b]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&a));
                assert!(core.contains(&b));
            }
            r => panic!("{r:?}"),
        }
        // The solver is still usable and sat without assumptions.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn contradictory_assumptions_yield_core() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v), Lit::neg(v)]); // tautology, ignored
        let w = s.new_var();
        s.add_clause([Lit::pos(w)]);
        match s.solve_with_assumptions(&[Lit::pos(v), Lit::neg(v)]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&Lit::pos(v)) && core.contains(&Lit::neg(v)));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn core_excludes_irrelevant_assumptions() {
        // x1 must be true; assumption ¬x1 conflicts but x2/x3 assumptions
        // are irrelevant and must not appear in the core.
        let (mut s, mut vars) = solver_from(&[&[1]]);
        let na = lit(&mut s, &mut vars, -1);
        let b = lit(&mut s, &mut vars, 2);
        let c = lit(&mut s, &mut vars, 3);
        match s.solve_with_assumptions(&[b, c, na]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&na));
                assert!(!core.contains(&b));
                assert!(!core.contains(&c));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn assumption_core_via_propagation_chain() {
        // a → b → c, assume a and ¬c: core = {a, ¬c}.
        let (mut s, mut vars) = solver_from(&[&[-1, 2], &[-2, 3]]);
        let a = lit(&mut s, &mut vars, 1);
        let nc = lit(&mut s, &mut vars, -3);
        let junk = {
            let v = s.new_var();
            Lit::pos(v)
        };
        match s.solve_with_assumptions(&[junk, a, nc]) {
            SolveResult::Unsat(core) => {
                assert!(core.contains(&a));
                assert!(core.contains(&nc));
                assert!(!core.contains(&junk));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn incremental_add_after_solve() {
        let (mut s, mut vars) = solver_from(&[&[1, 2]]);
        assert!(s.solve().is_sat());
        let c1 = lit(&mut s, &mut vars, -1);
        s.add_clause([c1]);
        assert!(s.solve().is_sat());
        let c2 = lit(&mut s, &mut vars, -2);
        s.add_clause([c2]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn models_satisfy_all_clauses_random() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x4d55_5050);
        for round in 0..30 {
            let n = 8 + round % 5;
            let mut s = Solver::new();
            let vars = s.new_vars(n);
            let mut clauses = Vec::new();
            for _ in 0..(3 * n) {
                let len = rng.random_range(1..=3);
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = vars[rng.random_range(0..n)];
                    c.push(Lit::new(v, rng.random_bool(0.5)));
                }
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if let SolveResult::Sat(m) = s.solve() {
                for c in &clauses {
                    assert!(m.satisfies_clause(c), "clause {c:?} unsatisfied");
                }
            }
        }
    }

    #[test]
    fn clause_db_reduction_and_gc_under_pressure() {
        // PHP(7,6) with an aggressively small retention threshold: the
        // solver must reduce its learned-clause database (and collect the
        // tombstoned slots at restarts) repeatedly and still prove UNSAT.
        let mut s = Solver::new();
        s.set_max_learnt(25);
        let p: Vec<Vec<Var>> = (0..7).map(|_| s.new_vars(6)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(
            s.stats.deleted_clauses > 0,
            "reduction must have fired: {:?}",
            s.stats
        );
        assert!(s.stats.restarts > 0, "restarts engaged: {:?}", s.stats);
    }

    #[test]
    fn reduction_does_not_change_satisfiable_answers() {
        // A satisfiable instance solved under the same pressure: the
        // model must still satisfy every clause.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut s = Solver::new();
        s.set_max_learnt(20);
        let n = 30;
        let vars = s.new_vars(n);
        // Random planted-solution instance: fix a hidden assignment and
        // emit clauses it satisfies.
        let hidden: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
        let mut clauses = Vec::new();
        for _ in 0..(6 * n) {
            let mut clause = Vec::new();
            // Ensure at least one literal agrees with the hidden model.
            let anchor = rng.random_range(0..n);
            clause.push(Lit::new(vars[anchor], hidden[anchor]));
            for _ in 0..2 {
                let v = rng.random_range(0..n);
                clause.push(Lit::new(vars[v], rng.random_bool(0.5)));
            }
            clauses.push(clause.clone());
            s.add_clause(clause);
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                for c in &clauses {
                    assert!(m.satisfies_clause(c));
                }
            }
            other => panic!("planted instance must be SAT: {other:?}"),
        }
    }

    /// Hand-build a trail and pin `compute_lbd` on it: level-0
    /// (root-assigned) and unassigned literals must not count toward
    /// LBD, and the result is clamped to ≥ 1.
    #[test]
    fn lbd_ignores_root_and_unassigned_literals() {
        let mut s = Solver::new();
        let v: Vec<Var> = s.new_vars(6);
        // v0 true at level 0 (root).
        s.enqueue(Lit::pos(v[0]), None);
        // v1, v2 at level 1; v3 at level 2.
        s.new_decision_level();
        s.enqueue(Lit::pos(v[1]), None);
        s.enqueue(Lit::neg(v[2]), None);
        s.new_decision_level();
        s.enqueue(Lit::pos(v[3]), None);
        // v4, v5 left unassigned.
        let lits = [
            Lit::neg(v[0]), // level 0: dead, must not count
            Lit::neg(v[1]), // level 1
            Lit::pos(v[2]), // level 1 (same block as v1)
            Lit::neg(v[3]), // level 2
            Lit::pos(v[4]), // unassigned: must not count
        ];
        assert_eq!(s.compute_lbd(&lits), 2, "levels {{1, 2}}");
        // Only dead/unassigned literals: clamps to 1.
        assert_eq!(s.compute_lbd(&[Lit::neg(v[0]), Lit::pos(v[5])]), 1);
        // Repeated calls use fresh stamps.
        assert_eq!(s.compute_lbd(&lits), 2);
        s.cancel_until(0);
    }

    #[test]
    fn tiered_reduction_under_pressure_proves_unsat() {
        // Same instance and pressure as the flat-mode test: the tiered
        // policy must demote and evict yet still prove UNSAT.
        let mut s = Solver::new();
        s.set_reduce_strategy(ReduceStrategy::Tiered);
        s.set_max_learnt(25);
        let p: Vec<Vec<Var>> = (0..7).map(|_| s.new_vars(6)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        let (core, mid, local) = s.tier_sizes();
        assert_eq!(core + mid + local, s.db.num_learnt, "tier counts cover the learnt DB");
        assert!(
            s.stats.tier_demotions > 0 || s.stats.deleted_clauses > 0,
            "tiered reduction engaged: {:?}",
            s.stats
        );
    }

    #[test]
    fn set_max_learnt_maps_tier_budgets_deterministically() {
        let mut s = Solver::new();
        s.set_max_learnt(25);
        assert_eq!(s.mid_budget, 12);
        assert_eq!(s.local_budget, 13);
        s.set_max_learnt(4000);
        assert_eq!(s.mid_budget, 2000);
        assert_eq!(s.local_budget, 2000);
    }

    /// Force an inprocessing pass on a solver with a learnt DB and check
    /// it only ever shrinks clauses while preserving the verdict.
    #[test]
    fn inprocessing_preserves_verdict_and_shrinks_db() {
        let build = |inprocess: bool| {
            let mut s = Solver::new();
            s.set_inprocessing(inprocess);
            let p: Vec<Vec<Var>> = (0..8).map(|_| s.new_vars(7)).collect();
            for row in &p {
                s.add_clause(row.iter().map(|&v| Lit::pos(v)));
            }
            for j in 0..7 {
                for i1 in 0..8 {
                    for i2 in (i1 + 1)..8 {
                        s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                    }
                }
            }
            s
        };
        let mut with = build(true);
        let mut without = build(false);
        assert!(with.solve().is_unsat());
        assert!(without.solve().is_unsat());
        if with.stats.inprocessings > 0 {
            assert!(
                with.stats.subsumed_clauses
                    + with.stats.strengthened_clauses
                    + with.stats.vivified_clauses
                    > 0,
                "an inprocessing pass on PHP(8,7) finds work: {:?}",
                with.stats
            );
        }
    }

    /// Subsumption + strengthening directly: seed a learnt DB by hand
    /// and run one inprocessing pass at level 0.
    #[test]
    fn subsumption_removes_and_strengthens_learnt_clauses() {
        let mut s = Solver::new();
        let v = s.new_vars(5);
        let l = |i: usize| Lit::pos(v[i]);
        // Problem clause keeps the vars alive.
        s.add_clause([l(0), l(1), l(2), l(3), l(4)]);
        // A learnt clause strictly subsumed by a problem clause...
        let sub = s.db.alloc(vec![l(0), l(1)], false, 0, Tier::Core);
        s.attach(sub);
        let dup = s
            .db
            .alloc(vec![l(0), l(1), l(2)], true, 2, Tier::Core);
        s.attach(dup);
        // ...and one strengthenable by self-subsuming resolution with
        // {l0, l1}: {¬l1, l3, l0} → {l3, l0}.
        let strengthen = s
            .db
            .alloc(vec![!l(1), l(3), l(0)], true, 3, Tier::Core);
        s.attach(strengthen);
        assert!(s.subsume_pass());
        assert!(s.db.get(dup).deleted, "{:?}", s.stats);
        assert_eq!(s.stats.subsumed_clauses, 1);
        assert_eq!(s.stats.strengthened_clauses, 1);
        // The strengthened replacement is a live learnt binary clause.
        let live = s.db.learnt_refs();
        assert_eq!(live.len(), 1);
        let mut lits = s.db.get(live[0]).lits.clone();
        lits.sort_unstable();
        let mut want = vec![l(0), l(3)];
        want.sort_unstable();
        assert_eq!(lits, want);
        // The solver still answers correctly afterwards.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn budget_returns_unknown_on_hard_instance() {
        // PHP(7,6) takes well over 2 conflicts.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..7).map(|_| s.new_vars(6)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        s.set_conflict_budget(Some(2));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }
}
