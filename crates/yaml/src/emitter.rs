//! YAML emission.
//!
//! Emits the block style `kubectl` users expect; parsing the output
//! reproduces the value (round-trip property, tested here and by
//! proptest in the crate's integration tests).

use crate::value::Yaml;

/// Render a value as a YAML document (no leading `---`).
pub fn emit(value: &Yaml) -> String {
    let mut out = String::new();
    emit_node(value, 0, &mut out);
    if out.is_empty() {
        out.push_str("null\n");
    }
    out
}

fn emit_node(value: &Yaml, indent: usize, out: &mut String) {
    match value {
        Yaml::Map(pairs) if !pairs.is_empty() => {
            for (k, v) in pairs {
                push_indent(indent, out);
                out.push_str(&emit_key(k));
                out.push(':');
                emit_value_after_key(v, indent, out);
            }
        }
        Yaml::Seq(items) if !items.is_empty() => {
            for item in items {
                push_indent(indent, out);
                out.push('-');
                match item {
                    // Conventional style: the first mapping pair shares
                    // the dash line; the rest align under it.
                    Yaml::Map(pairs) if !pairs.is_empty() => {
                        for (i, (k, v)) in pairs.iter().enumerate() {
                            if i == 0 {
                                out.push(' ');
                            } else {
                                push_indent(indent + 2, out);
                            }
                            out.push_str(&emit_key(k));
                            out.push(':');
                            emit_value_after_key(v, indent + 2, out);
                        }
                    }
                    other => emit_value_after_key(other, indent, out),
                }
            }
        }
        Yaml::Map(_) => {
            // Empty mapping (non-empty handled above).
            push_indent(indent, out);
            out.push_str("{}\n");
        }
        Yaml::Seq(_) => {
            push_indent(indent, out);
            out.push_str("[]\n");
        }
        scalar => {
            push_indent(indent, out);
            out.push_str(&emit_scalar(scalar));
            out.push('\n');
        }
    }
}

/// After `key:` or `-`: inline scalars/empties, or a nested block on the
/// following lines.
fn emit_value_after_key(value: &Yaml, indent: usize, out: &mut String) {
    match value {
        Yaml::Map(pairs) if pairs.is_empty() => out.push_str(" {}\n"),
        Yaml::Seq(items) if items.is_empty() => out.push_str(" []\n"),
        Yaml::Map(_) | Yaml::Seq(_) => {
            out.push('\n');
            emit_node(value, indent + 2, out);
        }
        scalar => {
            out.push(' ');
            out.push_str(&emit_scalar(scalar));
            out.push('\n');
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push(' ');
    }
}

fn emit_scalar(value: &Yaml) -> String {
    match value {
        Yaml::Null => "null".to_string(),
        Yaml::Bool(b) => b.to_string(),
        Yaml::Int(i) => i.to_string(),
        Yaml::Str(s) => emit_string(s),
        Yaml::Map(_) | Yaml::Seq(_) => unreachable!("collections handled by emit_node"),
    }
}

fn emit_key(k: &str) -> String {
    if needs_quoting(k) {
        quote(k)
    } else {
        k.to_string()
    }
}

fn emit_string(s: &str) -> String {
    if needs_quoting(s) {
        quote(s)
    } else {
        s.to_string()
    }
}

/// A plain scalar must not be mistaken for another type or break the
/// line grammar.
fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if matches!(
        s,
        "null" | "~" | "Null" | "NULL" | "true" | "false" | "True" | "False" | "TRUE" | "FALSE"
    ) {
        return true;
    }
    if s.parse::<i64>().is_ok() || s.parse::<f64>().is_ok() {
        return true;
    }
    if s.starts_with(' ')
        || s.ends_with(' ')
        || s.starts_with('-')
        || s.starts_with(|c| "&*|>!%@`\"'#[]{},".contains(c))
    {
        return true;
    }
    s.contains(": ") || s.ends_with(':') || s.contains(" #") || s.contains('\n') || s.contains('\t')
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(y: &Yaml) {
        let text = emit(y);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(&back, y, "emitted:\n{text}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Yaml::Null);
        roundtrip(&Yaml::Bool(true));
        roundtrip(&Yaml::Int(-42));
        roundtrip(&Yaml::str("plain"));
        roundtrip(&Yaml::str("23")); // numeric string must stay a string
        roundtrip(&Yaml::str("true"));
        roundtrip(&Yaml::str("a: b"));
        roundtrip(&Yaml::str("ends with colon:"));
        roundtrip(&Yaml::str("- starts like a list"));
        roundtrip(&Yaml::str("with \"quotes\" and \\slashes\\"));
        roundtrip(&Yaml::str("line\nbreak\ttab"));
        roundtrip(&Yaml::str(""));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let y = Yaml::map([
            ("kind".to_string(), Yaml::str("NetworkPolicy")),
            (
                "spec".to_string(),
                Yaml::map([
                    ("podSelector".to_string(), Yaml::Map(vec![])),
                    (
                        "ingress".to_string(),
                        Yaml::Seq(vec![Yaml::map([(
                            "ports".to_string(),
                            Yaml::Seq(vec![
                                Yaml::map([("port".to_string(), Yaml::Int(23))]),
                                Yaml::map([("port".to_string(), Yaml::str("8080"))]),
                            ]),
                        )])]),
                    ),
                    ("empty".to_string(), Yaml::Seq(vec![])),
                ]),
            ),
        ]);
        roundtrip(&y);
    }

    #[test]
    fn sequences_of_sequences_roundtrip() {
        let y = Yaml::Seq(vec![
            Yaml::Seq(vec![Yaml::Int(1), Yaml::Int(2)]),
            Yaml::Seq(vec![Yaml::str("x")]),
            Yaml::Null,
        ]);
        roundtrip(&y);
    }

    #[test]
    fn quoted_keys_roundtrip() {
        let y = Yaml::map([
            ("plain".to_string(), Yaml::Int(1)),
            ("needs: quoting".to_string(), Yaml::Int(2)),
            ("23".to_string(), Yaml::Int(3)),
        ]);
        roundtrip(&y);
    }

    #[test]
    fn display_matches_emit() {
        let y = Yaml::map([("a".to_string(), Yaml::Int(1))]);
        assert_eq!(y.to_string(), emit(&y));
        assert_eq!(emit(&y), "a: 1\n");
    }
}
