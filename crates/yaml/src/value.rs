//! The YAML value model.

use std::fmt;

/// A parsed YAML value.
///
/// Mappings preserve source order (a `Vec` of pairs rather than a map),
/// which keeps emission stable and diffs readable — the same property
/// `kubectl` users expect of their manifests.
#[derive(Clone, Debug, PartialEq)]
pub enum Yaml {
    /// `null` / `~` / empty value.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Any other scalar.
    Str(String),
    /// Sequence.
    Seq(Vec<Yaml>),
    /// Mapping with source-ordered keys.
    Map(Vec<(String, Yaml)>),
}

impl Yaml {
    /// Mapping lookup by key.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup along a path of keys.
    pub fn get_path(&self, path: &[&str]) -> Option<&Yaml> {
        let mut cur = self;
        for k in path {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Scalar rendered as a string: strings pass through, ints and bools
    /// are formatted. Convenient for fields like `port: 8080` vs
    /// `port: "8080"`, which K8s treats interchangeably in selectors.
    pub fn as_scalar_string(&self) -> Option<String> {
        match self {
            Yaml::Str(s) => Some(s.clone()),
            Yaml::Int(i) => Some(i.to_string()),
            Yaml::Bool(b) => Some(b.to_string()),
            _ => None,
        }
    }

    /// Integer view; also parses numeric strings (`"8080"`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Yaml::Int(i) => Some(*i),
            Yaml::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sequence view.
    pub fn as_seq(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Mapping view.
    pub fn as_map(&self) -> Option<&[(String, Yaml)]> {
        match self {
            Yaml::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Is this `Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Yaml::Null)
    }

    /// Build a mapping from pairs.
    pub fn map(pairs: impl IntoIterator<Item = (String, Yaml)>) -> Yaml {
        Yaml::Map(pairs.into_iter().collect())
    }

    /// Build a string scalar.
    pub fn str(s: impl Into<String>) -> Yaml {
        Yaml::Str(s.into())
    }
}

impl fmt::Display for Yaml {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::emitter::emit(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        let y = Yaml::map([
            ("spec".to_string(), Yaml::map([
                ("port".to_string(), Yaml::Int(8080)),
                ("name".to_string(), Yaml::str("db")),
            ])),
        ]);
        assert_eq!(y.get_path(&["spec", "port"]).unwrap().as_i64(), Some(8080));
        assert_eq!(y.get_path(&["spec", "name"]).unwrap().as_str(), Some("db"));
        assert_eq!(y.get_path(&["spec", "missing"]), None);
        assert_eq!(y.get("nope"), None);
        assert!(Yaml::Null.is_null());
    }

    #[test]
    fn scalar_coercions() {
        assert_eq!(Yaml::Int(5).as_scalar_string(), Some("5".into()));
        assert_eq!(Yaml::str("5").as_i64(), Some(5));
        assert_eq!(Yaml::Bool(true).as_scalar_string(), Some("true".into()));
        assert_eq!(Yaml::str("x").as_i64(), None);
        assert_eq!(Yaml::Seq(vec![]).as_scalar_string(), None);
        assert_eq!(Yaml::Bool(false).as_bool(), Some(false));
    }
}
