//! The YAML-subset parser: line-oriented, indentation-driven.

use std::fmt;

use crate::value::Yaml;

/// A parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "YAML parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug)]
struct Line {
    /// 1-based source line number.
    number: usize,
    /// Leading spaces.
    indent: usize,
    /// Content with comment stripped and trailing space trimmed.
    content: String,
}

/// Parse a single YAML document. Multi-document input is an error here;
/// use [`parse_documents`] for streams.
pub fn parse(input: &str) -> Result<Yaml, ParseError> {
    let docs = parse_documents(input)?;
    match docs.len() {
        0 => Ok(Yaml::Null),
        1 => Ok(docs.into_iter().next().expect("len checked")),
        n => Err(ParseError {
            line: 1,
            message: format!("expected a single document, found {n}"),
        }),
    }
}

/// Parse a multi-document stream (`---` separators).
pub fn parse_documents(input: &str) -> Result<Vec<Yaml>, ParseError> {
    let mut docs = Vec::new();
    let mut current: Vec<Line> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let number = i + 1;
        let trimmed_end = raw.trim_end();
        if trimmed_end == "---" || trimmed_end.starts_with("--- ") {
            if !current.is_empty() {
                docs.push(parse_lines(std::mem::take(&mut current))?);
            }
            // Inline content after `--- ` is not supported (not used by
            // k8s manifests).
            if trimmed_end.len() > 3 && !trimmed_end[4..].trim().is_empty() {
                return Err(ParseError {
                    line: number,
                    message: "content on the `---` separator line is unsupported".into(),
                });
            }
            continue;
        }
        if trimmed_end == "..." {
            if !current.is_empty() {
                docs.push(parse_lines(std::mem::take(&mut current))?);
            }
            continue;
        }
        let stripped = strip_comment(trimmed_end);
        let stripped = stripped.trim_end();
        if stripped.trim().is_empty() {
            continue;
        }
        let indent_chars = stripped.len() - stripped.trim_start().len();
        if stripped[..indent_chars].contains('\t') {
            return Err(ParseError {
                line: number,
                message: "tabs are not allowed in indentation".into(),
            });
        }
        current.push(Line {
            number,
            indent: indent_chars,
            content: stripped.trim_start().to_string(),
        });
    }
    if !current.is_empty() {
        docs.push(parse_lines(current)?);
    }
    Ok(docs)
}

/// Remove a trailing ` # comment` outside of quotes. A `#` at the start of
/// content is also a comment.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_single = false;
    let mut in_double = false;
    let mut prev_space = true; // start-of-line counts as a boundary
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '\\' if in_double => {
                out.push(c);
                if let Some(&n) = chars.peek() {
                    out.push(n);
                    chars.next();
                }
                prev_space = false;
                continue;
            }
            '#' if !in_single && !in_double && prev_space => {
                return out;
            }
            _ => {}
        }
        prev_space = c == ' ';
        out.push(c);
    }
    out
}

/// Nesting bound for both block and flow structure. Real manifests nest
/// a handful of levels; without a bound, crafted inputs like a line of
/// ten thousand `- ` markers or `[[[[…` recurse once per level and
/// overflow the stack — an abort, not a catchable error.
const MAX_DEPTH: usize = 64;

struct Parser {
    lines: Vec<Line>,
    pos: usize,
    depth: usize,
}

fn parse_lines(lines: Vec<Line>) -> Result<Yaml, ParseError> {
    let mut p = Parser {
        lines,
        pos: 0,
        depth: 0,
    };
    let v = p.parse_block(0)?;
    if let Some(line) = p.peek() {
        return Err(ParseError {
            line: line.number,
            message: format!("unexpected content: {:?}", line.content),
        });
    }
    Ok(v)
}

impl Parser {
    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn err(&self, line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// Parse a block node whose first line is at indentation
    /// `>= min_indent`.
    fn parse_block(&mut self, min_indent: usize) -> Result<Yaml, ParseError> {
        let line = match self.peek() {
            Some(l) if l.indent >= min_indent => l.clone(),
            _ => return Ok(Yaml::Null),
        };
        if self.depth >= MAX_DEPTH {
            return Err(self.err(
                line.number,
                format!("structure nested deeper than {MAX_DEPTH} levels"),
            ));
        }
        self.depth += 1;
        let result = if line.content == "-" || line.content.starts_with("- ") {
            self.parse_sequence(line.indent)
        } else if split_key(&line.content).is_some() {
            self.parse_mapping(line.indent)
        } else {
            self.pos += 1;
            parse_scalar(&line.content).map_err(|m| self.err(line.number, m))
        };
        self.depth -= 1;
        result
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Yaml, ParseError> {
        let mut pairs: Vec<(String, Yaml)> = Vec::new();
        while let Some(line) = self.peek().cloned() {
            if line.indent != indent {
                break;
            }
            if line.content == "-" || line.content.starts_with("- ") {
                break;
            }
            let Some((key_raw, rest)) = split_key(&line.content) else {
                return Err(self.err(line.number, format!("expected `key:`, got {:?}", line.content)));
            };
            let key = unquote(key_raw.trim()).map_err(|m| self.err(line.number, m))?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(line.number, format!("duplicate key {key:?}")));
            }
            self.pos += 1;
            let value = if rest.trim().is_empty() {
                // Block value on following lines (or null).
                match self.peek() {
                    Some(next) if next.indent > indent => self.parse_block(indent + 1)?,
                    // K8s convention: sequence items at the key's own
                    // indentation.
                    Some(next)
                        if next.indent == indent
                            && (next.content == "-" || next.content.starts_with("- ")) =>
                    {
                        self.parse_sequence(indent)?
                    }
                    _ => Yaml::Null,
                }
            } else {
                parse_scalar(rest.trim()).map_err(|m| self.err(line.number, m))?
            };
            pairs.push((key, value));
        }
        Ok(Yaml::Map(pairs))
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Yaml, ParseError> {
        let mut items = Vec::new();
        while let Some(line) = self.peek().cloned() {
            if line.indent != indent || !(line.content == "-" || line.content.starts_with("- ")) {
                break;
            }
            let rest = line.content[1..].trim_start().to_string();
            if rest.is_empty() {
                self.pos += 1;
                items.push(self.parse_block(indent + 1)?);
            } else {
                // Rewrite `- rest` as a virtual line at the column where
                // `rest` begins, then parse a block there: handles both
                // `- scalar` and `- key: value` with continuation lines.
                let rest_col = line.indent + (line.content.len() - rest.len());
                self.lines[self.pos] = Line {
                    number: line.number,
                    indent: rest_col,
                    content: rest,
                };
                items.push(self.parse_block(indent + 1)?);
            }
        }
        Ok(Yaml::Seq(items))
    }
}

/// Split `key: value` at the first unquoted `: ` (or trailing `:`).
/// Returns `(key, rest)` where `rest` may be empty.
fn split_key(content: &str) -> Option<(&str, &str)> {
    let mut in_single = false;
    let mut in_double = false;
    let bytes = content.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'\\' if in_double => {
                i += 1;
            }
            b':' if !in_single && !in_double => {
                if i + 1 == bytes.len() {
                    return Some((&content[..i], ""));
                }
                if bytes[i + 1] == b' ' {
                    return Some((&content[..i], &content[i + 2..]));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn unquote(s: &str) -> Result<String, String> {
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(other) => return Err(format!("unsupported escape \\{other}")),
                    None => return Err("dangling escape".into()),
                }
            } else {
                out.push(c);
            }
        }
        Ok(out)
    } else if s.len() >= 2 && s.starts_with('\'') && s.ends_with('\'') {
        Ok(s[1..s.len() - 1].replace("''", "'"))
    } else {
        Ok(s.to_string())
    }
}

fn parse_scalar(text: &str) -> Result<Yaml, String> {
    let t = text.trim();
    if t.is_empty() {
        return Ok(Yaml::Null);
    }
    if t.starts_with('[') || t.starts_with('{') {
        let mut fp = FlowParser {
            chars: t.chars().collect(),
            pos: 0,
            depth: 0,
        };
        let v = fp.parse_value()?;
        fp.skip_ws();
        if fp.pos != fp.chars.len() {
            return Err(format!("trailing characters in flow value {t:?}"));
        }
        return Ok(v);
    }
    if let Some(q) = t.chars().next().filter(|&c| c == '"' || c == '\'') {
        if t.len() < 2 || !t.ends_with(q) {
            return Err(format!("unterminated quoted scalar {t:?}"));
        }
        return unquote(t).map(Yaml::Str);
    }
    if t.starts_with('&') || t.starts_with('*') || t.starts_with('|') || t.starts_with('>') {
        return Err(format!(
            "unsupported YAML feature in scalar {t:?} (anchors, aliases and block scalars \
             are outside the supported subset)"
        ));
    }
    Ok(plain_scalar(t))
}

fn plain_scalar(t: &str) -> Yaml {
    match t {
        "null" | "~" | "Null" | "NULL" => Yaml::Null,
        "true" | "True" | "TRUE" => Yaml::Bool(true),
        "false" | "False" | "FALSE" => Yaml::Bool(false),
        _ => {
            if let Ok(i) = t.parse::<i64>() {
                Yaml::Int(i)
            } else {
                Yaml::Str(t.to_string())
            }
        }
    }
}

/// Recursive-descent parser for flow collections (`[...]` / `{...}`).
struct FlowParser {
    chars: Vec<char>,
    pos: usize,
    depth: usize,
}

impl FlowParser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos] == ' ' {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<Yaml, String> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err(format!("flow value nested deeper than {MAX_DEPTH} levels"));
        }
        self.depth += 1;
        let result = self.parse_value_inner();
        self.depth -= 1;
        result
    }

    fn parse_value_inner(&mut self) -> Result<Yaml, String> {
        match self.chars.get(self.pos) {
            Some('[') => self.parse_seq(),
            Some('{') => self.parse_map(),
            Some('"') | Some('\'') => {
                let s = self.take_quoted()?;
                Ok(Yaml::Str(s))
            }
            Some(_) => {
                let raw = self.take_plain();
                Ok(plain_scalar(raw.trim()))
            }
            None => Err("unexpected end of flow value".into()),
        }
    }

    fn parse_seq(&mut self) -> Result<Yaml, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.get(self.pos) {
                Some(']') => {
                    self.pos += 1;
                    return Ok(Yaml::Seq(items));
                }
                Some(_) => {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.chars.get(self.pos) {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some(']') => {}
                        other => return Err(format!("expected `,` or `]`, got {other:?}")),
                    }
                }
                None => return Err("unterminated flow sequence".into()),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Yaml, String> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.get(self.pos) {
                Some('}') => {
                    self.pos += 1;
                    return Ok(Yaml::Map(pairs));
                }
                Some(_) => {
                    let key = match self.chars.get(self.pos) {
                        Some('"') | Some('\'') => self.take_quoted()?,
                        _ => self.take_plain_until(&[':']).trim().to_string(),
                    };
                    self.skip_ws();
                    if self.chars.get(self.pos) != Some(&':') {
                        return Err("expected `:` in flow mapping".into());
                    }
                    self.pos += 1;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.chars.get(self.pos) {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some('}') => {}
                        other => return Err(format!("expected `,` or `}}`, got {other:?}")),
                    }
                }
                None => return Err("unterminated flow mapping".into()),
            }
        }
    }

    fn take_quoted(&mut self) -> Result<String, String> {
        let quote = self.chars[self.pos];
        self.pos += 1;
        let mut out = String::new();
        while let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            if c == '\\' && quote == '"' {
                match self.chars.get(self.pos) {
                    Some(&n) => {
                        self.pos += 1;
                        out.push(match n {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                    None => return Err("dangling escape in flow string".into()),
                }
            } else if c == quote {
                return Ok(out);
            } else {
                out.push(c);
            }
        }
        Err("unterminated quoted string".into())
    }

    fn take_plain(&mut self) -> String {
        self.take_plain_until(&[',', ']', '}'])
    }

    fn take_plain_until(&mut self, stops: &[char]) -> String {
        let start = self.pos;
        while let Some(&c) = self.chars.get(self.pos) {
            if stops.contains(&c) {
                break;
            }
            self.pos += 1;
        }
        self.chars[start..self.pos].iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_mapping_and_scalars() {
        let y = parse("name: test-db\nport: 23\nready: true\nnothing: null\n").unwrap();
        assert_eq!(y.get("name").unwrap().as_str(), Some("test-db"));
        assert_eq!(y.get("port").unwrap().as_i64(), Some(23));
        assert_eq!(y.get("ready").unwrap().as_bool(), Some(true));
        assert!(y.get("nothing").unwrap().is_null());
    }

    #[test]
    fn nested_blocks_and_k8s_style_sequences() {
        let src = "\
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: deny-telnet
spec:
  podSelector: {}
  ingress:
  - ports:
    - port: 23
      protocol: TCP
  policyTypes:
  - Ingress
";
        let y = parse(src).unwrap();
        assert_eq!(y.get("kind").unwrap().as_str(), Some("NetworkPolicy"));
        assert_eq!(
            y.get_path(&["metadata", "name"]).unwrap().as_str(),
            Some("deny-telnet")
        );
        let ingress = y.get_path(&["spec", "ingress"]).unwrap().as_seq().unwrap();
        assert_eq!(ingress.len(), 1);
        let ports = ingress[0].get("ports").unwrap().as_seq().unwrap();
        assert_eq!(ports[0].get("port").unwrap().as_i64(), Some(23));
        assert_eq!(ports[0].get("protocol").unwrap().as_str(), Some("TCP"));
        let pt = y.get_path(&["spec", "policyTypes"]).unwrap().as_seq().unwrap();
        assert_eq!(pt[0].as_str(), Some("Ingress"));
        // Empty flow map.
        assert_eq!(y.get_path(&["spec", "podSelector"]), Some(&Yaml::Map(vec![])));
    }

    #[test]
    fn deeper_indented_sequences_also_work() {
        let src = "spec:\n  ports:\n    - 23\n    - 8080\n";
        let y = parse(src).unwrap();
        let ports = y.get_path(&["spec", "ports"]).unwrap().as_seq().unwrap();
        assert_eq!(ports.iter().map(|p| p.as_i64().unwrap()).collect::<Vec<_>>(), vec![23, 8080]);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "# header\nname: x # trailing\n\nport: 5 #:\n";
        let y = parse(src).unwrap();
        assert_eq!(y.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(y.get("port").unwrap().as_i64(), Some(5));
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let y = parse("name: \"a # b\"\nurl: 'c # d'\n").unwrap();
        assert_eq!(y.get("name").unwrap().as_str(), Some("a # b"));
        assert_eq!(y.get("url").unwrap().as_str(), Some("c # d"));
    }

    #[test]
    fn flow_collections() {
        let y = parse("ports: [23, 8080]\nsel: {app: web, tier: \"front\"}\nempty: []\n").unwrap();
        let ports = y.get("ports").unwrap().as_seq().unwrap();
        assert_eq!(ports[1].as_i64(), Some(8080));
        let sel = y.get("sel").unwrap();
        assert_eq!(sel.get("app").unwrap().as_str(), Some("web"));
        assert_eq!(sel.get("tier").unwrap().as_str(), Some("front"));
        assert_eq!(y.get("empty").unwrap().as_seq().unwrap().len(), 0);
    }

    #[test]
    fn nested_flow() {
        let y = parse("matrix: [[1, 2], [3]]\nobj: {a: {b: 1}, c: [x]}\n").unwrap();
        let m = y.get("matrix").unwrap().as_seq().unwrap();
        assert_eq!(m[0].as_seq().unwrap()[1].as_i64(), Some(2));
        assert_eq!(
            y.get_path(&["obj", "a", "b"]).unwrap().as_i64(),
            Some(1)
        );
    }

    #[test]
    fn multi_document_stream() {
        let src = "---\nkind: A\n---\nkind: B\n";
        let docs = parse_documents(src).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("kind").unwrap().as_str(), Some("A"));
        assert_eq!(docs[1].get("kind").unwrap().as_str(), Some("B"));
        assert!(parse(src).is_err());
    }

    #[test]
    fn quoted_keys_and_strings() {
        let y = parse("\"weird: key\": 1\n'another''s': \"line\\nbreak\"\n").unwrap();
        assert_eq!(y.get("weird: key").unwrap().as_i64(), Some(1));
        assert_eq!(y.get("another's").unwrap().as_str(), Some("line\nbreak"));
    }

    #[test]
    fn sequence_of_scalars_and_maps_mixed_items() {
        let src = "- plain\n- key: v\n  other: w\n- 7\n";
        let y = parse(src).unwrap();
        let items = y.as_seq().unwrap();
        assert_eq!(items[0].as_str(), Some("plain"));
        assert_eq!(items[1].get("key").unwrap().as_str(), Some("v"));
        assert_eq!(items[1].get("other").unwrap().as_str(), Some("w"));
        assert_eq!(items[2].as_i64(), Some(7));
    }

    #[test]
    fn nested_sequences_via_dash_only_lines() {
        let src = "-\n  - 1\n  - 2\n-\n  - 3\n";
        let y = parse(src).unwrap();
        let outer = y.as_seq().unwrap();
        assert_eq!(outer[0].as_seq().unwrap().len(), 2);
        assert_eq!(outer[1].as_seq().unwrap()[0].as_i64(), Some(3));
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = parse("ok: 1\n\tbad: 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("tab"));
        let e = parse("a: &anchor\n").unwrap_err();
        assert!(e.message.contains("unsupported"));
        let e = parse("a: |\n  text\n").unwrap_err();
        assert!(e.message.contains("unsupported"));
        let e = parse("dup: 1\ndup: 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unterminated_flow_is_an_error() {
        assert!(parse("a: [1, 2\n").is_err());
        assert!(parse("a: {x: 1\n").is_err());
        assert!(parse("a: \"oops\n").is_err());
    }

    #[test]
    fn empty_input_is_null() {
        assert_eq!(parse("").unwrap(), Yaml::Null);
        assert_eq!(parse("# only comments\n\n").unwrap(), Yaml::Null);
        assert_eq!(parse_documents("").unwrap().len(), 0);
    }

    #[test]
    fn istio_authorization_policy_shape() {
        let src = "\
apiVersion: security.istio.io/v1
kind: AuthorizationPolicy
metadata:
  name: backend-ingress
  namespace: default
spec:
  selector:
    matchLabels:
      app: test-backend
  action: ALLOW
  rules:
  - from:
    - source:
        principals: [\"cluster.local/ns/default/sa/test-frontend\"]
    to:
    - operation:
        ports: [\"25\"]
";
        let y = parse(src).unwrap();
        assert_eq!(y.get("kind").unwrap().as_str(), Some("AuthorizationPolicy"));
        assert_eq!(
            y.get_path(&["spec", "selector", "matchLabels", "app"])
                .unwrap()
                .as_str(),
            Some("test-backend")
        );
        let rules = y.get_path(&["spec", "rules"]).unwrap().as_seq().unwrap();
        let from = rules[0].get("from").unwrap().as_seq().unwrap();
        let principals = from[0]
            .get_path(&["source", "principals"])
            .unwrap()
            .as_seq()
            .unwrap();
        assert_eq!(
            principals[0].as_str(),
            Some("cluster.local/ns/default/sa/test-frontend")
        );
        let to = rules[0].get("to").unwrap().as_seq().unwrap();
        let ports = to[0].get_path(&["operation", "ports"]).unwrap().as_seq().unwrap();
        assert_eq!(ports[0].as_str(), Some("25"));
    }
}
