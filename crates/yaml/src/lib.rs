//! # muppet-yaml — a minimal YAML subset parser and emitter
//!
//! "Muppet consumes the YAML files that K8s and Istio administrators use
//! in production" (Sec. 3). The sanctioned offline dependency set has no
//! YAML crate, so this crate implements, from scratch, the subset of YAML
//! those manifests actually use:
//!
//! * block mappings and block sequences with indentation nesting
//!   (including the K8s convention of sequence dashes at the parent key's
//!   indentation);
//! * plain, single-quoted and double-quoted scalars;
//! * flow sequences `[a, b]` and flow mappings `{k: v}`;
//! * comments and blank lines;
//! * multi-document streams separated by `---`.
//!
//! Deliberately out of scope (not used by NetworkPolicy /
//! AuthorizationPolicy manifests): anchors/aliases, tags, block scalars
//! (`|`, `>`), and complex keys. The parser rejects what it does not
//! understand rather than guessing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emitter;
mod parser;
mod value;

pub use emitter::emit;
pub use parser::{parse, parse_documents, ParseError};
pub use value::Yaml;
