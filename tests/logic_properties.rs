//! Property-based testing of the logic layer: random formulas over a
//! small vocabulary, checked against brute-force evaluation.
//!
//! Properties: `simplify` and `nnf` preserve semantics; `decompose` is
//! conjunction-preserving; `partial_eval` is the semantic substitution
//! of Alg. 3; grounding + SAT agrees with direct evaluation.

use muppet_logic::{
    decompose, evaluate_closed, nnf, partial_eval, simplify, Domain, Formula, Instance,
    PartialInstance, PartyId, RelId, SortId, Term, Universe, VarId, Vocabulary,
};
use muppet_solver::{FormulaGroup, Query};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N_ATOMS: usize = 2;
const N_VARS: usize = 2;

/// Fixed tiny vocabulary: sort S with 2 atoms; unary rel `p` (party 0),
/// unary rel `q` (party 1), binary rel `e` (structure).
fn fixture() -> (Universe, Vocabulary, [RelId; 3]) {
    let mut u = Universe::new();
    let s = u.add_sort("S");
    for name in ["a", "b"] {
        u.add_atom(s, name);
    }
    let mut v = Vocabulary::new();
    let p = v.add_simple_rel("p", vec![s], Domain::Party(PartyId(0)));
    let q = v.add_simple_rel("q", vec![s], Domain::Party(PartyId(1)));
    let e = v.add_simple_rel("e", vec![s, s], Domain::Structure);
    for _ in 0..N_VARS {
        v.fresh_var();
    }
    (u, v, [p, q, e])
}

/// A compact encodable representation of random formulas, interpreted
/// against the fixture. `depth`-bounded recursive strategy.
#[derive(Clone, Debug)]
enum F {
    T,
    Fa,
    P(u8, u8),     // rel index 0..3, atom-or-var code
    Eq(u8, u8),    // two term codes
    Not(Box<F>),
    And(Vec<F>),
    Or(Vec<F>),
    Implies(Box<F>, Box<F>),
    Iff(Box<F>, Box<F>),
    Forall(u8, Box<F>), // var index
    Exists(u8, Box<F>),
}

fn f_strategy() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        Just(F::T),
        Just(F::Fa),
        (0u8..3, 0u8..4).prop_map(|(r, t)| F::P(r, t)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| F::Eq(a, b)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(F::And),
            prop::collection::vec(inner.clone(), 0..3).prop_map(F::Or),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| F::Implies(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Iff(Box::new(a), Box::new(b))),
            (0u8..N_VARS as u8, inner.clone()).prop_map(|(v, f)| F::Forall(v, Box::new(f))),
            (0u8..N_VARS as u8, inner).prop_map(|(v, f)| F::Exists(v, Box::new(f))),
        ]
    })
}

/// Interpret the compact form; `bound` tracks which var indices are
/// in scope so the result is always closed (unbound var codes fall back
/// to atoms).
fn build(f: &F, rels: &[RelId; 3], bound: &mut BTreeSet<u8>) -> Formula {
    let term = |code: u8, bound: &BTreeSet<u8>| -> Term {
        let var_idx = code % N_VARS as u8;
        if code >= 2 && bound.contains(&var_idx) {
            Term::Var(VarId(var_idx as u32))
        } else {
            Term::Const(muppet_logic::AtomId((code % N_ATOMS as u8) as u32))
        }
    };
    match f {
        F::T => Formula::True,
        F::Fa => Formula::False,
        F::P(r, t) => {
            let rel = rels[(*r as usize) % 3];
            if rel == rels[2] {
                // binary structure relation
                Formula::pred(rel, [term(*t, bound), term(t.wrapping_add(1), bound)])
            } else {
                Formula::pred(rel, [term(*t, bound)])
            }
        }
        F::Eq(a, b) => Formula::Eq(term(*a, bound), term(*b, bound)),
        F::Not(g) => Formula::not(build(g, rels, bound)),
        F::And(gs) => Formula::and(gs.iter().map(|g| build(g, rels, bound)).collect::<Vec<_>>()),
        F::Or(gs) => Formula::or(gs.iter().map(|g| build(g, rels, bound)).collect::<Vec<_>>()),
        F::Implies(a, b) => Formula::implies(build(a, rels, bound), build(b, rels, bound)),
        F::Iff(a, b) => Formula::iff(build(a, rels, bound), build(b, rels, bound)),
        F::Forall(v, g) => {
            let vi = v % N_VARS as u8;
            let fresh = bound.insert(vi);
            let body = build(g, rels, bound);
            if fresh {
                bound.remove(&vi);
            }
            Formula::forall(VarId(vi as u32), SortId(0), body)
        }
        F::Exists(v, g) => {
            let vi = v % N_VARS as u8;
            let fresh = bound.insert(vi);
            let body = build(g, rels, bound);
            if fresh {
                bound.remove(&vi);
            }
            Formula::exists(VarId(vi as u32), SortId(0), body)
        }
    }
}

/// Instances over the fixture encoded as bitmasks: p ⊆ 2 atoms,
/// q ⊆ 2 atoms, e ⊆ 4 pairs → 8 bits.
fn instance_from_mask(mask: u8, rels: &[RelId; 3]) -> Instance {
    let mut inst = Instance::new();
    let a = |i: u32| muppet_logic::AtomId(i);
    for i in 0..2u32 {
        if mask & (1 << i) != 0 {
            inst.insert(rels[0], vec![a(i)]);
        }
        if mask & (1 << (i + 2)) != 0 {
            inst.insert(rels[1], vec![a(i)]);
        }
    }
    for (bit, (x, y)) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
        if mask & (1 << (bit + 4)) != 0 {
            inst.insert(rels[2], vec![a(*x), a(*y)]);
        }
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// simplify and nnf preserve truth on every instance.
    #[test]
    fn simplify_and_nnf_preserve_semantics(f in f_strategy(), mask in 0u8..=255) {
        let (u, _, rels) = fixture();
        let formula = build(&f, &rels, &mut BTreeSet::new());
        let inst = instance_from_mask(mask, &rels);
        let base = evaluate_closed(&formula, &inst, &u).unwrap();
        prop_assert_eq!(evaluate_closed(&simplify(&formula), &inst, &u).unwrap(), base);
        prop_assert_eq!(evaluate_closed(&nnf(&formula), &inst, &u).unwrap(), base);
        prop_assert_eq!(
            evaluate_closed(&simplify(&nnf(&formula)), &inst, &u).unwrap(),
            base
        );
    }

    /// simplify is idempotent.
    #[test]
    fn simplify_is_idempotent(f in f_strategy()) {
        let (_, _, rels) = fixture();
        let formula = build(&f, &rels, &mut BTreeSet::new());
        let once = simplify(&formula);
        prop_assert_eq!(simplify(&once), once);
    }

    /// decompose(f) conjunction ≡ f.
    #[test]
    fn decompose_preserves_conjunction(f in f_strategy(), mask in 0u8..=255) {
        let (u, _, rels) = fixture();
        let formula = build(&f, &rels, &mut BTreeSet::new());
        let inst = instance_from_mask(mask, &rels);
        let whole = evaluate_closed(&formula, &inst, &u).unwrap();
        let split = decompose(&formula)
            .iter()
            .all(|p| evaluate_closed(p, &inst, &u).unwrap());
        prop_assert_eq!(whole, split);
    }

    /// partial_eval over party 0's relations: for every completion of
    /// the remaining relations, the partially-evaluated formula agrees
    /// with the original over the union.
    #[test]
    fn partial_eval_is_semantic_substitution(f in f_strategy(), ca_mask in 0u8..=3, rest in 0u8..=63) {
        let (u, v, rels) = fixture();
        let formula = build(&f, &rels, &mut BTreeSet::new());
        let doms = BTreeSet::from([Domain::Party(PartyId(0))]);
        let c_a = instance_from_mask(ca_mask & 0b11, &rels); // only p bits
        let pe = partial_eval(&formula, &c_a, &doms, &v, &u);
        prop_assert!(!pe.mentions_domain(&v, Domain::Party(PartyId(0))));
        let c_rest = instance_from_mask(rest << 2, &rels); // q and e bits
        let combined = c_a.union(&c_rest);
        prop_assert_eq!(
            evaluate_closed(&formula, &combined, &u).unwrap(),
            evaluate_closed(&pe, &c_rest, &u).unwrap()
        );
    }

    /// Ground-and-solve agrees with direct evaluation: the formula is
    /// satisfiable over free relations (with given bounds fixed empty /
    /// full) iff some enumerated instance satisfies it.
    #[test]
    fn grounding_matches_bruteforce_satisfiability(f in f_strategy()) {
        let (u, v, rels) = fixture();
        let formula = build(&f, &rels, &mut BTreeSet::new());
        // All three relations free and unbounded.
        let mut q = Query::new(&v, &u);
        q.free_rels(rels)
            .set_bounds(PartialInstance::new())
            .add_group(FormulaGroup::new("f", vec![formula.clone()]));
        let solver_sat = q.solve().unwrap().is_sat();
        let brute_sat = (0u16..256).any(|mask| {
            let inst = instance_from_mask(mask as u8, &rels);
            evaluate_closed(&formula, &inst, &u).unwrap()
        });
        prop_assert_eq!(solver_sat, brute_sat);
    }
}
