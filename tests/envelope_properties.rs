//! Envelope semantics: necessity and sufficiency.
//!
//! The paper defines an envelope as "a necessary and sufficient set of
//! predicates" (Sec. 3): for a fixed sender configuration `C_A`, a
//! recipient configuration `C_B` satisfies `E_{A→B}` **iff** the union
//! `C_A ∪ C_B` satisfies every sender goal whose residue holds. We check
//! this by exhaustive enumeration of recipient configurations on a small
//! universe, and by solver-driven sampling on the paper mesh.

use muppet::{NamedGoal, Party, Session};
use muppet_logic::{
    evaluate_closed, Domain, Formula, Instance, PartialInstance, PartyId, Term, Universe,
    Vocabulary,
};
use muppet_solver::Query;

/// A deliberately tiny two-party domain so recipient configurations can
/// be enumerated exhaustively: sender owns `deny(S)`, recipient owns
/// `allow(S)` and `guard(S)`, shared structure `up(S)`, 2 atoms.
struct Tiny {
    universe: Universe,
    vocab: Vocabulary,
    sender: PartyId,
    recipient: PartyId,
    deny: muppet_logic::RelId,
    allow: muppet_logic::RelId,
    guard: muppet_logic::RelId,
    up: muppet_logic::RelId,
    atoms: Vec<muppet_logic::AtomId>,
}

fn tiny() -> Tiny {
    let mut universe = Universe::new();
    let s = universe.add_sort("S");
    let atoms = vec![universe.add_atom(s, "a"), universe.add_atom(s, "b")];
    let mut vocab = Vocabulary::new();
    let sender = PartyId(0);
    let recipient = PartyId(1);
    let deny = vocab.add_simple_rel("deny", vec![s], Domain::Party(sender));
    let allow = vocab.add_simple_rel("allow", vec![s], Domain::Party(recipient));
    let guard = vocab.add_simple_rel("guard", vec![s], Domain::Party(recipient));
    let up = vocab.add_simple_rel("up", vec![s], Domain::Structure);
    Tiny {
        universe,
        vocab,
        sender,
        recipient,
        deny,
        allow,
        guard,
        up,
        atoms,
    }
}

/// Enumerate every instance over the given unary relations and atoms.
fn enumerate_unary(
    rels: &[muppet_logic::RelId],
    atoms: &[muppet_logic::AtomId],
) -> Vec<Instance> {
    let slots: Vec<(muppet_logic::RelId, muppet_logic::AtomId)> = rels
        .iter()
        .flat_map(|&r| atoms.iter().map(move |&a| (r, a)))
        .collect();
    (0..(1u32 << slots.len()))
        .map(|mask| {
            let mut inst = Instance::new();
            for (bit, &(r, a)) in slots.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    inst.insert(r, vec![a]);
                }
            }
            inst
        })
        .collect()
}

/// Exhaustive necessity + sufficiency over every sender config, sender
/// goal shape, structure, and recipient completion of a tiny universe.
#[test]
fn envelope_is_necessary_and_sufficient_exhaustively() {
    let t = tiny();
    let structure_options = enumerate_unary(&[t.up], &t.atoms);
    let sender_configs = enumerate_unary(&[t.deny], &t.atoms);
    let recipient_configs = enumerate_unary(&[t.allow, t.guard], &t.atoms);

    // A handful of goal shapes mixing all three vocabularies.
    let mut vocab = t.vocab.clone();
    let x = vocab.fresh_var();
    let s_sort = muppet_logic::SortId(0);
    let goals: Vec<Formula> = vec![
        // ∀x: deny(x) ∨ allow(x) ∨ ¬up(x)
        Formula::forall(
            x,
            s_sort,
            Formula::or([
                Formula::pred(t.deny, [Term::Var(x)]),
                Formula::pred(t.allow, [Term::Var(x)]),
                Formula::not(Formula::pred(t.up, [Term::Var(x)])),
            ]),
        ),
        // ∀x: guard(x) ⇒ (deny(x) ∨ allow(x))
        Formula::forall(
            x,
            s_sort,
            Formula::implies(
                Formula::pred(t.guard, [Term::Var(x)]),
                Formula::or([
                    Formula::pred(t.deny, [Term::Var(x)]),
                    Formula::pred(t.allow, [Term::Var(x)]),
                ]),
            ),
        ),
        // ∃x: ¬deny(x) ∧ allow(x) ∧ up(x)
        Formula::exists(
            x,
            s_sort,
            Formula::and([
                Formula::not(Formula::pred(t.deny, [Term::Var(x)])),
                Formula::pred(t.allow, [Term::Var(x)]),
                Formula::pred(t.up, [Term::Var(x)]),
            ]),
        ),
        // Mixed conjunction that decompose() will split.
        Formula::and([
            Formula::pred(t.deny, [Term::Const(t.atoms[0])]),
            Formula::pred(t.allow, [Term::Const(t.atoms[1])]),
            Formula::pred(t.up, [Term::Const(t.atoms[0])]),
        ]),
    ];

    for structure in &structure_options {
        for goal in &goals {
            for c_a in &sender_configs {
                let mut session =
                    Session::new(&t.universe, vocab.clone(), structure.clone());
                session.add_party(
                    Party::new(t.sender, "sender")
                        .with_goals([NamedGoal::hard("g", goal.clone())]),
                );
                session.add_party(Party::new(t.recipient, "recipient"));
                let env = session
                    .compute_envelope(t.sender, t.recipient, c_a)
                    .expect("envelope computes");

                for c_b in &recipient_configs {
                    let combined = structure.union(c_a).union(c_b);
                    let goal_holds =
                        evaluate_closed(goal, &combined, &t.universe).unwrap();
                    let recipient_side = structure.union(c_b);
                    let env_ok = env.check(&recipient_side, &t.universe).is_empty()
                        && env.impossible.is_empty();
                    let residual_ok = env.residual_violations.is_empty();
                    assert_eq!(
                        goal_holds,
                        env_ok && residual_ok,
                        "necessity/sufficiency violated\n\
                         goal: {goal:?}\nC_A: {c_a:?}\nC_B: {c_b:?}\n\
                         structure: {structure:?}\nenvelope: {env:?}"
                    );
                }
            }
        }
    }
}

/// On the real mesh domain: every recipient configuration the solver
/// enumerates as envelope-satisfying also satisfies the sender's goals
/// when combined with the sender's config — and models violating the
/// envelope violate the goals.
#[test]
fn envelope_agrees_with_goals_on_sampled_mesh_configs() {
    use muppet_bench::paper::{session, vocab, IstioTable};
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let c_a = Instance::new(); // provider fixed config (pre-push)
    let env = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &c_a)
        .expect("envelope");
    let k8s_goal = &s.party(mv.k8s_party).unwrap().goals[0];

    // Enumerate a few hundred Istio-side configurations over a reduced
    // bound (only tuples touching port 23 and the frontend, to keep the
    // space small but adversarial).
    let fe = mv.svc_atom("test-frontend").unwrap();
    let be = mv.svc_atom("test-backend").unwrap();
    let p23 = mv.port_atom(23).unwrap();
    let p25 = mv.port_atom(25).unwrap();
    let mut bounds = PartialInstance::new();
    for rel in [mv.istio_eg_deny, mv.istio_eg_allow] {
        bounds.bound(rel);
        bounds.permit(rel, vec![be, p23]);
        bounds.permit(rel, vec![fe, p23]);
    }
    for rel in [mv.istio_in_deny, mv.istio_in_allow] {
        bounds.bound(rel);
        bounds.permit(rel, vec![fe, be, p23][..2].to_vec());
    }
    for rel in [mv.istio_eg_guard, mv.istio_in_guard] {
        bounds.bound(rel);
        bounds.permit(rel, vec![fe]);
        bounds.permit(rel, vec![be]);
    }
    bounds.bound(mv.listens);
    bounds.permit(mv.listens, vec![fe, p23]);
    bounds.permit(mv.listens, vec![be, p25]);

    let mut q = Query::new(s.vocab(), s.universe());
    q.free_rels(mv.istio_rels()).set_bounds(bounds);
    let models = q.enumerate(4096).expect("enumerates");
    assert!(models.len() > 100, "want a meaningful sample");
    let mut satisfying = 0;
    for c_b in &models {
        let combined = c_a.union(c_b);
        let goal_holds = evaluate_closed(&k8s_goal.formula, &combined, s.universe()).unwrap();
        let env_ok = env.check(c_b, s.universe()).is_empty();
        assert_eq!(goal_holds, env_ok, "config {c_b:?}");
        if env_ok {
            satisfying += 1;
        }
    }
    // Both classes must be represented for the test to mean anything.
    assert!(satisfying > 0 && satisfying < models.len());
}
