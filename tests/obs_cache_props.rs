//! Property test for metrics-counter consistency: the daemon cache's
//! global-registry counters (`daemon.cache.*`) must stay coherent
//! under concurrent clients hammering one engine — `hits + misses ==
//! lookups`, and `evictions <= insertions` — for every generated
//! workload. The cache capacity is squeezed so evictions actually
//! happen.
//!
//! This rides on the `muppet-obs` registry being cumulative and
//! process-global: deltas are taken around each workload, so the
//! invariants are checked per-case even though earlier cases (and the
//! engine's own lifetime) have already ticked the same counters.

use std::sync::Arc;
use std::thread;

use muppet_daemon::{Engine, EngineConfig, Op, Request, SessionSpec};
use muppet_obs::registry;
use proptest::prelude::*;

const SERVICES: [&str; 3] = ["test-frontend", "test-backend", "test-db"];

/// Build an Istio goal-table CSV from generated rows.
fn istio_csv(rows: &[(usize, usize, u16, u16)]) -> String {
    let mut csv = String::from("srcService,dstService,srcPort,dstPort\n");
    for &(src, dst, sp, dp) in rows {
        let dst = if dst == src { (dst + 1) % SERVICES.len() } else { dst };
        csv.push_str(&format!(
            "{},{},{},{}\n",
            SERVICES[src % SERVICES.len()],
            SERVICES[dst],
            sp,
            dp
        ));
    }
    csv
}

/// The cache counters we assert over, as one delta-able tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CacheCounters {
    lookups: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

fn cache_counters() -> CacheCounters {
    let snap = registry().snapshot();
    let get = |name: &str| snap.counter(name).unwrap_or(0);
    CacheCounters {
        lookups: get("daemon.cache.lookups"),
        hits: get("daemon.cache.hits"),
        misses: get("daemon.cache.misses"),
        insertions: get("daemon.cache.insertions"),
        evictions: get("daemon.cache.evictions"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// 32 concurrent clients, a handful of distinct cacheable requests,
    /// a 2-entry cache: whatever interleaving the scheduler picks, the
    /// registry's cache counters must balance exactly.
    #[test]
    fn cache_counters_balance_under_32_concurrent_clients(
        rows in prop::collection::vec(
            (0usize..3, 0usize..3,
             prop_oneof![Just(23u16), Just(24), Just(25), Just(26), Just(12000)],
             prop_oneof![Just(23u16), Just(24), Just(25), Just(26), Just(12000)]),
            3..6,
        ),
    ) {
        // Distinct specs: one per generated row (single-row tables), so
        // the workload spans several result keys.
        let specs: Vec<SessionSpec> = rows
            .iter()
            .map(|row| SessionSpec {
                istio_goals: istio_csv(std::slice::from_ref(row)),
                ..SessionSpec::paper_strict()
            })
            .collect();
        // A 2-entry cache guarantees evictions with >2 distinct keys.
        let engine = Arc::new(Engine::new(EngineConfig {
            cache_cap: 2,
            max_sessions: 16,
            ..EngineConfig::default()
        }));
        let before = cache_counters();

        let mut joins = Vec::new();
        for t in 0..32usize {
            let engine = Arc::clone(&engine);
            let specs = specs.clone();
            joins.push(thread::spawn(move || -> Result<u64, String> {
                let mut served = 0u64;
                for j in 0..3usize {
                    let spec = specs[(t + j) % specs.len()].clone();
                    let req = match (t + j) % 3 {
                        0 => Request::new(Op::Reconcile).with_spec(spec),
                        1 => {
                            let mut r =
                                Request::new(Op::CheckConsistency).with_spec(spec);
                            r.party = Some("istio".into());
                            r
                        }
                        _ => {
                            let mut r = Request::new(Op::Reconcile).with_spec(spec);
                            r.mode = Some("blameable".into());
                            r
                        }
                    };
                    let resp = engine.handle(&req, None);
                    if !resp.ok {
                        return Err(resp.error.unwrap_or_else(|| "?".into()));
                    }
                    served += 1;
                }
                Ok(served)
            }));
        }
        let mut total = 0u64;
        for j in joins {
            total += j.join().expect("client thread").unwrap_or_else(|e| {
                panic!("request failed: {e}");
            });
        }
        prop_assert_eq!(total, 96, "32 clients x 3 requests each");

        let after = cache_counters();
        let d = |a: u64, b: u64| a - b;
        let (lookups, hits, misses, insertions, evictions) = (
            d(after.lookups, before.lookups),
            d(after.hits, before.hits),
            d(after.misses, before.misses),
            d(after.insertions, before.insertions),
            d(after.evictions, before.evictions),
        );
        // Every cacheable request does exactly one lookup.
        prop_assert_eq!(lookups, 96, "one lookup per request");
        prop_assert_eq!(
            hits + misses,
            lookups,
            "every lookup is exactly one hit or one miss \
             (hits {} + misses {} != lookups {})",
            hits, misses, lookups
        );
        // Only misses lead to insertions (all results here are
        // definite), and nothing can be evicted that wasn't inserted.
        prop_assert!(
            insertions <= misses,
            "insertions {insertions} > misses {misses}"
        );
        prop_assert!(
            evictions <= insertions,
            "evictions {evictions} > insertions {insertions}"
        );
        // With >2 distinct keys pounding a 2-entry cache, eviction
        // pressure is real — the counter must move.
        prop_assert!(evictions >= 1, "2-entry cache never evicted");
    }
}
