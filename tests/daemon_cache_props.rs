//! Property test for result-cache soundness: across random goal-table
//! mutations served by ONE long-lived engine (so entries accumulate,
//! collide-or-miss, and get delta-invalidated exactly as in a real
//! daemon), every answer — cold, warm, or cached — must equal a fresh
//! cold solve on the core library.

use std::sync::OnceLock;

use muppet_daemon::json::Json;
use muppet_daemon::{Engine, EngineConfig, Op, Request, SessionSpec};
use proptest::prelude::*;

/// The one engine every generated case goes through. Sharing it is the
/// point: later cases hit cache entries and warm sessions created by
/// earlier ones, which is where an unsound cache key would show up as
/// a verdict that differs from the fresh oracle.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine::new(EngineConfig::default()))
}

const SERVICES: [&str; 3] = ["test-frontend", "test-backend", "test-db"];

/// Build an Istio goal-table CSV from generated rows.
fn istio_csv(rows: &[(usize, usize, u16, u16)]) -> String {
    let mut csv = String::from("srcService,dstService,srcPort,dstPort\n");
    for &(src, dst, sp, dp) in rows {
        let dst = if dst == src { (dst + 1) % SERVICES.len() } else { dst };
        csv.push_str(&format!(
            "{},{},{},{}\n",
            SERVICES[src % SERVICES.len()],
            SERVICES[dst],
            sp,
            dp
        ));
    }
    csv
}

fn spec_with(istio_goals: String, mtls: bool) -> SessionSpec {
    SessionSpec {
        istio_goals,
        mtls,
        ..SessionSpec::paper_strict()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reconcile verdicts served by the shared engine (cached or not)
    /// always equal a fresh cold solve.
    #[test]
    fn cached_reconcile_equals_fresh_cold_solve(
        rows in prop::collection::vec(
            (0usize..3, 0usize..3,
             prop_oneof![Just(23u16), Just(24), Just(25), Just(26), Just(12000)],
             prop_oneof![Just(23u16), Just(24), Just(25), Just(26), Just(12000)]),
            1..4,
        ),
        mtls in any::<bool>(),
    ) {
        let spec = spec_with(istio_csv(&rows), mtls);
        // Fresh cold oracle: no daemon, no cache, no warm state.
        let oracle = spec.clone().load().expect("load")
            .core.session()
            .reconcile(muppet::ReconcileMode::HardBounds)
            .expect("reconcile")
            .success;
        // The shared engine, twice: the first answer may come cold or
        // from an earlier case's cache entry; the second is a
        // guaranteed repeat of a now-cached key.
        let req = Request::new(Op::Reconcile).with_spec(spec);
        let first = engine().handle(&req, None);
        prop_assert!(first.ok, "{:?}", first.error);
        prop_assert_eq!(
            first.result.get("success").and_then(Json::as_bool),
            Some(oracle),
            "engine verdict diverged from fresh cold solve"
        );
        let second = engine().handle(&req, None);
        prop_assert!(second.cached, "repeat of an identical request must hit");
        prop_assert_eq!(first.result.to_line(), second.result.to_line());
    }

    /// The delta-invalidation path: the provider's envelope key ignores
    /// tenant-side goal edits that keep the port universe intact, and
    /// the served envelope (cached or not) always equals a fresh one.
    #[test]
    fn cached_envelope_equals_fresh_extraction(
        rows in prop::collection::vec(
            (0usize..3, 0usize..3,
             prop_oneof![Just(23u16), Just(24), Just(25), Just(26)],
             prop_oneof![Just(23u16), Just(24), Just(25), Just(26)]),
            1..4,
        ),
    ) {
        // Pin the port universe to a fixed superset so every generated
        // tenant table maps to the SAME provider-side envelope key —
        // each case after the first must be a cache hit, and the hit
        // must still match a fresh extraction.
        let mut spec = spec_with(istio_csv(&rows), false);
        spec.extra_ports = vec![23, 24, 25, 26, 12000];
        let warm = {
            let ws = spec.clone().load().expect("load");
            let s = ws.core.session();
            let from = ws.core.party_id("k8s").expect("party");
            let to = ws.core.party_id("istio").expect("party");
            let c_from = ws.core.deployed(from).expect("deployed");
            let env = s.compute_envelope(from, to, &c_from).expect("envelope");
            env.render_alloy(s.vocab(), s.universe())
        };
        let mut req = Request::new(Op::ExtractEnvelope).with_spec(spec);
        req.to = Some("istio".into());
        let resp = engine().handle(&req, None);
        prop_assert!(resp.ok, "{:?}", resp.error);
        prop_assert_eq!(
            resp.result.get("alloy").and_then(Json::as_str),
            Some(warm.as_str()),
            "served envelope diverged from a fresh extraction"
        );
    }

    /// Consistency checks for a party hash only that party's goals: the
    /// verdict from the shared engine always equals a fresh solve, no
    /// matter what other tables earlier cases cached.
    #[test]
    fn cached_consistency_equals_fresh_solve(
        rows in prop::collection::vec(
            (0usize..3, 0usize..3,
             prop_oneof![Just(23u16), Just(25), Just(12000)],
             prop_oneof![Just(23u16), Just(25), Just(12000)]),
            1..3,
        ),
    ) {
        let spec = spec_with(istio_csv(&rows), false);
        let oracle = {
            let ws = spec.clone().load().expect("load");
            let party = ws.core.party_id("istio").expect("party");
            ws.core.session().local_consistency(party).expect("consistency").ok
        };
        let mut req = Request::new(Op::CheckConsistency).with_spec(spec);
        req.party = Some("istio".into());
        let resp = engine().handle(&req, None);
        prop_assert!(resp.ok, "{:?}", resp.error);
        prop_assert_eq!(resp.result.get("ok").and_then(Json::as_bool), Some(oracle));
    }
}

/// Ports that no other case (or test) uses, so each overload-soundness
/// case works on a virgin cache fingerprint in the shared engine.
fn unique_port() -> u16 {
    use std::sync::atomic::{AtomicU16, Ordering};
    static NEXT: AtomicU16 = AtomicU16::new(21_000);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Overload soundness (DESIGN.md §14): work that aborts without a
    /// definite verdict — here via a pre-cancelled token, the same path
    /// a drain-deadline or client-disconnect cancellation takes — must
    /// never seed the result cache. (Server-level sheds respond before
    /// the engine runs at all, so the cancel path is the only way
    /// overload can reach the cache.) The next identical request must
    /// be a genuine cold solve that matches the fresh oracle, and only
    /// a request after THAT may hit the cache.
    #[test]
    fn cancelled_work_never_enters_the_cache(
        rows in prop::collection::vec(
            (0usize..3, 0usize..3,
             prop_oneof![Just(23u16), Just(24), Just(25), Just(12000)],
             prop_oneof![Just(23u16), Just(24), Just(25), Just(12000)]),
            1..4,
        ),
    ) {
        let mut spec = spec_with(istio_csv(&rows), false);
        spec.extra_ports.push(unique_port());
        let req = Request::new(Op::Reconcile).with_spec(spec.clone());

        let cancel = muppet_solver::CancelToken::new();
        cancel.cancel();
        let aborted = engine().handle(&req, Some(&cancel));
        prop_assert!(!aborted.cached, "aborted work cannot be a cache hit");
        prop_assert!(
            !aborted.ok
                || !aborted
                    .result
                    .get("exhausted")
                    .map(Json::is_null)
                    .unwrap_or(true),
            "a pre-cancelled solve must not produce a definite verdict: {}",
            aborted.to_line()
        );

        let oracle = spec.clone().load().expect("load")
            .core.session()
            .reconcile(muppet::ReconcileMode::HardBounds)
            .expect("reconcile")
            .success;
        let real = engine().handle(&req, None);
        prop_assert!(real.ok, "{:?}", real.error);
        prop_assert!(
            !real.cached,
            "the cancelled attempt must not have seeded the cache"
        );
        prop_assert_eq!(
            real.result.get("success").and_then(Json::as_bool),
            Some(oracle),
            "post-cancellation verdict diverged from the fresh oracle"
        );
        let repeat = engine().handle(&req, None);
        prop_assert!(repeat.cached, "the definite verdict is cacheable as usual");
        prop_assert_eq!(real.result.to_line(), repeat.result.to_line());
    }
}
