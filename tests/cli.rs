//! Integration tests for the `muppet-cli` binary: drive the actual
//! executable over the paper's files and check verdicts, exit codes and
//! output shape.

use std::path::PathBuf;
use std::process::{Command, Output};

const MESH_YAML: &str = "\
---
apiVersion: v1
kind: Service
metadata:
  name: test-frontend
spec:
  ports:
  - port: 23
---
apiVersion: v1
kind: Service
metadata:
  name: test-backend
spec:
  ports:
  - port: 25
  - port: 12000
---
apiVersion: v1
kind: Service
metadata:
  name: test-db
spec:
  ports:
  - port: 16000
";

const BAN_YAML: &str = "\
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: deny-telnet
  annotations:
    x-muppet-action: Deny
spec:
  podSelector: {}
  policyTypes:
  - Ingress
  ingress:
  - ports:
    - port: 23
";

const K8S_GOALS: &str = "port,perm,selector\n23,DENY,*\n";
const ISTIO_STRICT: &str = "\
srcService,dstService,srcPort,dstPort
test-frontend,test-backend,24,25
test-backend,test-frontend,26,23
test-backend,test-db,14000,16000
test-db,test-backend,10000,12000
";
const ISTIO_RELAXED: &str = "\
srcService,dstService,srcPort,dstPort
test-frontend,test-backend,?w,?x
test-backend,test-frontend,?y,?z
test-backend,test-db,14000,16000
test-db,test-backend,10000,12000
";

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("muppet-cli-test-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let f = Fixture { dir };
        f.write("mesh.yaml", MESH_YAML);
        f.write("ban.yaml", BAN_YAML);
        f.write("k8s.csv", K8S_GOALS);
        f.write("istio.csv", ISTIO_STRICT);
        f.write("relaxed.csv", ISTIO_RELAXED);
        f
    }

    fn write(&self, name: &str, content: &str) {
        std::fs::write(self.dir.join(name), content).expect("write fixture");
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_muppet-cli"))
            .args(args)
            .output()
            .expect("run muppet-cli")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn reconcile_detects_the_paper_conflict() {
    let f = Fixture::new("reconcile");
    let out = f.run(&[
        "reconcile",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
        "--istio-goals",
        &f.path("istio.csv"),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("UNSAT"));
    assert!(text.contains("DENY port 23"));
    assert!(text.contains("test-backend -> test-frontend"));
}

#[test]
fn reconcile_succeeds_on_relaxed_goals() {
    let f = Fixture::new("relaxed");
    let out = f.run(&[
        "reconcile",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
        "--istio-goals",
        &f.path("relaxed.csv"),
        "--extra-ports",
        "24,26",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("SAT"));
}

#[test]
fn check_localizes_the_outage() {
    let f = Fixture::new("check");
    // Deployed: mesh + the pushed ban; goals: the strict Istio table.
    let out = f.run(&[
        "check",
        "--manifests",
        &f.path("mesh.yaml"),
        "--manifests",
        &f.path("ban.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
        "--istio-goals",
        &f.path("istio.csv"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("[FAIL] istio-admin: istio goal 2"));
    assert!(text.contains("deny-telnet"), "trace names the culprit: {text}");
    // The other goals hold.
    assert_eq!(text.matches("[ok ]").count(), 4);
}

#[test]
fn check_passes_on_open_mesh() {
    let f = Fixture::new("check-ok");
    let out = f.run(&[
        "check",
        "--manifests",
        &f.path("mesh.yaml"),
        "--istio-goals",
        &f.path("istio.csv"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("all 4 goal(s) hold"));
}

#[test]
fn envelope_prints_fig5() {
    let f = Fixture::new("envelope");
    let out = f.run(&[
        "envelope",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("all src: Service | all dst: Service"));
    assert!(text.contains("(5) Src is explicitly allowed to send to some port"));
    assert!(text.contains("reveals 1 concrete setting(s): [\"23\"]"));
}

#[test]
fn envelope_reports_self_satisfied_provider() {
    let f = Fixture::new("selfsat");
    let out = f.run(&[
        "envelope",
        "--manifests",
        &f.path("mesh.yaml"),
        "--manifests",
        &f.path("ban.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("already guarantees its goals"), "{text}");
    assert!(text.contains("self-satisfied: k8s goal 1"));
}

#[test]
fn synthesize_emits_reparsable_verified_yaml() {
    let f = Fixture::new("synth");
    let out = f.run(&[
        "synthesize",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
        "--istio-goals",
        &f.path("relaxed.csv"),
        "--extra-ports",
        "24,26",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let yaml = stdout(&out);
    // The output is a valid multi-document manifest stream.
    let bundle = muppet_mesh::manifest::parse_manifests(&yaml).expect("emitted YAML parses");
    assert_eq!(bundle.mesh.services().len(), 3);
    // And the stderr note confirms verification ran.
    assert!(String::from_utf8_lossy(&out.stderr).contains("verified"));
}

#[test]
fn explain_names_failing_pairs_and_hatches() {
    let f = Fixture::new("explain");
    let out = f.run(&[
        "explain",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("VIOLATED"));
    assert!(text.contains("dst = test-frontend"));
    assert!(text.contains("[FAIL] dst does not listen on port 23"));
    // With the ban deployed K8s-side, the envelope is self-satisfied.
    let out = f.run(&[
        "explain",
        "--manifests",
        &f.path("mesh.yaml"),
        "--manifests",
        &f.path("ban.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("trivial"));
}

#[test]
fn exhausted_budget_gives_exit_3_and_structured_report() {
    let f = Fixture::new("budget");
    let base = [
        "reconcile",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
        "--istio-goals",
        &f.path("istio.csv"),
    ];
    // An already-expired deadline cannot prove anything: structured
    // UNKNOWN, exit 3, and a pointer at the budget knobs.
    let mut args = base.to_vec();
    args.extend(["--timeout-ms", "0"]);
    let out = f.run(&args);
    assert_eq!(out.status.code(), Some(3), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("UNKNOWN"), "{text}");
    assert!(text.contains("budget exhausted at phase"), "{text}");
    assert!(text.contains("attempt(s)"), "{text}");
    assert!(text.contains("--timeout-ms"), "{text}");
    // A generous budget reaches the real verdict (exit 1: conflict).
    let mut args = base.to_vec();
    args.extend(["--timeout-ms", "60000", "--conflict-budget", "1000000", "--retries", "3"]);
    let out = f.run(&args);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("UNSAT"));
}

/// Regression (budget overflow): an absurd `--timeout-ms` used to
/// panic in `Budget::with_timeout` on `Instant + Duration` overflow.
/// It must instead behave like "no deadline" and deliver the real
/// verdict.
#[test]
fn absurd_timeout_is_no_deadline_not_a_panic() {
    let f = Fixture::new("hugetimeout");
    for timeout in ["18446744073709551615", "9223372036854775807"] {
        let out = f.run(&[
            "reconcile",
            "--manifests",
            &f.path("mesh.yaml"),
            "--k8s-goals",
            &f.path("k8s.csv"),
            "--istio-goals",
            &f.path("istio.csv"),
            "--timeout-ms",
            timeout,
        ]);
        // Exit 1 = the strict tables' real UNSAT verdict; a panic would
        // surface as a signal/101 and no UNSAT line.
        assert_eq!(out.status.code(), Some(1), "timeout {timeout}: {out:?}");
        assert!(stdout(&out).contains("UNSAT"), "timeout {timeout}");
    }
}

/// `--trace-json` streams one schema-conforming JSON-Lines event per
/// closed span, covering the solve phases.
#[test]
fn trace_json_flag_streams_span_events() {
    let f = Fixture::new("tracejson");
    let trace = f.path("trace.jsonl");
    let out = f.run(&[
        "reconcile",
        "--manifests",
        &f.path("mesh.yaml"),
        "--k8s-goals",
        &f.path("k8s.csv"),
        "--istio-goals",
        &f.path("istio.csv"),
        "--trace-json",
        &trace,
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.trim().is_empty(), "trace must not be empty");
    let mut seen = std::collections::BTreeSet::new();
    for line in text.lines() {
        let v = muppet_daemon::json::parse(line)
            .unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        for key in ["name", "path", "depth", "start_us", "elapsed_us", "counters", "attrs"] {
            assert!(v.get(key).is_some(), "event missing {key:?}: {line}");
        }
        let name = v.get("name").and_then(muppet_daemon::json::Json::as_str).unwrap();
        seen.insert(name.to_string());
        // path ends with the span's own name.
        let path = v.get("path").and_then(muppet_daemon::json::Json::as_str).unwrap();
        assert!(path.ends_with(name), "path {path:?} must end with {name:?}");
    }
    for phase in ["reconcile", "ground", "encode", "search"] {
        assert!(seen.contains(phase), "missing {phase:?} events; saw {seen:?}");
    }
}

#[test]
fn bad_inputs_give_exit_2() {
    let f = Fixture::new("bad");
    let out = f.run(&["reconcile"]);
    assert_eq!(out.status.code(), Some(2));
    let out = f.run(&["frobnicate", "--manifests", &f.path("mesh.yaml")]);
    assert_eq!(out.status.code(), Some(2));
    let out = f.run(&[
        "reconcile",
        "--manifests",
        "/nonexistent/path.yaml",
    ]);
    assert_eq!(out.status.code(), Some(2));
    f.write("garbage.yaml", "kind: Widget\nmetadata:\n  name: x\n");
    let out = f.run(&["reconcile", "--manifests", &f.path("garbage.yaml")]);
    assert_eq!(out.status.code(), Some(2));
    let out = f.run(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("USAGE"));
}
