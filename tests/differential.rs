//! Differential testing: the executable dataplane simulator and the
//! logical encoding must agree on every flow decision.
//!
//! This is the load-bearing correctness argument for the whole
//! reproduction: the paper's algorithms operate on the logical encoding,
//! and the dataplane simulator stands in for real K8s + Istio clusters.
//! If the two ever disagreed, envelopes and synthesized configurations
//! would be meaningless.

use muppet_logic::{evaluate_closed, PartyId, Term};
use muppet_mesh::{
    evaluate_flow, Action, AuthPolicyRule, AuthorizationPolicy, Direction, Flow, Mesh, MeshVocab,
    NetPolicyRule, NetworkPolicy, Selector, Service,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_mesh(rng: &mut StdRng, services: usize) -> Mesh {
    let mut mesh = Mesh::new();
    for i in 0..services {
        let nports = rng.random_range(1..=3);
        let ports: Vec<u16> = (0..nports)
            .map(|j| 1000 + (i as u16) * 10 + j as u16)
            .collect();
        mesh.add_service(Service::new(format!("s{i}"), ports));
    }
    mesh
}

fn random_selector(rng: &mut StdRng, mesh: &Mesh) -> Selector {
    match rng.random_range(0..3) {
        0 => Selector::All,
        1 => {
            let i = rng.random_range(0..mesh.services().len());
            Selector::Name(mesh.services()[i].name.clone())
        }
        _ => {
            let i = rng.random_range(0..mesh.services().len());
            Selector::label("app", mesh.services()[i].name.clone())
        }
    }
}

fn random_ports(rng: &mut StdRng, mv: &MeshVocab) -> Vec<u16> {
    let all: Vec<u16> = mv.ports().collect();
    let n = rng.random_range(0..=2); // 0 = any port
    (0..n)
        .map(|_| all[rng.random_range(0..all.len())])
        .collect()
}

fn random_k8s_policy(rng: &mut StdRng, mesh: &Mesh, mv: &MeshVocab, i: usize) -> NetworkPolicy {
    let nrules = rng.random_range(0..=2);
    NetworkPolicy {
        name: format!("np{i}"),
        selector: random_selector(rng, mesh),
        direction: if rng.random_bool(0.5) {
            Direction::Ingress
        } else {
            Direction::Egress
        },
        action: if rng.random_bool(0.5) {
            Action::Allow
        } else {
            Action::Deny
        },
        rules: (0..nrules)
            .map(|_| {
                // Occasionally use an endPort-style range instead of a
                // discrete set.
                let port_ranges = if rng.random_bool(0.3) {
                    let all: Vec<u16> = mv.ports().collect();
                    let lo = all[rng.random_range(0..all.len())];
                    let hi = all[rng.random_range(0..all.len())];
                    vec![(lo.min(hi), lo.max(hi))]
                } else {
                    Vec::new()
                };
                NetPolicyRule {
                    peer: random_selector(rng, mesh),
                    ports: random_ports(rng, mv).into_iter().collect(),
                    port_ranges,
                }
            })
            .collect(),
    }
}

fn random_istio_policy(
    rng: &mut StdRng,
    mesh: &Mesh,
    mv: &MeshVocab,
    i: usize,
) -> AuthorizationPolicy {
    let direction = if rng.random_bool(0.5) {
        Direction::Ingress
    } else {
        Direction::Egress
    };
    let nrules = rng.random_range(0..=2);
    let rules = (0..nrules)
        .map(|_| match direction {
            Direction::Ingress => {
                let n = rng.random_range(1..=2);
                AuthPolicyRule::from_services((0..n).map(|_| {
                    let j = rng.random_range(0..mesh.services().len());
                    mesh.services()[j].name.clone()
                }))
            }
            Direction::Egress => {
                let ports = random_ports(rng, mv);
                let ports = if ports.is_empty() {
                    vec![1000] // egress rules need at least one port to stay in-subset
                } else {
                    ports
                };
                AuthPolicyRule::to_ports(ports)
            }
        })
        .collect();
    AuthorizationPolicy {
        name: format!("ap{i}"),
        selector: random_selector(rng, mesh),
        direction,
        action: if rng.random_bool(0.5) {
            Action::Allow
        } else {
            Action::Deny
        },
        rules,
    }
}

/// The core differential property, exercised over many random
/// configurations: for every (src, dst, dport) triple, the dataplane
/// verdict equals the logical `allowed` formula evaluated over the
/// compiled instance.
#[test]
fn dataplane_and_logic_agree_on_random_configs() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for round in 0..60 {
        let mesh = random_mesh(&mut rng, 2 + round % 4);
        let mv = MeshVocab::new(&mesh, [20000, 20001], PartyId(0), PartyId(1));
        let nk = rng.random_range(0..=3);
        let ni = rng.random_range(0..=3);
        let k8s: Vec<NetworkPolicy> = (0..nk)
            .map(|i| random_k8s_policy(&mut rng, &mesh, &mv, i))
            .collect();
        let istio: Vec<AuthorizationPolicy> = (0..ni)
            .map(|i| random_istio_policy(&mut rng, &mesh, &mv, i))
            .collect();

        let inst = mv
            .structure_instance()
            .union(&mv.compile_k8s(&k8s).expect("compiles"))
            .union(&mv.compile_istio(&istio).expect("compiles"));

        for src in mesh.services() {
            for dst in mesh.services() {
                for port in mv.ports() {
                    let flow = Flow::new(src.name.clone(), dst.name.clone(), 0, port);
                    let plane = evaluate_flow(&mesh, &k8s, &istio, &flow).allowed;
                    let formula = mv.allowed_formula(
                        Term::Const(mv.svc_atom(&src.name).unwrap()),
                        Term::Const(mv.svc_atom(&dst.name).unwrap()),
                        Term::Const(mv.port_atom(port).unwrap()),
                    );
                    let logic = evaluate_closed(&formula, &inst, &mv.universe).unwrap();
                    assert_eq!(
                        plane, logic,
                        "round {round}: disagreement on {} → {}:{port}\n\
                         k8s: {k8s:#?}\nistio: {istio:#?}",
                        src.name, dst.name
                    );
                }
            }
        }
    }
}

/// Compile/decompile round-trips on random policies: decompiled objects
/// recompile to the identical instance.
#[test]
fn decompile_recompile_is_identity_on_random_configs() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for round in 0..40 {
        let mesh = random_mesh(&mut rng, 2 + round % 3);
        let mv = MeshVocab::new(&mesh, [20000], PartyId(0), PartyId(1));
        let k8s: Vec<NetworkPolicy> = (0..rng.random_range(0..=3))
            .map(|i| random_k8s_policy(&mut rng, &mesh, &mv, i))
            .collect();
        let istio: Vec<AuthorizationPolicy> = (0..rng.random_range(0..=3))
            .map(|i| random_istio_policy(&mut rng, &mesh, &mv, i))
            .collect();
        let k8s_inst = mv.compile_k8s(&k8s).expect("compiles");
        let istio_inst = mv.compile_istio(&istio).expect("compiles");
        assert_eq!(
            mv.compile_k8s(&mv.decompile_k8s(&k8s_inst)).expect("recompiles"),
            k8s_inst,
            "round {round} k8s"
        );
        assert_eq!(
            mv.compile_istio(&mv.decompile_istio(&istio_inst))
                .expect("recompiles"),
            istio_inst,
            "round {round} istio"
        );
    }
}

/// The manifest layer is also part of the loop: emitting the decompiled
/// policies as YAML and re-parsing them preserves the compiled instance.
#[test]
fn yaml_roundtrip_preserves_compiled_instance() {
    let mut rng = StdRng::seed_from_u64(0xAB5E);
    for round in 0..25 {
        let mesh = random_mesh(&mut rng, 3);
        let mv = MeshVocab::new(&mesh, [20000], PartyId(0), PartyId(1));
        let k8s: Vec<NetworkPolicy> = (0..rng.random_range(1..=3))
            .map(|i| random_k8s_policy(&mut rng, &mesh, &mv, i))
            .collect();
        let istio: Vec<AuthorizationPolicy> = (0..rng.random_range(1..=3))
            .map(|i| random_istio_policy(&mut rng, &mesh, &mv, i))
            .collect();
        let k8s_inst = mv.compile_k8s(&k8s).expect("compiles");
        let istio_inst = mv.compile_istio(&istio).expect("compiles");

        // Decompile → YAML → parse → recompile.
        let mut yaml = String::new();
        for p in mv.decompile_k8s(&k8s_inst) {
            yaml.push_str("---\n");
            yaml.push_str(&muppet_mesh::manifest::emit_network_policy(&p));
        }
        for p in mv.decompile_istio(&istio_inst) {
            yaml.push_str("---\n");
            yaml.push_str(&muppet_mesh::manifest::emit_authorization_policy(&p));
        }
        let bundle = muppet_mesh::manifest::parse_manifests(&yaml).expect("reparses");
        assert_eq!(
            mv.compile_k8s(&bundle.k8s_policies).expect("recompiles"),
            k8s_inst,
            "round {round} k8s via yaml"
        );
        assert_eq!(
            mv.compile_istio(&bundle.istio_policies).expect("recompiles"),
            istio_inst,
            "round {round} istio via yaml"
        );
    }
}
