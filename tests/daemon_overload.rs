//! Overload-robustness tests for `muppetd` (DESIGN.md §14): bounded
//! admission, load shedding with retry hints, the server-side read
//! timeout (slow-loris), graceful drain, and the client retry path.
//!
//! These run a real server on a real Unix socket with deliberately
//! tiny limits, so test-sized bursts genuinely trip admission control.

use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use muppet_daemon::json::Json;
use muppet_daemon::{
    serve, Endpoint, Op, OverloadConfig, Request, RetryPolicy, ServerConfig, SessionSpec,
};

fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("muppetd-ov-{}-{name}.sock", std::process::id()))
}

fn start(
    name: &str,
    workers: usize,
    overload: OverloadConfig,
) -> (muppet_daemon::ServerHandle, PathBuf) {
    let path = socket_path(name);
    let _ = std::fs::remove_file(&path);
    let handle = serve(ServerConfig {
        socket: Some(path.clone()),
        tcp: None,
        workers,
        engine: muppet_daemon::EngineConfig {
            threads: 1,
            ..muppet_daemon::EngineConfig::default()
        },
        overload,
    })
    .expect("serve");
    (handle, path)
}

/// A spec whose fingerprint no other test shares: distinct extra ports
/// force a cold solve instead of a cache hit, so requests genuinely
/// occupy the queue.
fn fresh_spec(port: u16) -> SessionSpec {
    let mut s = SessionSpec::paper_relaxed();
    s.extra_ports.push(port);
    s
}

/// With a single worker and a queue bound of 1, a pipelined burst of
/// cold solves must shed deterministically: at most (1 running + 1
/// queued) are admitted at any instant, every other request gets an
/// `overloaded` response carrying the configured retry hint, and every
/// request — admitted or shed — is answered exactly once.
#[test]
fn queue_full_sheds_with_retry_hint_and_answers_everything() {
    let overload = OverloadConfig {
        max_queue_depth: 1,
        max_inflight_per_conn: 64,
        retry_after_ms: 123,
        ..OverloadConfig::default()
    };
    let (handle, path) = start("qfull", 1, overload);
    let mut client = Endpoint::Unix(path).connect(Some(Duration::from_secs(60))).unwrap();
    const N: usize = 8;
    for k in 0..N {
        let mut req = Request::new(Op::CheckConformance).with_spec(fresh_spec(30_000 + k as u16));
        req.id = Some(format!("q-{k}"));
        client.send(&req).unwrap();
    }
    let mut ids: std::collections::BTreeSet<String> =
        (0..N).map(|k| format!("q-{k}")).collect();
    let mut shed = 0usize;
    let mut served = 0usize;
    for _ in 0..N {
        let resp = client.recv().expect("every pipelined request gets a response");
        assert!(ids.remove(resp.id.as_deref().unwrap()), "duplicate or unknown id");
        if resp.overloaded {
            shed += 1;
            assert!(!resp.ok);
            assert_eq!(resp.retry_after_ms, Some(123), "shed must carry the configured hint");
            assert!(resp.error.as_deref().unwrap_or("").contains("overloaded"));
        } else {
            served += 1;
            assert!(resp.ok, "admitted request failed: {:?}", resp.error);
        }
    }
    assert!(ids.is_empty(), "unanswered requests: {ids:?}");
    // The reader sheds while a cold solve occupies the single worker
    // and another fills the queue; with 8 near-instant sends at least
    // one must bounce, and at least one must be served.
    assert!(shed >= 1, "burst of {N} cold solves never tripped the queue bound");
    assert!(served >= 1, "admission control must not shed everything");

    // Shed accounting is visible over the wire.
    let stats = Endpoint::Unix(socket_path("qfull"))
        .roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(10)))
        .expect("stats");
    let total = stats
        .result
        .get("overload")
        .and_then(|o| o.get("shed"))
        .and_then(|s| s.get("total"))
        .and_then(Json::as_u64)
        .expect("overload.shed.total in stats");
    assert!(total >= shed as u64);
    handle.stop();
    handle.wait();
}

/// The per-connection cap sheds pipelined requests beyond it even when
/// the global queue has room, and only for that connection.
#[test]
fn per_connection_cap_sheds_independently_of_queue() {
    let overload = OverloadConfig {
        max_queue_depth: 64,
        max_inflight_per_conn: 1,
        retry_after_ms: 7,
        ..OverloadConfig::default()
    };
    let (handle, path) = start("conncap", 1, overload);
    // Park cold work from connection A so the single worker is busy
    // and connection B's admitted request stays in flight.
    let mut parker = Endpoint::Unix(path.clone()).connect(Some(Duration::from_secs(60))).unwrap();
    parker.send(&Request::new(Op::CheckConformance).with_spec(fresh_spec(31_000))).unwrap();

    let mut b = Endpoint::Unix(path.clone()).connect(Some(Duration::from_secs(60))).unwrap();
    const N: usize = 4;
    for k in 0..N {
        let mut req = Request::new(Op::CheckConformance).with_spec(fresh_spec(31_100 + k as u16));
        req.id = Some(format!("b-{k}"));
        b.send(&req).unwrap();
    }
    let mut shed = 0usize;
    for _ in 0..N {
        let resp = b.recv().expect("pipelined request answered");
        if resp.overloaded {
            shed += 1;
            assert_eq!(resp.retry_after_ms, Some(7));
            assert!(resp.error.as_deref().unwrap_or("").contains("connection"));
        }
    }
    // Cap 1 with the worker parked: the 2nd..Nth lines arrive while
    // B's first request is still queued behind the parked solve.
    assert!(shed >= 1, "per-connection cap never tripped");
    // A fresh connection is unaffected by B's cap.
    let ok = Endpoint::Unix(path)
        .roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(10)))
        .expect("fresh connection served");
    assert!(ok.ok);
    let conn_cap = ok
        .result
        .get("overload")
        .and_then(|o| o.get("shed"))
        .and_then(|s| s.get("conn_cap"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(conn_cap >= shed as u64, "conn-cap sheds must be attributed in stats");
    let _ = parker.recv();
    handle.stop();
    handle.wait();
}

/// Slow-loris regression: a connection that writes half a request line
/// and stalls must be killed at the read timeout (with a diagnostic
/// response), while a connection that is merely *idle between requests*
/// for longer than the timeout stays usable.
#[test]
fn stalled_mid_line_is_killed_but_idle_connections_survive() {
    let overload = OverloadConfig {
        read_timeout_ms: 200,
        ..OverloadConfig::default()
    };
    let (handle, path) = start("loris", 1, overload);

    // Idle-but-honest client: silent for 3x the read timeout, then a
    // complete request. Must be served.
    let mut idle = Endpoint::Unix(path.clone()).connect(Some(Duration::from_secs(10))).unwrap();
    thread::sleep(Duration::from_millis(600));
    let resp = idle.roundtrip(&Request::new(Op::Stats)).expect("idle connection survives");
    assert!(resp.ok);

    // Slow-loris: half a line, then silence.
    use std::io::{Read as _, Write as _};
    let mut raw = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    raw.write_all(b"{\"op\":\"stats\"").unwrap();
    raw.flush().unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let t0 = Instant::now();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).expect("server closes the stalled connection");
    let line = String::from_utf8_lossy(&buf);
    assert!(
        line.contains("read timeout"),
        "stall must be answered with a diagnostic before the close, got: {line:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "stalled connection lingered {:?}",
        t0.elapsed()
    );
    handle.stop();
    handle.wait();
}

/// Requests arriving after `stop()` are shed with a draining notice
/// rather than silently dropped, and `wait()` returns within the drain
/// deadline even with work still queued (straggler cancellation).
#[test]
fn drain_sheds_new_work_and_meets_its_deadline() {
    let overload = OverloadConfig {
        max_queue_depth: 64,
        drain_deadline_ms: 1_000,
        ..OverloadConfig::default()
    };
    let (handle, path) = start("drain", 1, overload);
    let mut client = Endpoint::Unix(path.clone()).connect(Some(Duration::from_secs(10))).unwrap();
    // Prove the connection is live before the server stops.
    assert!(client.roundtrip(&Request::new(Op::Stats)).unwrap().ok);

    // Park cold work so the drain has something to finish or cancel.
    let mut parker = Endpoint::Unix(path).connect(Some(Duration::from_secs(60))).unwrap();
    for k in 0..3u16 {
        parker
            .send(&Request::new(Op::CheckConformance).with_spec(fresh_spec(32_000 + k)))
            .unwrap();
    }

    handle.stop();
    // Existing connections get a draining shed for new work.
    let mut req = Request::new(Op::Stats);
    req.id = Some("late".into());
    client.send(&req).unwrap();
    let resp = client.recv().expect("draining requests are answered, not dropped");
    assert!(resp.overloaded, "post-stop request must be shed: {:?}", resp.error);
    assert!(resp.error.as_deref().unwrap_or("").contains("draining"));

    let t0 = Instant::now();
    handle.wait();
    let waited = t0.elapsed();
    assert!(
        waited < Duration::from_millis(1_000 + 2_000),
        "drain blew its deadline: {waited:?}"
    );
}

/// End-to-end retry: under a flood that keeps the queue full, a client
/// using `roundtrip_retry` still reaches the correct verdict, honoring
/// the server's backoff hints along the way.
#[test]
fn retrying_client_reaches_a_verdict_under_flood() {
    let overload = OverloadConfig {
        max_queue_depth: 1,
        max_inflight_per_conn: 64,
        retry_after_ms: 5,
        ..OverloadConfig::default()
    };
    let (handle, path) = start("retry", 1, overload);

    // Oracle verdict for the probe spec, computed directly on the core.
    let probe = fresh_spec(33_999);
    let warm = probe.clone().load().expect("load");
    let tenant = warm.core.party_id("istio").expect("party");
    let provider = warm.core.party_id("k8s").expect("party");
    let preferred = warm.core.deployed(tenant).expect("deployed");
    let expect = muppet::conformance::run_conformance(
        &warm.core.session(),
        provider,
        tenant,
        Some(&preferred),
    )
    .expect("conformance")
    .success;

    let stop_flood = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flooder = {
        let path = path.clone();
        let stop_flood = stop_flood.clone();
        thread::spawn(move || {
            let ep = Endpoint::Unix(path);
            let mut k = 0u16;
            while !stop_flood.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(mut c) = ep.connect(Some(Duration::from_secs(10))) {
                    for _ in 0..4 {
                        let req = Request::new(Op::CheckConformance)
                            .with_spec(fresh_spec(33_000 + (k % 900)));
                        k = k.wrapping_add(1);
                        if c.send(&req).is_err() {
                            break;
                        }
                    }
                    // Read the burst back so response buffers drain.
                    for _ in 0..4 {
                        if c.recv().is_err() {
                            break;
                        }
                    }
                }
            }
        })
    };

    let policy = RetryPolicy {
        attempts: 20,
        base_delay: Duration::from_millis(2),
        deadline: Duration::from_secs(60),
        jitter_seed: Some(42),
        ..RetryPolicy::default()
    };
    let report = Endpoint::Unix(path)
        .roundtrip_retry(
            &Request::new(Op::CheckConformance).with_spec(probe),
            Some(Duration::from_secs(60)),
            &policy,
        )
        .expect("retrying client must not error out");
    stop_flood.store(true, std::sync::atomic::Ordering::Relaxed);
    flooder.join().unwrap();
    assert!(
        !report.response.overloaded,
        "20 attempts against a 4-deep flood must land eventually"
    );
    assert_eq!(
        report.response.result.get("success").and_then(Json::as_bool),
        Some(expect),
        "retried verdict must match the oracle"
    );
    handle.stop();
    handle.wait();
}

/// Shutdown is deliberately excluded from the safe-to-retry set; every
/// other operation either is read-only or keys a deterministic,
/// fingerprint-addressed computation. (The daemon relies on this for
/// the claim that shed responses are always safe to re-send.)
#[test]
fn only_shutdown_is_unsafe_to_retry() {
    for op in [
        Op::OpenSession,
        Op::CheckConsistency,
        Op::Reconcile,
        Op::ExtractEnvelope,
        Op::CheckConformance,
        Op::NegotiateRound,
        Op::Stats,
        Op::Trace,
    ] {
        assert!(op.safe_to_retry(), "{op:?} must be retryable");
    }
    assert!(!Op::Shutdown.safe_to_retry());
}
