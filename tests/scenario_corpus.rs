//! The committed corpus labels are ground truth: every `smoke` and
//! `paper` tier entry's expected verdict must match what the solver
//! actually returns, end to end (ground → encode → search). The
//! `large` tier is validated the same way by the harness S1 lane (it
//! is too slow for the default test budget); the `hard` tier's labels
//! are checked at construction scale in `crates/scenario`'s own tests.

use muppet_scenario::corpus::{self, Kind, Tier};

#[test]
fn smoke_tier_labels_match_solver() {
    for entry in corpus::entries(Tier::Smoke) {
        assert_eq!(
            corpus::solver_verdict(entry),
            entry.expected,
            "{}: committed label diverges from the solver",
            entry.name
        );
    }
}

#[test]
fn paper_tier_labels_match_solver() {
    for entry in corpus::entries(Tier::Paper) {
        // php-9-8 takes seconds in release but minutes under the
        // unoptimized test profile; its verdict is covered by the same
        // fixture's test in `crates/scenario` at smaller scale and by
        // the S1 lane at full scale.
        if matches!(entry.kind, Kind::PhpRelational { .. }) {
            continue;
        }
        assert_eq!(
            corpus::solver_verdict(entry),
            entry.expected,
            "{}: committed label diverges from the solver",
            entry.name
        );
    }
}

#[test]
fn mesh_entries_expose_consistent_metadata() {
    for entry in corpus::CORPUS {
        if let Kind::Mesh(params) = entry.kind {
            let s = muppet_scenario::generate(params);
            // The committed label, the generator's conflict analysis
            // and the provenance stamp must all agree.
            assert_eq!(s.expected_label(), entry.expected, "{}", entry.name);
            let stamp = s.provenance_json(entry.name);
            assert!(
                stamp.contains(&format!("\"expected\":\"{}\"", entry.expected.label())),
                "{}: provenance carries the wrong label",
                entry.name
            );
            assert_eq!(s.mesh.services().len(), params.services, "{}", entry.name);
        }
    }
}

#[test]
fn cnf_entries_build_and_export() {
    for entry in corpus::CORPUS {
        if let Some(inst) = corpus::cnf_instance(entry.kind) {
            assert_eq!(inst.expected, entry.expected, "{}", entry.name);
            let dimacs = inst.dimacs();
            let parsed = muppet_sat::parse_dimacs(&dimacs).expect("own DIMACS parses");
            assert_eq!(parsed.num_vars, inst.num_vars, "{}", entry.name);
            assert_eq!(parsed.clauses.len(), inst.clauses.len(), "{}", entry.name);
        }
    }
}
