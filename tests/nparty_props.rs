//! Property tests for N-party round-robin negotiation (Fig. 9
//! generalized): the *verdict* of a negotiation where every party is
//! willing to drop blamed soft goals is a function of the goals alone,
//! not of the order parties registered (and therefore take turns) in.
//!
//! The model is deliberately tiny so the expected verdict is computable
//! by hand: each of N ∈ {2..5} parties owns one unary relation over a
//! 3-atom sort, and every goal is a single literal `±en_i(a)`. A set of
//! literal goals is satisfiable iff it contains no complementary pair,
//! so:
//!
//! * round-robin with `DropBlamedSoftGoals` everywhere succeeds iff the
//!   *hard* literals alone are consistent (soft conflicts negotiate
//!   away), under any registration order;
//! * hub-and-spoke (the hub never revises) succeeds iff the hard
//!   literals plus *all* of the hub's literals are consistent, and
//!   agrees with round-robin where the hub runs [`Stubborn`].

use std::collections::{BTreeMap, BTreeSet};

use muppet::negotiate::{
    run_negotiation, run_negotiation_scheduled, DropBlamedSoftGoals, Negotiator, Schedule,
    Stubborn,
};
use muppet::{NamedGoal, Party, Session};
use muppet_logic::{Domain, Formula, Instance, PartyId, Term, Universe, Vocabulary};
use proptest::prelude::*;

const ATOMS: usize = 3;
const MAX_ROUNDS: usize = 120;

/// One literal goal: `hard`, sign, target relation (= owning party
/// slot), target atom.
#[derive(Clone, Copy, Debug)]
struct Lit {
    hard: bool,
    positive: bool,
    rel: usize,
    atom: usize,
}

/// A generated N-party negotiation problem.
#[derive(Clone, Debug)]
struct Problem {
    n: usize,
    /// `goals[i]` = party i's literal goals.
    goals: Vec<Vec<Lit>>,
    /// Seed for the extra registration-order shuffle.
    perm_seed: u64,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (2..=5usize).prop_flat_map(|n| {
        let lit = (any::<bool>(), any::<bool>(), 0..n, 0..ATOMS).prop_map(
            |(hard, positive, rel, atom)| Lit {
                hard,
                positive,
                rel,
                atom,
            },
        );
        (
            proptest::collection::vec(proptest::collection::vec(lit, 0..=3), n..=n),
            0..u64::MAX,
        )
            .prop_map(move |(goals, perm_seed)| Problem {
                n,
                goals,
                perm_seed,
            })
    })
}

/// Deterministic Fisher–Yates from a seed (the vendored proptest has no
/// sample-from-slice strategy, and the permutation must be reportable).
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Is a set of literal goals satisfiable? (Pure literals over disjoint
/// booleans: iff no complementary pair.)
fn literals_consistent<'a>(lits: impl Iterator<Item = &'a Lit>) -> bool {
    let mut seen: BTreeSet<(usize, usize, bool)> = BTreeSet::new();
    for l in lits {
        if seen.contains(&(l.rel, l.atom, !l.positive)) {
            return false;
        }
        seen.insert((l.rel, l.atom, l.positive));
    }
    true
}

struct World {
    universe: Universe,
    vocab: Vocabulary,
    rels: Vec<muppet_logic::RelId>,
    atoms: Vec<muppet_logic::AtomId>,
}

fn world(n: usize) -> World {
    let mut universe = Universe::new();
    let s = universe.add_sort("F");
    let atoms: Vec<_> = (0..ATOMS)
        .map(|i| universe.add_atom(s, format!("a{i}")))
        .collect();
    let mut vocab = Vocabulary::new();
    let rels: Vec<_> = (0..n)
        .map(|i| {
            vocab.add_simple_rel(format!("en_{i}"), vec![s], Domain::Party(PartyId(i as u32)))
        })
        .collect();
    World {
        universe,
        vocab,
        rels,
        atoms,
    }
}

fn goal_formula(w: &World, l: &Lit) -> Formula {
    let p = Formula::pred(w.rels[l.rel], [Term::Const(w.atoms[l.atom])]);
    if l.positive {
        p
    } else {
        Formula::not(p)
    }
}

/// Build the session with parties registered in `order` and run the
/// negotiation; returns (success, per-party configs) and, on success,
/// asserts the combined delivered configuration satisfies every
/// surviving goal.
fn negotiate(
    p: &Problem,
    w: &World,
    order: &[usize],
    schedule: Option<Schedule>,
    stubborn: Option<PartyId>,
) -> bool {
    let mut s = Session::new(&w.universe, w.vocab.clone(), Instance::new());
    for &i in order {
        let mut goals = Vec::new();
        for (j, l) in p.goals[i].iter().enumerate() {
            // Names are fixed-width and globally unique so the blame
            // cores `DropBlamedSoftGoals` substring-matches on cannot
            // alias one goal to another.
            let name = format!("p{i}g{j}");
            let f = goal_formula(w, l);
            goals.push(if l.hard {
                NamedGoal::hard(name, f)
            } else {
                NamedGoal::soft(name, f)
            });
        }
        s.add_party(Party::new(PartyId(i as u32), format!("P{i}")).with_goals(goals));
    }
    let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    for &i in order {
        let boxed: Box<dyn Negotiator> = if stubborn == Some(PartyId(i as u32)) {
            Box::new(Stubborn)
        } else {
            Box::new(DropBlamedSoftGoals)
        };
        negs.insert(PartyId(i as u32), boxed);
    }
    let report = match schedule {
        Some(sched) => run_negotiation_scheduled(&mut s, &mut negs, MAX_ROUNDS, sched)
            .expect("negotiation runs within budget"),
        None => run_negotiation(&mut s, &mut negs, MAX_ROUNDS).expect("negotiation runs"),
    };
    if report.success {
        let mut combined = Instance::new();
        for c in report.configs.values() {
            combined = combined.union(c);
        }
        for (name, holds) in s.check_goals(&combined) {
            assert!(holds, "delivered configs violate surviving goal {name}");
        }
    }
    report.success
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The negotiation verdict is invariant under party registration
    /// (= turn) order, and equals hard-literal consistency.
    #[test]
    fn round_robin_verdict_is_order_invariant(p in problem_strategy()) {
        let w = world(p.n);
        let expected = literals_consistent(
            p.goals.iter().flatten().filter(|l| l.hard),
        );

        let identity: Vec<usize> = (0..p.n).collect();
        let reversed: Vec<usize> = (0..p.n).rev().collect();
        let shuffled = shuffled(p.n, p.perm_seed);
        for order in [&identity, &reversed, &shuffled] {
            let got = negotiate(&p, &w, order, None, None);
            prop_assert_eq!(
                got, expected,
                "order {:?} of {:?}: verdict {} but hard literals {} consistent",
                order, p, got, if expected { "are" } else { "are not" }
            );
        }
    }

    /// Hub-and-spoke is the degenerate schedule where the hub never
    /// revises: it succeeds iff hard literals ∪ the hub's full goal set
    /// is consistent, and agrees with round-robin under a Stubborn hub.
    #[test]
    fn hub_and_spoke_matches_stubborn_hub_round_robin(p in problem_strategy()) {
        let w = world(p.n);
        let hub = PartyId(0);
        let expected = literals_consistent(
            p.goals
                .iter()
                .enumerate()
                .flat_map(|(i, gs)| gs.iter().filter(move |l| l.hard || i == 0)),
        );
        let order: Vec<usize> = (0..p.n).collect();
        let spoke = negotiate(&p, &w, &order, Some(Schedule::HubAndSpoke(hub)), Some(hub));
        prop_assert_eq!(
            spoke, expected,
            "hub-and-spoke on {:?}: verdict {} but hub-augmented hard literals {} consistent",
            p, spoke, if expected { "are" } else { "are not" }
        );
        let twin = negotiate(&p, &w, &order, Some(Schedule::RoundRobin), Some(hub));
        prop_assert_eq!(
            spoke, twin,
            "hub-and-spoke and stubborn-hub round-robin disagree on {:?}", p
        );
    }
}
