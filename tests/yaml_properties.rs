//! Property-based round-trip testing of the YAML subset.

use muppet_yaml::{emit, parse, Yaml};
use proptest::prelude::*;

/// Strings that exercise quoting edge cases alongside plain ones.
fn string_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9-]{0,12}",
        Just(String::new()),
        Just("23".to_string()),
        Just("true".to_string()),
        Just("null".to_string()),
        Just("a: b".to_string()),
        Just("- item".to_string()),
        Just("#comment".to_string()),
        Just("ends:".to_string()),
        Just("with \"quotes\"".to_string()),
        Just("back\\slash".to_string()),
        Just("tab\tand\nnewline".to_string()),
        Just(" leading space".to_string()),
        Just("trailing space ".to_string()),
        Just("{flow}".to_string()),
        Just("[flow]".to_string()),
        Just("'single'".to_string()),
    ]
}

fn yaml_strategy() -> impl Strategy<Value = Yaml> {
    let leaf = prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        any::<i64>().prop_map(Yaml::Int),
        string_strategy().prop_map(Yaml::Str),
    ];
    leaf.prop_recursive(3, 40, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Yaml::Seq),
            prop::collection::vec(("[a-z][a-z0-9_-]{0,8}", inner), 0..4).prop_map(|pairs| {
                // Keys must be unique (the parser rejects duplicates).
                let mut seen = std::collections::BTreeSet::new();
                Yaml::Map(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// emit → parse is the identity on arbitrary values.
    #[test]
    fn emit_parse_roundtrip(y in yaml_strategy()) {
        let text = emit(&y);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}\n---\n{y:?}"));
        prop_assert_eq!(back, y, "emitted:\n{}", text);
    }

    /// Parsing never panics on small arbitrary inputs (it may error).
    #[test]
    fn parse_never_panics(input in "[ -~\n\t]{0,200}") {
        let _ = parse(&input);
        let _ = muppet_yaml::parse_documents(&input);
    }
}
