//! Differential testing of the unified incremental engine: the warm
//! path (one `PreparedStore` held for the workflow lifetime, counter-
//! offers as group swaps + assumption flips) must be **byte-identical**
//! to the one-shot cold path on every semantic output — verdicts,
//! models, cores, counter-offer sequences — across randomized
//! multi-round negotiations, with and without portfolio threads.
//!
//! Stats (conflicts, encode counters, portfolio summaries) are
//! deliberately *excluded*: the two paths do different amounts of work
//! by design; what they may never do is give different answers.

use std::collections::BTreeMap;

use muppet::conformance::{run_conformance_cold, run_conformance_with_store};
use muppet::negotiate::{
    run_negotiation_cold, run_negotiation_with_store, DropBlamedSoftGoals, Negotiator, Stubborn,
};
use muppet::{NamedGoal, Party, Session};
use muppet_logic::{AtomId, Domain, Formula, Instance, PartyId, RelId, Term, Universe, Vocabulary};
use muppet_solver::PreparedStore;
use proptest::prelude::*;

const N_ATOMS: usize = 3;

/// One random literal: `(rel index, atom index, negated)`.
type Lit = (u8, u8, bool);

/// One random goal: a disjunction of literals, hard or soft.
#[derive(Clone, Debug)]
struct G {
    hard: bool,
    clause: Vec<Lit>,
}

/// A full random scenario: goals per party, who holds firm, the
/// tenant's preferred configuration, and the portfolio width.
#[derive(Clone, Debug)]
struct Scenario {
    a_goals: Vec<G>,
    b_goals: Vec<G>,
    stubborn_a: bool,
    preferred_atoms: Vec<bool>,
    threads: usize,
    max_rounds: usize,
}

fn lit_strategy() -> impl Strategy<Value = Lit> {
    (0..2u8, 0..N_ATOMS as u8, any::<bool>())
}

fn goal_strategy() -> impl Strategy<Value = G> {
    (any::<bool>(), prop::collection::vec(lit_strategy(), 1..=3))
        .prop_map(|(hard, clause)| G { hard, clause })
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(goal_strategy(), 0..=3),
        prop::collection::vec(goal_strategy(), 1..=3),
        any::<bool>(),
        prop::collection::vec(any::<bool>(), N_ATOMS),
        prop_oneof![Just(1usize), Just(4usize)],
        2..=4usize,
    )
        .prop_map(
            |(a_goals, b_goals, stubborn_a, preferred_atoms, threads, max_rounds)| Scenario {
                a_goals,
                b_goals,
                stubborn_a,
                preferred_atoms,
                threads,
                max_rounds,
            },
        )
}

/// The shared two-party fixture: sort F with three atoms, each party
/// owning one unary relation over it. Small enough that every query
/// stays far below the engine's canonicalization cap, so warm, cold
/// and portfolio models are all the canonical lex-min witness.
struct Fixture {
    universe: Universe,
    vocab: Vocabulary,
    parties: [PartyId; 2],
    rels: [RelId; 2],
    atoms: Vec<AtomId>,
}

fn fixture() -> Fixture {
    let mut universe = Universe::new();
    let s = universe.add_sort("F");
    let atoms = vec![
        universe.add_atom(s, "x"),
        universe.add_atom(s, "y"),
        universe.add_atom(s, "z"),
    ];
    let mut vocab = Vocabulary::new();
    let parties = [PartyId(0), PartyId(1)];
    let rels = [
        vocab.add_simple_rel("en_a", vec![s], Domain::Party(parties[0])),
        vocab.add_simple_rel("en_b", vec![s], Domain::Party(parties[1])),
    ];
    Fixture {
        universe,
        vocab,
        parties,
        rels,
        atoms,
    }
}

fn goal_formula(f: &Fixture, g: &G) -> Formula {
    Formula::or(g.clause.iter().map(|&(r, a, neg)| {
        let p = Formula::pred(
            f.rels[r as usize % 2],
            [Term::Const(f.atoms[a as usize % N_ATOMS])],
        );
        if neg {
            Formula::not(p)
        } else {
            p
        }
    }))
}

/// Build a fresh session for the scenario. Called once per path under
/// comparison so warm and cold runs start from identical state.
fn build_session<'a>(f: &'a Fixture, sc: &Scenario) -> Session<'a> {
    let mut s = Session::new(&f.universe, f.vocab.clone(), Instance::new());
    let named = |prefix: &str, i: usize, g: &G| {
        let formula = goal_formula(f, g);
        if g.hard {
            NamedGoal::hard(format!("{prefix}{i}"), formula)
        } else {
            NamedGoal::soft(format!("{prefix}{i}"), formula)
        }
    };
    s.add_party(
        Party::new(f.parties[0], "A")
            .with_goals(sc.a_goals.iter().enumerate().map(|(i, g)| named("a", i, g))),
    );
    s.add_party(
        Party::new(f.parties[1], "B")
            .with_goals(sc.b_goals.iter().enumerate().map(|(i, g)| named("b", i, g))),
    );
    s.set_threads(sc.threads);
    s
}

fn negotiators(f: &Fixture, sc: &Scenario) -> BTreeMap<PartyId, Box<dyn Negotiator>> {
    let mut n: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    if sc.stubborn_a {
        n.insert(f.parties[0], Box::new(Stubborn));
        n.insert(f.parties[1], Box::new(DropBlamedSoftGoals));
    } else {
        n.insert(f.parties[0], Box::new(DropBlamedSoftGoals));
        n.insert(f.parties[1], Box::new(Stubborn));
    }
    n
}

fn preferred(f: &Fixture, sc: &Scenario) -> Instance {
    let mut inst = Instance::new();
    let atoms: Vec<AtomId> = f
        .atoms
        .iter()
        .zip(&sc.preferred_atoms)
        .filter(|(_, on)| **on)
        .map(|(a, _)| *a)
        .collect();
    if !atoms.is_empty() {
        inst.insert(f.rels[1], atoms);
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Warm multi-round negotiation == cold, on every semantic field.
    /// The trace carries the counter-offer sequence (who revised, what
    /// was blamed, each round's verdict), so string equality here is
    /// the "counter-offer sequence byte-identical" requirement.
    #[test]
    fn negotiation_warm_equals_cold(sc in scenario_strategy()) {
        let f = fixture();

        let mut warm_session = build_session(&f, &sc);
        let mut store = PreparedStore::new();
        let warm = run_negotiation_with_store(
            &mut warm_session,
            &mut negotiators(&f, &sc),
            sc.max_rounds,
            &mut store,
        ).expect("warm negotiation");

        let mut cold_session = build_session(&f, &sc);
        let cold = run_negotiation_cold(
            &mut cold_session,
            &mut negotiators(&f, &sc),
            sc.max_rounds,
        ).expect("cold negotiation");

        prop_assert_eq!(warm.success, cold.success);
        prop_assert_eq!(warm.rounds, cold.rounds);
        prop_assert_eq!(&warm.configs, &cold.configs);
        prop_assert_eq!(&warm.trace, &cold.trace);
    }

    /// Warm conformance workflow == cold: provider verdict + witness,
    /// envelope, tenant verdict + config, blame, and the minimal-edit
    /// counter-offer distance.
    #[test]
    fn conformance_warm_equals_cold(sc in scenario_strategy()) {
        let f = fixture();
        let session = build_session(&f, &sc);
        let pref = preferred(&f, &sc);

        let mut store = PreparedStore::new();
        let warm = run_conformance_with_store(
            &session, f.parties[0], f.parties[1], Some(&pref), &mut store,
        ).expect("warm conformance");
        let cold = run_conformance_cold(
            &session, f.parties[0], f.parties[1], Some(&pref),
        ).expect("cold conformance");

        prop_assert_eq!(warm.provider_consistent, cold.provider_consistent);
        prop_assert_eq!(&warm.provider_config, &cold.provider_config);
        // Envelope carries no Eq impl; its Debug form is deterministic
        // and covers predicates, obligation tags and self-satisfied
        // goals — byte-compare that.
        prop_assert_eq!(
            format!("{:?}", warm.envelope),
            format!("{:?}", cold.envelope)
        );
        prop_assert_eq!(warm.success, cold.success);
        prop_assert_eq!(&warm.tenant_config, &cold.tenant_config);
        prop_assert_eq!(&warm.blame, &cold.blame);
        prop_assert_eq!(warm.counter_offer_distance, cold.counter_offer_distance);
        prop_assert_eq!(&warm.log, &cold.log);
    }

    /// A warm store *reused across* consecutive negotiations (the
    /// daemon's shape: one `PreparedStore` per warm session, fed every
    /// request) still matches a cold run of each — engine state from a
    /// previous workflow may speed the next one up but never leak into
    /// its answers.
    #[test]
    fn reused_store_across_negotiations_stays_cold_identical(
        sc1 in scenario_strategy(),
        sc2 in scenario_strategy(),
    ) {
        let f = fixture();
        let mut store = PreparedStore::new();
        for sc in [&sc1, &sc2] {
            let mut warm_session = build_session(&f, sc);
            let warm = run_negotiation_with_store(
                &mut warm_session,
                &mut negotiators(&f, sc),
                sc.max_rounds,
                &mut store,
            ).expect("warm negotiation");
            let mut cold_session = build_session(&f, sc);
            let cold = run_negotiation_cold(
                &mut cold_session,
                &mut negotiators(&f, sc),
                sc.max_rounds,
            ).expect("cold negotiation");
            prop_assert_eq!(warm.success, cold.success);
            prop_assert_eq!(warm.rounds, cold.rounds);
            prop_assert_eq!(&warm.configs, &cold.configs);
            prop_assert_eq!(&warm.trace, &cold.trace);
        }
    }
}
