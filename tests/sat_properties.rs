//! Property-based testing of the CDCL solver against a brute-force
//! oracle, plus core-quality properties.
#![allow(clippy::needless_range_loop)] // PHP hole loops read better as written

use muppet_sat::{mus, Budget, CancelToken, Lit, RetryPolicy, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random CNF instance: clause lists over `n` variables encoded as
/// signed nonzero integers (DIMACS convention).
fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<i32>>> {
    let lit = (1..=max_vars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    prop::collection::vec(clause, 0..=max_clauses)
}

fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    'outer: for mask in 0..(1u32 << num_vars) {
        for clause in clauses {
            let ok = clause.iter().any(|&l| {
                let v = l.unsigned_abs() as usize - 1;
                let val = mask & (1 << v) != 0;
                (l > 0) == val
            });
            if !ok {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn load(num_vars: usize, clauses: &[Vec<i32>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars = s.new_vars(num_vars);
    for c in clauses {
        s.add_clause(c.iter().map(|&l| {
            let v = vars[l.unsigned_abs() as usize - 1];
            Lit::new(v, l > 0)
        }));
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL verdict equals the brute-force oracle, and SAT models
    /// actually satisfy every clause.
    #[test]
    fn solver_agrees_with_brute_force(clauses in cnf_strategy(10, 40)) {
        let num_vars = 10;
        let (mut s, vars) = load(num_vars, &clauses);
        let expected = brute_force_sat(num_vars, &clauses);
        match s.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT, oracle says UNSAT");
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let val = model.value(vars[l.unsigned_abs() as usize - 1]);
                        (l > 0) == val
                    });
                    prop_assert!(ok, "model violates clause {c:?}");
                }
            }
            SolveResult::Unsat(core) => {
                prop_assert!(!expected, "solver said UNSAT, oracle says SAT");
                prop_assert!(core.is_empty(), "no assumptions were used");
            }
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// Solving under assumptions matches brute force over the clause set
    /// extended with the assumption units, and reported cores are sound
    /// (re-solving under just the core stays UNSAT).
    #[test]
    fn assumption_solving_and_cores_are_sound(
        clauses in cnf_strategy(8, 24),
        assumption_bits in prop::collection::vec(any::<Option<bool>>(), 8),
    ) {
        let num_vars = 8;
        let (mut s, vars) = load(num_vars, &clauses);
        let assumptions: Vec<Lit> = assumption_bits
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|pos| Lit::new(vars[i], pos)))
            .collect();
        let mut extended = clauses.clone();
        for a in &assumptions {
            let idx = a.var().index() as i32 + 1;
            extended.push(vec![if a.is_positive() { idx } else { -idx }]);
        }
        let expected = brute_force_sat(num_vars, &extended);
        match s.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(model) => {
                prop_assert!(expected);
                for a in &assumptions {
                    prop_assert!(model.lit_value(*a), "assumption {a:?} not honored");
                }
            }
            SolveResult::Unsat(core) => {
                prop_assert!(!expected);
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core lit {l:?} not an assumption");
                }
                // Soundness: the core alone is still UNSAT.
                prop_assert!(s.solve_with_assumptions(&core).is_unsat());
            }
            SolveResult::Unknown => prop_assert!(false),
        }
    }

    /// MUS extraction produces a minimal core whenever the assumptions
    /// are jointly UNSAT.
    #[test]
    fn shrunk_cores_are_minimal(clauses in cnf_strategy(6, 18)) {
        let num_vars = 6;
        let (mut s, vars) = load(num_vars, &clauses);
        // Assume every variable true: often UNSAT against random clauses.
        let assumptions: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
        match mus::shrink_core(&mut s, &assumptions) {
            mus::ShrinkResult::Minimal(core) => {
                prop_assert!(mus::is_minimal_core(&mut s, &core), "core {core:?} not minimal");
            }
            mus::ShrinkResult::Sat => {
                // Satisfiable: fine, nothing to check.
                prop_assert!(s.solve_with_assumptions(&assumptions).is_sat());
            }
            mus::ShrinkResult::Exhausted { .. } => {
                prop_assert!(false, "unbudgeted shrink must not exhaust");
            }
        }
    }

    /// Incremental use: adding the blocking clause of a model yields a
    /// different model (or UNSAT), never the same one.
    #[test]
    fn blocking_clauses_change_models(clauses in cnf_strategy(8, 20)) {
        let num_vars = 8;
        let (mut s, vars) = load(num_vars, &clauses);
        if let SolveResult::Sat(m1) = s.solve() {
            let blocking: Vec<Lit> = vars
                .iter()
                .map(|&v| Lit::new(v, !m1.value(v)))
                .collect();
            s.add_clause(blocking);
            if let SolveResult::Sat(m2) = s.solve() {
                prop_assert!(vars.iter().any(|&v| m1.value(v) != m2.value(v)));
            }
        }
    }

    /// A budgeted solve may give up, but it must never give a *wrong*
    /// verdict: any definite Sat/Unsat under a conflict cap agrees with
    /// the brute-force oracle.
    #[test]
    fn budgeted_solve_never_wrong(
        clauses in cnf_strategy(8, 30),
        cap in 0u64..8,
    ) {
        let num_vars = 8;
        let (mut s, vars) = load(num_vars, &clauses);
        s.set_budget(Budget::unlimited().with_conflict_cap(cap));
        let expected = brute_force_sat(num_vars, &clauses);
        match s.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "budgeted solver said SAT, oracle says UNSAT");
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let val = model.value(vars[l.unsigned_abs() as usize - 1]);
                        (l > 0) == val
                    });
                    prop_assert!(ok, "model violates clause {c:?}");
                }
            }
            SolveResult::Unsat(_) => {
                prop_assert!(!expected, "budgeted solver said UNSAT, oracle says SAT");
            }
            SolveResult::Unknown => {} // giving up is always allowed
        }
    }

    /// A solve under a pre-triggered cancellation token never reports a
    /// wrong verdict either: it either aborts with Unknown or (for
    /// instances decided before the first poll) agrees with the oracle.
    #[test]
    fn cancelled_solve_never_wrong(clauses in cnf_strategy(8, 30)) {
        let num_vars = 8;
        let (mut s, _) = load(num_vars, &clauses);
        let token = CancelToken::new();
        token.cancel();
        s.set_budget(Budget::unlimited().with_cancel(token));
        let expected = brute_force_sat(num_vars, &clauses);
        match s.solve() {
            SolveResult::Sat(_) => prop_assert!(expected),
            SolveResult::Unsat(_) => prop_assert!(!expected),
            SolveResult::Unknown => {}
        }
    }

    /// Luby-escalated re-solving (the `RetryPolicy` schedule) reaches a
    /// definite verdict that agrees with an unbudgeted solve.
    #[test]
    fn escalated_resolve_agrees_with_unbudgeted(clauses in cnf_strategy(8, 30)) {
        let num_vars = 8;
        let expected = brute_force_sat(num_vars, &clauses);
        let policy = RetryPolicy::new(1, 16);
        let mut verdict = None;
        for attempt in 1..=policy.max_attempts {
            let (mut s, _) = load(num_vars, &clauses);
            let mut budget = Budget::unlimited();
            budget.set_conflict_cap(policy.conflict_cap(attempt));
            s.set_budget(budget);
            match s.solve() {
                SolveResult::Sat(_) => { verdict = Some(true); break; }
                SolveResult::Unsat(_) => { verdict = Some(false); break; }
                SolveResult::Unknown => {}
            }
        }
        // If every capped attempt gave up, the uncapped final solve (the
        // degradation path's last resort) must settle it.
        let verdict = match verdict {
            Some(v) => v,
            None => {
                let (mut s, _) = load(num_vars, &clauses);
                match s.solve() {
                    SolveResult::Sat(_) => true,
                    SolveResult::Unsat(_) => false,
                    SolveResult::Unknown => {
                        prop_assert!(false, "unbudgeted solve returned Unknown");
                        unreachable!()
                    }
                }
            }
        };
        prop_assert_eq!(verdict, expected, "escalated verdict disagrees with oracle");
    }
}

/// Deterministic regression: a hard-ish structured instance (mutilated
/// chessboard flavored) solves correctly with learning and restarts
/// engaged.
#[test]
fn php_8_7_unsat_with_learning() {
    let mut s = Solver::new();
    let n = 8;
    let m = 7;
    let p: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(m)).collect();
    for row in &p {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)));
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    assert!(s.solve().is_unsat());
    assert!(s.stats.conflicts > 10, "learning should be exercised");
}
