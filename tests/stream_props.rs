//! Differential testing of streaming reconfiguration: a warm
//! [`StreamSession`] replaying a random edit stream must produce
//! **byte-identical** verdict lines to cold-solving every intermediate
//! snapshot from scratch, at 1 and 4 portfolio threads.
//!
//! Bases are kept small enough (or bounded, which collapses the free
//! tuple count) that every solve stays under the engine's
//! canonicalization cap — warm, cold and portfolio models are all the
//! canonical lex-min witness, so string equality is the right oracle.

use muppet::ReconcileMode;
use muppet_scenario::stream::{generate_stream, StreamParams, StreamProfile};
use muppet_scenario::{generate, ScenarioParams};
use muppet_stream::{verdict_line, StreamSession, StreamSpec};
use proptest::prelude::*;

/// A random stream workload: base shape, edit profile, length, seed,
/// portfolio width.
#[derive(Clone, Debug)]
struct Workload {
    params: StreamParams,
    threads: usize,
}

/// Base shapes that keep every intermediate snapshot canonicalizable:
/// unbounded meshes must stay tiny (free tuple vars grow quadratically
/// with services and cross the solver's canonicalization cap near 6
/// services), while bounded meshes carry tight offers and stay far
/// under the cap at any size this test reaches.
fn base_strategy() -> impl Strategy<Value = ScenarioParams> {
    (
        prop_oneof![
            (Just(false), 3..=4usize),
            (Just(true), 4..=10usize),
        ],
        2..=5usize, // istio goal rows
        1..=2usize, // k8s ban rows
        0..10_000u64,
    )
        .prop_map(|((bounded, services), istio_goals, k8s_goals, seed)| ScenarioParams {
            services,
            // Every service draws the whole pool, so every pool port a
            // churn delta can target is always in the port universe.
            ports_per_service: 4,
            extra_ports: 2,
            istio_goals,
            k8s_goals,
            port_pool: 4,
            bounded,
            seed,
            ..ScenarioParams::default()
        })
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (base_strategy(), 0..4u8, 6..=14usize, 0..10_000u64, prop_oneof![
        Just(1usize),
        Just(4usize)
    ])
        .prop_map(|(base, profile, deltas, seed, threads)| {
            // Growth and Mixed edits add services; on an unbounded base
            // that walks the free tuple count over the canonicalization
            // cap, so unbounded workloads stick to fixed-mesh churn.
            let profile = match profile {
                0 if base.bounded => StreamProfile::Growth,
                1 if base.bounded => StreamProfile::Mixed,
                2 => StreamProfile::GoalChurn,
                _ => StreamProfile::PolicyChurn,
            };
            Workload {
                params: StreamParams {
                    base,
                    profile,
                    deltas,
                    target_services: 0,
                    seed,
                },
                threads,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Warm multi-shot replay == cold re-solve of every intermediate
    /// snapshot, on the canonical verdict line (model or core), at the
    /// sampled portfolio width.
    #[test]
    fn warm_stream_equals_cold_snapshots(w in workload_strategy()) {
        let stream = generate_stream(w.params);

        let (mut warm, initial) =
            StreamSession::with_threads(StreamSpec::from(&stream.base), w.threads)
                .expect("initial state solves");

        let mut cold = generate(w.params.base);
        let cold_solve = |sc: &muppet_scenario::Scenario| -> String {
            let mut s = sc.session(false);
            s.set_threads(w.threads);
            let rec = s
                .reconcile(ReconcileMode::HardBounds)
                .expect("cold snapshot reconciles");
            prop_assert!(rec.exhausted.is_none(), "cold oracle exhausted");
            verdict_line(&rec)
        };
        prop_assert_eq!(&initial.verdict, &cold_solve(&cold));

        let mut prev = initial.verdict.clone();
        for d in &stream.deltas {
            let stats = warm.push(d).expect("generated delta replays warm");
            d.apply(&mut cold).expect("generated delta replays cold");
            let oracle = cold_solve(&cold);
            prop_assert_eq!(&stats.verdict, &oracle, "divergence at seq {}", stats.seq);
            prop_assert_eq!(stats.flipped, stats.verdict != prev, "flip flag at seq {}", stats.seq);
            prev = stats.verdict;
        }
        prop_assert_eq!(warm.solves(), stream.deltas.len() as u64 + 1);
    }

    /// Portfolio width never changes answers: the same stream replayed
    /// at 1 and 4 threads yields byte-identical verdict sequences.
    #[test]
    fn thread_count_is_answer_invariant(w in workload_strategy()) {
        let stream = generate_stream(w.params);
        let replay = |threads: usize| -> Vec<String> {
            let (mut s, initial) =
                StreamSession::with_threads(StreamSpec::from(&stream.base), threads)
                    .expect("initial state solves");
            let mut verdicts = vec![initial.verdict];
            for d in &stream.deltas {
                verdicts.push(s.push(d).expect("delta replays").verdict);
            }
            verdicts
        };
        prop_assert_eq!(replay(1), replay(4));
    }
}
