//! N=2 differential gate for the N-party generalization.
//!
//! The committed golden file (`tests/golden/nparty_paper.txt`) was
//! captured from the two-party engine immediately **before** the
//! ConfigDomain / N-party refactor. The generalized engine must
//! reproduce those verdicts, counter-offers, envelopes and negotiation
//! traces byte-identically on the paper fixtures, at 1 and 4 portfolio
//! threads (lex-min canonical models and ordered-deletion cores make
//! both thread counts comparable).
//!
//! Re-bless — only for a deliberate, reviewed behavior change — with:
//! `BLESS_NPARTY=1 cargo test --test nparty_differential`.

use muppet_daemon::json::Json;
use muppet_daemon::{Engine, EngineConfig, Op, Request, SessionSpec};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/nparty_paper.txt");

/// Re-render only the deterministic fields of a result, in a fixed key
/// order (timings and solver statistics vary run to run; verdicts,
/// cores, canonical models, envelopes and traces must not).
fn pick(result: &Json, keys: &[&str]) -> String {
    let filtered: Vec<(String, Json)> = keys
        .iter()
        .filter_map(|&k| result.get(k).map(|v| (k.to_string(), v.clone())))
        .collect();
    Json::Obj(filtered).to_line()
}

fn dump(threads: u64) -> String {
    let eng = Engine::new(EngineConfig::default());
    let fixtures = [
        ("strict", SessionSpec::paper_strict()),
        ("relaxed", SessionSpec::paper_relaxed()),
    ];
    let mut out = String::new();
    for (label, spec) in fixtures {
        let mut run = |tag: &str, req: Request, keys: &[&str]| {
            let resp = eng.handle(&req, None);
            let line = match &resp.error {
                Some(e) => format!("error: {e}"),
                None => pick(&resp.result, keys),
            };
            out.push_str(&format!("{label}/{tag}: {line}\n"));
        };
        let base = |op: Op| {
            let mut r = Request::new(op).with_spec(spec.clone());
            r.threads = Some(threads);
            r
        };
        for party in ["k8s", "istio"] {
            let mut req = base(Op::CheckConsistency);
            req.party = Some(party.into());
            run(
                &format!("consistency[{party}]"),
                req,
                &["party", "ok", "witness", "core"],
            );
        }
        for mode in ["hard", "blameable"] {
            let mut req = base(Op::Reconcile);
            req.mode = Some(mode.into());
            run(
                &format!("reconcile[{mode}]"),
                req,
                &["success", "configs", "core"],
            );
        }
        for to in ["istio", "k8s"] {
            let mut req = base(Op::ExtractEnvelope);
            req.to = Some(to.into());
            run(
                &format!("envelope[to={to}]"),
                req,
                &[
                    "trivial",
                    "predicates",
                    "alloy",
                    "english",
                    "impossible",
                    "residual_violations",
                    "self_satisfied",
                    "leakage",
                ],
            );
        }
        run(
            "conformance",
            base(Op::CheckConformance),
            &[
                "provider_consistent",
                "success",
                "envelope_trivial",
                "tenant_config",
                "blame",
                "counter_offer_distance",
            ],
        );
        let mut req = base(Op::NegotiateRound);
        req.max_rounds = Some(8);
        run(
            "negotiate",
            req,
            &["success", "rounds", "configs", "trace"],
        );
    }
    out
}

#[test]
fn n2_matches_pre_refactor_golden_at_1_and_4_threads() {
    let cold = dump(1);
    if std::env::var("BLESS_NPARTY").is_ok() {
        std::fs::create_dir_all(
            std::path::Path::new(GOLDEN_PATH).parent().unwrap(),
        )
        .unwrap();
        std::fs::write(GOLDEN_PATH, &cold).unwrap();
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing golden; run with BLESS_NPARTY=1 to capture");
    assert_eq!(
        cold, golden,
        "1-thread verdicts/traces diverge from the pre-refactor engine"
    );
    let wide = dump(4);
    assert_eq!(
        wide, golden,
        "4-thread verdicts/traces diverge from the pre-refactor engine"
    );
}

/// A second engine instance (fresh registry + cache) must produce the
/// same bytes: nothing about the dump depends on process-local state.
#[test]
fn dump_is_reproducible_within_a_process() {
    assert_eq!(dump(1), dump(1));
}
