//! End-to-end pipeline tests spanning every crate, plus the paper-scale
//! latency gate (experiment E4's "modest scenarios … under 1 second").

use std::time::Duration;

use muppet::conformance::run_conformance;
use muppet::{baseline, ReconcileMode};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_bench::scenario::{generate, ScenarioParams};
use muppet_bench::timing::timed;
use muppet_logic::Instance;
use muppet_mesh::{evaluate_flow, Flow};

/// E1 + E2 + E5 in one sweep: the strict instance conflicts with a
/// 2-element core that the baseline cannot produce; the relaxed instance
/// synthesizes and survives dataplane re-verification through YAML.
#[test]
fn paper_walkthrough_end_to_end() {
    let mv = vocab();

    // E1: conflict with exact blame.
    let strict = session(&mv, IstioTable::Fig3);
    let rec = strict.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(!rec.success);
    assert_eq!(rec.core.len(), 2);

    // E5: baseline agrees on the verdict but is informationless.
    let b = baseline::monolithic_synthesis(&strict).unwrap();
    assert!(!b.success);

    // E2: relax, synthesize, decompile, re-parse, re-verify.
    let relaxed = session(&mv, IstioTable::Fig4);
    let rec = relaxed.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success);
    let k8s_cfg = &rec.configs[&mv.k8s_party];
    let istio_cfg = &rec.configs[&mv.istio_party];

    // Through the manifest layer and back.
    let mut yaml = String::new();
    for p in mv.decompile_k8s(k8s_cfg) {
        yaml.push_str("---\n");
        yaml.push_str(&muppet_mesh::manifest::emit_network_policy(&p));
    }
    for p in mv.decompile_istio(istio_cfg) {
        yaml.push_str("---\n");
        yaml.push_str(&muppet_mesh::manifest::emit_authorization_policy(&p));
    }
    let bundle = muppet_mesh::manifest::parse_manifests(&yaml).unwrap();
    let mesh = mv.decompile_services(istio_cfg);

    // Dataplane verification of the Fig. 1 intents (on whatever ports
    // the synthesizer chose) and of the global ban.
    for (src, dst) in [
        ("test-frontend", "test-backend"),
        ("test-backend", "test-frontend"),
        ("test-backend", "test-db"),
        ("test-db", "test-backend"),
    ] {
        let reachable = mesh.service(dst).unwrap().ports.iter().any(|&p| {
            evaluate_flow(
                &mesh,
                &bundle.k8s_policies,
                &bundle.istio_policies,
                &Flow::new(src, dst, 0, p),
            )
            .allowed
        });
        assert!(reachable, "{src} → {dst} must be reachable on some port");
    }
    for src in mesh.services() {
        for dst in mesh.services() {
            assert!(
                !evaluate_flow(
                    &mesh,
                    &bundle.k8s_policies,
                    &bundle.istio_policies,
                    &Flow::new(src.name.clone(), dst.name.clone(), 0, 23),
                )
                .allowed,
                "{} → {}:23 must be banned",
                src.name,
                dst.name
            );
        }
    }
}

/// E6: the conformance workflow over the paper instance — failure with
/// counter-offer for strict tenants, success for relaxed ones.
#[test]
fn conformance_workflow_episodes() {
    let mv = vocab();
    let strict = session(&mv, IstioTable::Fig3);
    let preferred = mv.structure_instance();
    let report = run_conformance(&strict, mv.k8s_party, mv.istio_party, Some(&preferred)).unwrap();
    assert!(report.provider_consistent);
    assert!(!report.success);
    assert_eq!(report.counter_offer_distance, Some(1));

    let relaxed = session(&mv, IstioTable::Fig4);
    let report = run_conformance(&relaxed, mv.k8s_party, mv.istio_party, None).unwrap();
    assert!(report.success);
    let combined = report
        .provider_config
        .clone()
        .unwrap()
        .union(report.tenant_config.as_ref().unwrap());
    assert!(relaxed
        .check_goals(&combined)
        .into_iter()
        .all(|(_, holds)| holds));
}

/// E4 gate: every core query on paper-scale ("modest") scenarios stays
/// well under the paper's 1-second bound, with margin for CI noise.
#[test]
fn modest_scenarios_stay_under_one_second() {
    let budget = Duration::from_secs(1);
    let mv = vocab();

    let strict = session(&mv, IstioTable::Fig3);
    let (_, d) = timed(|| strict.local_consistency(mv.k8s_party).unwrap());
    assert!(d < budget, "local consistency took {d:?}");
    let (_, d) = timed(|| strict.reconcile(ReconcileMode::Blameable).unwrap());
    assert!(d < budget, "reconcile took {d:?}");
    let (_, d) = timed(|| {
        strict
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap()
    });
    assert!(d < budget, "envelope took {d:?}");

    let relaxed = session(&mv, IstioTable::Fig4);
    let (rec, d) = timed(|| relaxed.reconcile(ReconcileMode::HardBounds).unwrap());
    assert!(rec.success);
    assert!(d < budget, "synthesis took {d:?}");

    // A somewhat larger-than-paper scenario should still be fast.
    let s = generate(ScenarioParams {
        services: 8,
        istio_goals: 8,
        k8s_goals: 2,
        conflict_fraction: 0.5,
        ..ScenarioParams::default()
    });
    let sess = s.session(false);
    let (_, d) = timed(|| sess.reconcile(ReconcileMode::Blameable).unwrap());
    assert!(d < budget, "8-service reconcile took {d:?}");
}

/// The scenario generator's conflicts behave like the paper's: the
/// blame core always includes a K8s ban and an Istio reachability goal
/// that mention the same port.
#[test]
fn generated_conflicts_are_localized() {
    for seed in 0..5 {
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals: 1,
            seed: 100 + seed,
            ..ScenarioParams::default()
        });
        if s.conflicting_ports().is_empty() {
            continue; // rare: all bans landed on flexible rows
        }
        let sess = s.session(false);
        let rec = sess.reconcile(ReconcileMode::Blameable).unwrap();
        assert!(!rec.success, "seed {seed} should conflict");
        assert!(rec.core.iter().any(|n| n.contains("k8s goal")));
        assert!(rec.core.iter().any(|n| n.contains("istio goal")));
        // Conflict cores are small (localized), not the whole goal set.
        assert!(rec.core.len() <= 1 + s.istio_goals.len() / 2);
    }
}

/// Negotiation robustness sweep: across many random scenarios and both
/// revision strategies, negotiation always terminates (success or a
/// clean stuck/exhausted verdict), never errors, and successful runs
/// deliver verified configurations.
#[test]
fn negotiation_terminates_cleanly_across_random_scenarios() {
    use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
    use std::collections::BTreeMap;
    for seed in 0..12u64 {
        let s = generate(ScenarioParams {
            services: 4 + (seed as usize % 3),
            istio_goals: 5,
            k8s_goals: 1 + (seed as usize % 2),
            conflict_fraction: (seed % 3) as f64 / 2.0,
            flexible_fraction: (seed % 2) as f64 / 2.0,
            seed: 1000 + seed,
            ..ScenarioParams::default()
        });
        for soft in [false, true] {
            let mut sess = s.session(soft);
            let mut negs: BTreeMap<muppet_logic::PartyId, Box<dyn Negotiator>> = BTreeMap::new();
            negs.insert(s.mv.k8s_party, Box::new(Stubborn));
            negs.insert(s.mv.istio_party, Box::new(DropBlamedSoftGoals));
            let report = run_negotiation(&mut sess, &mut negs, 30)
                .unwrap_or_else(|e| panic!("seed {seed} soft {soft}: {e}"));
            assert!(report.rounds <= 30);
            if report.success {
                let mut combined = muppet_logic::Instance::new();
                for c in report.configs.values() {
                    combined = combined.union(c);
                }
                for (name, holds) in sess.check_goals(&combined) {
                    assert!(holds, "seed {seed} soft {soft}: {name}");
                }
            } else {
                // Stuck verdicts must be explained in the trace.
                assert!(report
                    .trace
                    .iter()
                    .any(|t| t.contains("stuck") || t.contains("exhausted")));
            }
        }
    }
}

/// Negotiation over generated scenarios: soft Istio goals converge, and
/// the number of rounds grows with the number of built-in conflicts.
#[test]
fn negotiation_converges_on_generated_scenarios() {
    use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
    use std::collections::BTreeMap;

    let mut rounds_by_conflicts = Vec::new();
    for &k8s_goals in &[1usize, 2, 3] {
        let s = generate(ScenarioParams {
            conflict_fraction: 1.0,
            k8s_goals,
            istio_goals: 8,
            services: 6,
            seed: 7,
            ..ScenarioParams::default()
        });
        let conflicts = s.conflicting_ports().len();
        let mut sess = s.session(true);
        let mut negs: BTreeMap<muppet_logic::PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        negs.insert(s.mv.k8s_party, Box::new(Stubborn));
        negs.insert(s.mv.istio_party, Box::new(DropBlamedSoftGoals));
        let report = run_negotiation(&mut sess, &mut negs, 40).unwrap();
        assert!(report.success, "trace: {:#?}", report.trace);
        rounds_by_conflicts.push((conflicts, report.rounds));
    }
    // More conflicts → at least as many rounds (weak monotonicity).
    for w in rounds_by_conflicts.windows(2) {
        if w[1].0 > w[0].0 {
            assert!(w[1].1 >= w[0].1, "{rounds_by_conflicts:?}");
        }
    }
}
