//! Core-level tests for the k ≥ 3 party extension (Sec. 7): multi-source
//! envelopes with per-sender obligation tags, three-way blame, and
//! negotiation cycles longer than two.

use std::collections::BTreeMap;

use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
use muppet::{NamedGoal, Party, ReconcileMode, Session};
use muppet_logic::{Domain, Formula, Instance, PartyId, Term, Universe, Vocabulary};

/// Three parties each own a unary relation over one sort of "features".
struct ThreeParty {
    universe: Universe,
    vocab: Vocabulary,
    parties: [PartyId; 3],
    rels: [muppet_logic::RelId; 3],
    atoms: Vec<muppet_logic::AtomId>,
}

fn three_party() -> ThreeParty {
    let mut universe = Universe::new();
    let s = universe.add_sort("F");
    let atoms = vec![
        universe.add_atom(s, "x"),
        universe.add_atom(s, "y"),
        universe.add_atom(s, "z"),
    ];
    let mut vocab = Vocabulary::new();
    let parties = [PartyId(0), PartyId(1), PartyId(2)];
    let rels = [
        vocab.add_simple_rel("en_a", vec![s], Domain::Party(parties[0])),
        vocab.add_simple_rel("en_b", vec![s], Domain::Party(parties[1])),
        vocab.add_simple_rel("en_c", vec![s], Domain::Party(parties[2])),
    ];
    ThreeParty {
        universe,
        vocab,
        parties,
        rels,
        atoms,
    }
}

fn on(rel: muppet_logic::RelId, atom: muppet_logic::AtomId) -> Formula {
    Formula::pred(rel, [Term::Const(atom)])
}

#[test]
fn multi_source_envelope_tags_obligations_by_sender() {
    let t = three_party();
    let mut s = Session::new(&t.universe, t.vocab.clone(), Instance::new());
    // A requires en_c(x); B requires en_c(y) ∨ en_b(y) — both impose on C
    // once their own sides are fixed.
    s.add_party(Party::new(t.parties[0], "A").with_goals([NamedGoal::hard(
        "A wants c-x",
        on(t.rels[2], t.atoms[0]),
    )]));
    s.add_party(Party::new(t.parties[1], "B").with_goals([NamedGoal::hard(
        "B wants c-y or b-y",
        Formula::or([on(t.rels[2], t.atoms[1]), on(t.rels[1], t.atoms[1])]),
    )]));
    s.add_party(Party::new(t.parties[2], "C"));

    // B's fixed config does NOT enable b-y, so its goal devolves onto C.
    let env = s
        .compute_multi_envelope(
            &[
                (t.parties[0], Instance::new()),
                (t.parties[1], Instance::new()),
            ],
            t.parties[2],
        )
        .unwrap();
    assert_eq!(env.predicates.len(), 2);
    let by_a: Vec<_> = env
        .predicates
        .iter()
        .filter(|p| p.obligated_by == t.parties[0])
        .collect();
    let by_b: Vec<_> = env
        .predicates
        .iter()
        .filter(|p| p.obligated_by == t.parties[1])
        .collect();
    assert_eq!(by_a.len(), 1);
    assert_eq!(by_b.len(), 1);
    assert_eq!(by_a[0].formula, on(t.rels[2], t.atoms[0]));
    assert_eq!(by_b[0].formula, on(t.rels[2], t.atoms[1]));

    // If B's fixed config already enables b-y, B's obligation vanishes:
    // obligation sources are per-sender, as Sec. 7 asks ("separating out
    // the source of obligations").
    let mut b_cfg = Instance::new();
    b_cfg.insert(t.rels[1], vec![t.atoms[1]]);
    let env = s
        .compute_multi_envelope(
            &[(t.parties[0], Instance::new()), (t.parties[1], b_cfg)],
            t.parties[2],
        )
        .unwrap();
    assert_eq!(env.predicates.len(), 1);
    assert_eq!(env.predicates[0].obligated_by, t.parties[0]);
    assert!(env.self_satisfied.iter().any(|g| g.contains("B wants")));
}

#[test]
fn three_way_conflict_blames_all_involved() {
    let t = three_party();
    let mut s = Session::new(&t.universe, t.vocab.clone(), Instance::new());
    // An odd cycle of requirements on the same feature bit: A says
    // en_c(x); B says en_c(x) ⇒ en_b(x); C says ¬en_b(x) ∧ ¬en_c(x)… make
    // it genuinely three-way: A: en_c(x). B: en_c(x) ⇒ en_b(x).
    // C(owner of en_c): ¬en_b(x).
    s.add_party(Party::new(t.parties[0], "A").with_goals([NamedGoal::hard(
        "require c-x",
        on(t.rels[2], t.atoms[0]),
    )]));
    s.add_party(Party::new(t.parties[1], "B").with_goals([NamedGoal::hard(
        "c-x implies b-x",
        Formula::implies(on(t.rels[2], t.atoms[0]), on(t.rels[1], t.atoms[0])),
    )]));
    s.add_party(Party::new(t.parties[2], "C").with_goals([NamedGoal::hard(
        "forbid b-x",
        Formula::not(on(t.rels[1], t.atoms[0])),
    )]));
    let rec = s.reconcile(ReconcileMode::Blameable).unwrap();
    assert!(!rec.success);
    assert_eq!(rec.core.len(), 3, "all three goals conflict: {:?}", rec.core);
    for name in ["A:", "B:", "C:"] {
        assert!(rec.core.iter().any(|c| c.starts_with(name)));
    }
}

#[test]
fn round_robin_cycles_through_three_parties() {
    let t = three_party();
    let mut s = Session::new(&t.universe, t.vocab.clone(), Instance::new());
    s.add_party(Party::new(t.parties[0], "A").with_goals([NamedGoal::hard(
        "require c-x",
        on(t.rels[2], t.atoms[0]),
    )]));
    s.add_party(Party::new(t.parties[1], "B").with_goals([NamedGoal::hard(
        "c-x implies b-x",
        Formula::implies(on(t.rels[2], t.atoms[0]), on(t.rels[1], t.atoms[0])),
    )]));
    s.add_party(Party::new(t.parties[2], "C").with_goals([NamedGoal::soft(
        "forbid b-x",
        Formula::not(on(t.rels[1], t.atoms[0])),
    )]));
    let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    negs.insert(t.parties[0], Box::new(Stubborn));
    negs.insert(t.parties[1], Box::new(Stubborn));
    negs.insert(t.parties[2], Box::new(DropBlamedSoftGoals));
    let report = run_negotiation(&mut s, &mut negs, 12).unwrap();
    assert!(report.success, "trace: {:#?}", report.trace);
    // C's turn is the third in the cycle: rounds 1 and 2 stand firm,
    // round 3 revises, round 4 reconciles.
    assert_eq!(report.rounds, 4);
    assert_eq!(report.configs.len(), 3);
    let mut combined = Instance::new();
    for c in report.configs.values() {
        combined = combined.union(c);
    }
    for (name, holds) in s.check_goals(&combined) {
        assert!(holds, "{name}");
    }
}

/// Provider-to-many-tenants conformance: one provider envelope per
/// tenant domain, each computed once; a flexible tenant conforms while a
/// self-contradictory one is rejected with blame.
#[test]
fn multi_tenant_conformance_serves_each_tenant_independently() {
    use muppet::conformance::run_conformance_multi_tenant;
    let t = three_party();
    let mut s = Session::new(&t.universe, t.vocab.clone(), Instance::new());
    // Provider A requires each tenant to enable feature x in its own
    // domain.
    s.add_party(Party::new(t.parties[0], "provider").with_goals([
        NamedGoal::hard("B enables x", on(t.rels[1], t.atoms[0])),
        NamedGoal::hard("C enables x", on(t.rels[2], t.atoms[0])),
    ]));
    // Tenant B is flexible.
    s.add_party(Party::new(t.parties[1], "tenant-b"));
    // Tenant C has a goal that directly contradicts its obligation.
    s.add_party(Party::new(t.parties[2], "tenant-c").with_goals([NamedGoal::hard(
        "x stays off",
        Formula::not(on(t.rels[2], t.atoms[0])),
    )]));
    let report =
        run_conformance_multi_tenant(&s, t.parties[0], &[t.parties[1], t.parties[2]]).unwrap();
    assert!(report.provider_consistent);
    assert_eq!(report.envelopes.len(), 2);
    // Each envelope speaks only its tenant's domain.
    let env_b = &report.envelopes[&t.parties[1]];
    assert!(env_b
        .predicates
        .iter()
        .all(|p| p.formula.rels().contains(&t.rels[1])));
    let env_c = &report.envelopes[&t.parties[2]];
    assert!(env_c
        .predicates
        .iter()
        .all(|p| p.formula.rels().contains(&t.rels[2])));
    // Outcomes: B conforms, C is rejected with both obligations named.
    assert_eq!(report.tenants.len(), 2);
    let b = &report.tenants[0];
    assert!(b.success);
    assert!(b.config.as_ref().unwrap().holds(t.rels[1], &[t.atoms[0]]));
    let c = &report.tenants[1];
    assert!(!c.success);
    assert!(c.blame.iter().any(|x| x.contains("envelope from provider")));
    assert!(c.blame.iter().any(|x| x.contains("x stays off")));
}

#[test]
fn multi_tenant_conformance_fails_fast_on_inconsistent_provider() {
    use muppet::conformance::run_conformance_multi_tenant;
    let t = three_party();
    let mut s = Session::new(&t.universe, t.vocab.clone(), Instance::new());
    s.add_party(Party::new(t.parties[0], "provider").with_goals([
        NamedGoal::hard("a on", on(t.rels[0], t.atoms[0])),
        NamedGoal::hard("a off", Formula::not(on(t.rels[0], t.atoms[0]))),
    ]));
    s.add_party(Party::new(t.parties[1], "tenant-b"));
    s.add_party(Party::new(t.parties[2], "tenant-c"));
    let report =
        run_conformance_multi_tenant(&s, t.parties[0], &[t.parties[1], t.parties[2]]).unwrap();
    assert!(!report.provider_consistent);
    assert!(report.envelopes.is_empty());
    assert!(report.tenants.iter().all(|o| !o.success));
}

#[test]
fn stuck_three_party_negotiation_stops_after_full_cycle() {
    let t = three_party();
    let mut s = Session::new(&t.universe, t.vocab.clone(), Instance::new());
    s.add_party(Party::new(t.parties[0], "A").with_goals([NamedGoal::hard(
        "x on",
        on(t.rels[2], t.atoms[0]),
    )]));
    s.add_party(Party::new(t.parties[1], "B"));
    s.add_party(Party::new(t.parties[2], "C").with_goals([NamedGoal::hard(
        "x off",
        Formula::not(on(t.rels[2], t.atoms[0])),
    )]));
    let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    for p in t.parties {
        negs.insert(p, Box::new(Stubborn));
    }
    let report = run_negotiation(&mut s, &mut negs, 20).unwrap();
    assert!(!report.success);
    assert_eq!(report.rounds, 3, "one full stubborn cycle");
}
