//! Multi-tenant namespaces, end to end — the paper's motivating setting:
//! "all of these big companies have multiple teams … they need to make
//! it possible for those different teams, with potentially different
//! security requirements …, to deploy to a single cluster" (Sec. 1).
//!
//! Two tenant teams share a cluster in separate namespaces; the platform
//! (K8s) administrator states namespace-scoped goals, and envelopes and
//! synthesis respect the tenancy boundary.

use muppet::{NamedGoal, Party, ReconcileMode, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{Instance, PartyId};
use muppet_mesh::{
    evaluate_flow, AuthPolicyRule, AuthorizationPolicy, Flow, Mesh, MeshVocab, Selector, Service,
};

/// A two-tenant cluster: team `shop` and team `pay`, one shared
/// ingress-ish frontend per team.
fn tenant_mesh() -> Mesh {
    let mut mesh = Mesh::new();
    mesh.add_service(Service::new("shop-web", [8080]).in_namespace("shop"));
    mesh.add_service(Service::new("shop-db", [5432]).in_namespace("shop"));
    mesh.add_service(Service::new("pay-api", [8443]).in_namespace("pay"));
    mesh.add_service(Service::new("pay-ledger", [5432]).in_namespace("pay"));
    mesh
}

#[test]
fn namespace_selectors_match_and_expand() {
    let mesh = tenant_mesh();
    assert_eq!(mesh.select(&Selector::Namespace("shop".into())).len(), 2);
    assert_eq!(mesh.select(&Selector::Namespace("pay".into())).len(), 2);
    assert_eq!(mesh.select(&Selector::Namespace("ghost".into())).len(), 0);
}

#[test]
fn namespace_scoped_auth_rules_on_the_dataplane() {
    let mesh = tenant_mesh();
    // The pay ledger only accepts traffic from its own namespace.
    let policy = AuthorizationPolicy {
        name: "pay-only".into(),
        selector: Selector::Name("pay-ledger".into()),
        direction: muppet_mesh::Direction::Ingress,
        action: muppet_mesh::Action::Allow,
        rules: vec![AuthPolicyRule::from_namespaces(["pay"])],
    };
    let ok = Flow::new("pay-api", "pay-ledger", 0, 5432);
    let cross = Flow::new("shop-web", "pay-ledger", 0, 5432);
    assert!(evaluate_flow(&mesh, &[], std::slice::from_ref(&policy), &ok).allowed);
    let d = evaluate_flow(&mesh, &[], std::slice::from_ref(&policy), &cross);
    assert!(!d.allowed);
    assert!(d.trace.last().unwrap().contains("implicit deny"));
}

#[test]
fn namespace_rules_compile_like_their_expansion() {
    let mesh = tenant_mesh();
    let mv = MeshVocab::new(&mesh, [], PartyId(0), PartyId(1));
    let by_namespace = AuthorizationPolicy {
        name: "ns".into(),
        selector: Selector::Name("pay-ledger".into()),
        direction: muppet_mesh::Direction::Ingress,
        action: muppet_mesh::Action::Allow,
        rules: vec![AuthPolicyRule::from_namespaces(["pay"])],
    };
    let by_services = AuthorizationPolicy {
        rules: vec![AuthPolicyRule::from_services(["pay-api", "pay-ledger"])],
        ..by_namespace.clone()
    };
    assert_eq!(
        mv.compile_istio(std::slice::from_ref(&by_namespace)).unwrap(),
        mv.compile_istio(std::slice::from_ref(&by_services)).unwrap()
    );
}

#[test]
fn namespace_goal_selector_scopes_the_ban() {
    // Platform admin: nothing in the `pay` namespace may be reached on
    // 5432 (the ledger port) — but the shop team's 5432 is its own
    // business.
    let mesh = tenant_mesh();
    let mv = MeshVocab::new(&mesh, [], PartyId(0), PartyId(1));
    let mut vocab = mv.vocab.clone();
    let k8s_goals = translate_k8s_goals(
        &K8sGoal::parse_csv("5432,DENY,ns=pay\n").unwrap(),
        &mv,
        &mut vocab,
    )
    .unwrap();
    // Tenants: shop needs its web → db flow; pay needs api → ledger —
    // which now conflicts.
    let istio_goals = translate_istio_goals(
        &IstioGoal::parse_csv(
            "srcService,dstService,srcPort,dstPort\n\
             shop-web,shop-db,*,5432\n\
             pay-api,pay-ledger,*,5432\n",
        )
        .unwrap(),
        &mv,
        &mut vocab,
    )
    .unwrap();
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut session = Session::new(&mv.universe, vocab, Instance::new());
    session.add_axioms(axioms);
    session.add_party(
        Party::new(mv.k8s_party, "platform")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    session.add_party(
        Party::new(mv.istio_party, "tenants")
            .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
    );
    let rec = session.reconcile(ReconcileMode::Blameable).unwrap();
    assert!(!rec.success);
    // Blame names the namespace ban and the PAY goal, not the shop one.
    assert!(rec.core.iter().any(|c| c.contains("DENY port 5432")));
    assert!(rec.core.iter().any(|c| c.contains("pay-api -> pay-ledger")));
    assert!(
        !rec.core.iter().any(|c| c.contains("shop-web")),
        "the shop tenant is not part of the conflict: {:?}",
        rec.core
    );

    // Drop the pay goal: the shop flow synthesizes fine despite sharing
    // the port number — the ban was namespace-scoped.
    let tenants = session.party_mut(mv.istio_party).unwrap();
    tenants.goals.retain(|g| !g.name.contains("pay-api"));
    let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success, "core: {:?}", rec.core);
}

#[test]
fn service_manifests_roundtrip_namespaces() {
    let mesh = tenant_mesh();
    let yaml = muppet_mesh::manifest::emit_service(mesh.service("pay-ledger").unwrap());
    assert!(yaml.contains("namespace: pay"));
    let doc = muppet_yaml::parse(&yaml).unwrap();
    let back = muppet_mesh::manifest::parse_service(&doc).unwrap();
    assert_eq!(&back, mesh.service("pay-ledger").unwrap());

    // Namespace-sourced auth rules round-trip too.
    let policy = AuthorizationPolicy {
        name: "ns".into(),
        selector: Selector::Namespace("pay".into()),
        direction: muppet_mesh::Direction::Ingress,
        action: muppet_mesh::Action::Allow,
        rules: vec![AuthPolicyRule::from_namespaces(["pay", "shop"])],
    };
    let yaml = muppet_mesh::manifest::emit_authorization_policy(&policy);
    assert!(yaml.contains("namespaces"));
    let doc = muppet_yaml::parse(&yaml).unwrap();
    let back = muppet_mesh::manifest::parse_authorization_policy(&doc).unwrap();
    assert_eq!(back, policy);
}
