//! Properties of the scenario generator (DESIGN.md §15): seeded
//! determinism (same seed + params ⇒ byte-identical output, checked on
//! freshly generated scenarios, not cached ones) and wire-format
//! round-trips — generated YAML through the depth-limited manifest
//! parser, generated CSVs through the goal-table parsers.

use muppet_goals::{IstioGoal, K8sGoal};
use muppet_mesh::manifest::parse_manifests;
use muppet_scenario::{generate, ScenarioParams};
use proptest::prelude::*;

/// A strategy over the whole parameter space the corpus draws from,
/// kept small enough that a case generates in milliseconds.
fn params_strategy() -> impl Strategy<Value = ScenarioParams> {
    (
        3usize..=20,          // services
        1usize..=3,           // ports_per_service
        0usize..=6,           // extra_ports
        0usize..=12,          // istio_goals
        0usize..=3,           // k8s_goals
        0u8..=2,              // conflict_fraction thirds
        0u8..=2,              // flexible_fraction thirds
        1usize..=3,           // namespaces
        1usize..=4,           // tiers
        0usize..=4,           // port_pool
        any::<bool>(),        // bounded
        any::<u64>(),         // seed
    )
        .prop_map(
            |(services, pps, extra, istio, k8s, cf, ff, ns, tiers, pool, bounded, seed)| {
                ScenarioParams {
                    services,
                    ports_per_service: pps,
                    extra_ports: extra,
                    istio_goals: istio,
                    k8s_goals: k8s,
                    conflict_fraction: cf as f64 / 2.0,
                    flexible_fraction: ff as f64 / 2.0,
                    namespaces: ns,
                    tiers,
                    port_pool: pool,
                    bounded,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed + params ⇒ byte-identical manifests, goal tables and
    /// provenance, across two independent generator runs.
    #[test]
    fn generation_is_byte_deterministic(params in params_strategy()) {
        let a = generate(params);
        let b = generate(params);
        prop_assert_eq!(a.wire_content(), b.wire_content());
        prop_assert_eq!(a.provenance_json("prop"), b.provenance_json("prop"));
        prop_assert_eq!(a.expected_label(), b.expected_label());
    }

    /// Generated YAML survives the depth-limited manifest parser with
    /// every service, namespace, label and port intact, and the goal
    /// CSVs survive their own parsers row for row.
    #[test]
    fn wire_content_round_trips(params in params_strategy()) {
        let s = generate(params);
        let (manifests, k8s_csv, istio_csv, _extras) = s.wire_content();

        let bundle = parse_manifests(&manifests).expect("generated YAML parses");
        prop_assert_eq!(bundle.mesh.services().len(), s.mesh.services().len());
        for svc in s.mesh.services() {
            let parsed = bundle
                .mesh
                .service(&svc.name)
                .expect("service survives the round-trip");
            prop_assert_eq!(parsed, svc);
        }

        let k8s = K8sGoal::parse_csv(&k8s_csv).expect("generated k8s CSV parses");
        prop_assert_eq!(&k8s, &s.k8s_goals);
        let istio = IstioGoal::parse_csv(&istio_csv).expect("generated istio CSV parses");
        prop_assert_eq!(&istio, &s.istio_goals);
    }

    /// The bounded (offer-carrying) session reaches the same verdict as
    /// the unbounded one: bounds are an optimization, never a semantic
    /// change.
    #[test]
    fn bounded_verdict_matches_unbounded(seed in 0u64..32, conflict in 0u8..=1) {
        let base = ScenarioParams {
            services: 6,
            istio_goals: 6,
            k8s_goals: 2,
            conflict_fraction: conflict as f64,
            seed,
            ..ScenarioParams::default()
        };
        let unbounded = generate(ScenarioParams { bounded: false, ..base });
        let bounded = generate(ScenarioParams { bounded: true, ..base });
        let ru = unbounded
            .session(false)
            .reconcile(muppet::ReconcileMode::HardBounds)
            .unwrap();
        let rb = bounded
            .session(false)
            .reconcile(muppet::ReconcileMode::HardBounds)
            .unwrap();
        prop_assert_eq!(ru.success, rb.success);
    }
}
