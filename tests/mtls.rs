//! The mTLS / PeerAuthentication extension (paper Sec. 7: debugging
//! "interactions between other security elements in Istio and K8s, such
//! as authentication"), exercised end to end: dataplane semantics,
//! logical encoding (differential), envelopes and manifests.

use muppet::{NamedGoal, Party, ReconcileMode, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{evaluate_closed, Instance, PartyId, Term};
use muppet_mesh::{
    evaluate_flow_full, Flow, Mesh, MeshVocab, MtlsMode, PeerAuthentication, Selector, Service,
};

fn mesh_with_legacy_client() -> Mesh {
    let mut mesh = Mesh::paper_example();
    // A legacy batch job without a sidecar that scrapes the backend.
    mesh.add_service(Service::new("legacy-batch", [9000]).without_sidecar());
    mesh
}

fn mv(mesh: &Mesh) -> MeshVocab {
    MeshVocab::new_with_features(
        mesh,
        [24, 26, 10000, 14000],
        PartyId(0),
        PartyId(1),
        true,
    )
}

#[test]
fn dataplane_strict_mtls_rejects_sidecarless_sources() {
    let mesh = mesh_with_legacy_client();
    let strict = PeerAuthentication {
        name: "backend-mtls".into(),
        selector: Selector::label("app", "test-backend"),
        mode: MtlsMode::Strict,
    };
    // Without the policy the legacy job can reach the backend.
    let flow = Flow::new("legacy-batch", "test-backend", 0, 25);
    assert!(evaluate_flow_full(&mesh, &[], &[], &[], &flow).allowed);
    // With strict mTLS it is refused at the transport layer...
    let d = evaluate_flow_full(&mesh, &[], &[], &[std::slice::from_ref(&strict)[0].clone()], &flow);
    assert!(!d.allowed);
    assert!(d.trace.last().unwrap().contains("connection refused"));
    // ...while sidecar-equipped sources are unaffected.
    let ok = Flow::new("test-frontend", "test-backend", 0, 25);
    assert!(evaluate_flow_full(&mesh, &[], &[], std::slice::from_ref(&strict), &ok).allowed);
    // Permissive mode refuses nobody.
    let permissive = PeerAuthentication {
        mode: MtlsMode::Permissive,
        ..strict
    };
    assert!(evaluate_flow_full(&mesh, &[], &[], &[permissive], &flow).allowed);
}

#[test]
fn encoding_matches_dataplane_with_mtls() {
    // Differential check over every flow and every subset of strict
    // services.
    let mesh = mesh_with_legacy_client();
    let mv = mv(&mesh);
    let services: Vec<&str> = mesh.services().iter().map(|s| s.name.as_str()).collect();
    for mask in 0..(1u32 << services.len()) {
        let peer_auth: Vec<PeerAuthentication> = services
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, name)| PeerAuthentication {
                name: format!("mtls-{name}"),
                selector: Selector::Name(name.to_string()),
                mode: MtlsMode::Strict,
            })
            .collect();
        let inst = mv
            .structure_instance()
            .union(&mv.compile_peer_auth(&peer_auth).unwrap());
        for src in mesh.services() {
            for dst in mesh.services() {
                for port in mv.ports() {
                    let plane = evaluate_flow_full(
                        &mesh,
                        &[],
                        &[],
                        &peer_auth,
                        &Flow::new(src.name.clone(), dst.name.clone(), 0, port),
                    )
                    .allowed;
                    let f = mv.allowed_formula(
                        Term::Const(mv.svc_atom(&src.name).unwrap()),
                        Term::Const(mv.svc_atom(&dst.name).unwrap()),
                        Term::Const(mv.port_atom(port).unwrap()),
                    );
                    let logic = evaluate_closed(&f, &inst, &mv.universe).unwrap();
                    assert_eq!(
                        plane, logic,
                        "mask {mask}: {} → {}:{port}",
                        src.name, dst.name
                    );
                }
            }
        }
    }
}

#[test]
fn peer_auth_compile_decompile_roundtrip() {
    let mesh = mesh_with_legacy_client();
    let mv = mv(&mesh);
    let policies = vec![
        PeerAuthentication {
            name: "be".into(),
            selector: Selector::Name("test-backend".into()),
            mode: MtlsMode::Strict,
        },
        PeerAuthentication {
            name: "noop".into(),
            selector: Selector::Name("test-db".into()),
            mode: MtlsMode::Permissive, // compiles to nothing
        },
    ];
    let inst = mv.compile_peer_auth(&policies).unwrap();
    let back = mv.decompile_peer_auth(&inst);
    assert_eq!(mv.compile_peer_auth(&back).unwrap(), inst);
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].mode, MtlsMode::Strict);

    // YAML round-trip as well.
    let yaml = muppet_mesh::manifest::emit_peer_authentication(&policies[0]);
    let doc = muppet_yaml::parse(&yaml).unwrap();
    let parsed = muppet_mesh::manifest::parse_peer_authentication(&doc).unwrap();
    assert_eq!(parsed.mode, MtlsMode::Strict);
    assert_eq!(mv.compile_peer_auth(&[parsed]).unwrap().total_tuples(), 1);
}

#[test]
fn feature_off_rejects_peer_auth() {
    let mesh = Mesh::paper_example();
    let plain = MeshVocab::paper_example();
    assert!(plain.compile_peer_auth(&[]).unwrap().total_tuples() == 0);
    let strict = PeerAuthentication {
        name: "x".into(),
        selector: Selector::All,
        mode: MtlsMode::Strict,
    };
    assert!(plain.compile_peer_auth(&[strict]).is_err());
    let _ = mesh;
}

/// With the extension on, the Fig. 5 envelope grows a sixth disjunct:
/// "dst requires strict mutual TLS and src runs no sidecar proxy" — a
/// new Istio-side way to satisfy the K8s ban.
#[test]
fn envelope_gains_the_mtls_disjunct() {
    let mesh = mesh_with_legacy_client();
    let mv = mv(&mesh);
    let mut vocab = mv.vocab.clone();
    let k8s_goals =
        translate_k8s_goals(&K8sGoal::parse_csv("23,DENY,*\n").unwrap(), &mv, &mut vocab)
            .unwrap();
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut session = Session::new(&mv.universe, vocab, mv.sidecar_instance());
    session.add_axioms(axioms);
    session.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    session.add_party(Party::new(mv.istio_party, "istio-admin"));

    let env = session
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();
    assert_eq!(env.predicates.len(), 1);
    let mut inner = &env.predicates[0].formula;
    while let muppet_logic::Formula::Forall(_, _, body) = inner {
        inner = body;
    }
    let muppet_logic::Formula::Or(disjuncts) = inner else {
        panic!("expected disjunction: {inner:?}");
    };
    assert_eq!(disjuncts.len(), 6, "{disjuncts:#?}");
    let mtls = mv.mtls.unwrap();
    assert!(disjuncts.iter().any(|d| d.rels().contains(&mtls.strict)));
    // The rendered English mentions the new option.
    let english = env.render_english(session.vocab(), session.universe());
    assert!(english.contains("strict mutual TLS"), "{english}");
}

/// Synthesis can now *choose* strict mTLS as the mechanism: a mesh
/// whose only sidecar-less workload is the offender can be locked down
/// with a single PeerAuthentication object.
#[test]
fn synthesis_can_pick_mtls_as_the_mechanism() {
    // legacy-batch (no sidecar) must not reach the db; everyone else
    // keeps full reachability of their current flows.
    let mut mesh = Mesh::paper_example();
    mesh.add_service(Service::new("legacy-batch", [9000]).without_sidecar());
    let mv = MeshVocab::new_with_features(&mesh, [14000], PartyId(0), PartyId(1), true);
    let mut vocab = mv.vocab.clone();
    // K8s admin: deny legacy-batch → db traffic on the db port, via a
    // goal over the db port.
    let istio_rows = IstioGoal::parse_csv(
        "srcService,dstService,srcPort,dstPort\n\
         test-backend,test-db,14000,16000\n",
    )
    .unwrap();
    let istio_goals = translate_istio_goals(&istio_rows, &mv, &mut vocab).unwrap();
    // Hand-written K8s goal: legacy-batch must not reach the db at all.
    let src = mv.svc_atom("legacy-batch").unwrap();
    let dst = mv.svc_atom("test-db").unwrap();
    let p = vocab.fresh_var();
    let ban = muppet_logic::Formula::forall(
        p,
        mv.port_sort,
        muppet_logic::Formula::not(mv.allowed_formula(
            Term::Const(src),
            Term::Const(dst),
            Term::Var(p),
        )),
    );
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut session = Session::new(&mv.universe, vocab, mv.sidecar_instance());
    session.add_axioms(axioms);
    session.add_party(
        Party::new(mv.k8s_party, "k8s-admin").with_goals([NamedGoal::hard("ban legacy→db", ban)]),
    );
    session.add_party(
        Party::new(mv.istio_party, "istio-admin")
            .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
    );
    let rec = session.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success, "core: {:?}", rec.core);
    // Verify on the dataplane: decompile everything and run the flows.
    let istio_cfg = &rec.configs[&mv.istio_party];
    let k8s_cfg = &rec.configs[&mv.k8s_party];
    let updated = mv.decompile_services(istio_cfg);
    let k8s_pol = mv.decompile_k8s(k8s_cfg);
    let istio_pol = mv.decompile_istio(istio_cfg);
    let peer_auth = mv.decompile_peer_auth(istio_cfg);
    for port in mv.ports() {
        assert!(
            !evaluate_flow_full(
                &updated,
                &k8s_pol,
                &istio_pol,
                &peer_auth,
                &Flow::new("legacy-batch", "test-db", 0, port),
            )
            .allowed,
            "legacy-batch must not reach test-db:{port}"
        );
    }
    let be_db = updated
        .service("test-db")
        .unwrap()
        .ports
        .iter()
        .any(|&p| {
            evaluate_flow_full(
                &updated,
                &k8s_pol,
                &istio_pol,
                &peer_auth,
                &Flow::new("test-backend", "test-db", 0, p),
            )
            .allowed
        });
    assert!(be_db, "backend must still reach the db");
}
