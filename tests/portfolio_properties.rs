//! Differential properties of the parallel portfolio engine: on
//! randomized CNFs and randomized goal tables, portfolio verdicts are
//! identical to sequential ones — under assumptions too — SAT models
//! satisfy the formula, and UNSAT claims re-verify sequentially.

use muppet::ReconcileMode;
use muppet_bench::scenario::{generate, ScenarioParams};
use muppet_portfolio::{solve_portfolio, PortfolioConfig};
use muppet_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random CNF instance: clause lists over `n` variables encoded as
/// signed nonzero integers (DIMACS convention).
fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<i32>>> {
    let lit = (1..=max_vars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    prop::collection::vec(clause, 0..=max_clauses)
}

fn load(num_vars: usize, clauses: &[Vec<i32>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars = s.new_vars(num_vars);
    for c in clauses {
        s.add_clause(c.iter().map(|&l| {
            let v = vars[l.unsigned_abs() as usize - 1];
            Lit::new(v, l > 0)
        }));
    }
    (s, vars)
}

fn pool_cfg(threads: usize) -> PortfolioConfig {
    PortfolioConfig {
        threads,
        pool_bytes: 256 * 1024,
        ..PortfolioConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Portfolio and sequential verdicts agree on random CNFs; SAT
    /// models satisfy every clause; UNSAT re-verifies on a fresh
    /// sequential solver over the same clauses.
    #[test]
    fn portfolio_matches_sequential(clauses in cnf_strategy(12, 48)) {
        let num_vars = 12;
        let (seq_solver, vars) = load(num_vars, &clauses);
        let mut seq = seq_solver.clone();
        let mut par = seq_solver.clone();
        let sequential_sat = seq.solve().is_sat();
        let (result, summary) = solve_portfolio(&mut par, &[], &pool_cfg(4));
        // workers == 0 marks the trivial path: the clause set was
        // already inconsistent at level 0, no race was needed.
        prop_assert!(summary.workers == 4 || summary.workers == 0);
        match result {
            SolveResult::Sat(model) => {
                prop_assert!(sequential_sat, "portfolio SAT, sequential UNSAT");
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let val = model.value(vars[l.unsigned_abs() as usize - 1]);
                        (l > 0) == val
                    });
                    prop_assert!(ok, "portfolio model violates clause {:?}", c);
                }
            }
            SolveResult::Unsat(_) => {
                prop_assert!(!sequential_sat, "portfolio UNSAT, sequential SAT");
                // Re-verify the UNSAT claim from scratch, sequentially.
                let (mut fresh, _) = load(num_vars, &clauses);
                prop_assert!(fresh.solve().is_unsat());
            }
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// The same property under assumptions, plus core soundness: the
    /// portfolio's failed-assumption core must keep the instance UNSAT
    /// when re-solved sequentially under just those assumptions.
    #[test]
    fn portfolio_matches_sequential_under_assumptions(
        clauses in cnf_strategy(10, 32),
        assumption_bits in prop::collection::vec(any::<Option<bool>>(), 10),
    ) {
        let num_vars = 10;
        let (base, vars) = load(num_vars, &clauses);
        let assumptions: Vec<Lit> = assumption_bits
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|sign| Lit::new(vars[i], sign)))
            .collect();
        let mut seq = base.clone();
        let mut par = base.clone();
        let seq_sat = seq.solve_with_assumptions(&assumptions).is_sat();
        let (result, _) = solve_portfolio(&mut par, &assumptions, &pool_cfg(3));
        match result {
            SolveResult::Sat(model) => {
                prop_assert!(seq_sat);
                for a in &assumptions {
                    prop_assert!(model.lit_value(*a), "assumption {:?} not honored", a);
                }
            }
            SolveResult::Unsat(core) => {
                prop_assert!(!seq_sat);
                prop_assert!(core.iter().all(|l| assumptions.contains(l)));
                let mut fresh = base.clone();
                prop_assert!(fresh.solve_with_assumptions(&core).is_unsat());
            }
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// Deterministic mode: two runs over the same instance return the
    /// same verdict, winner and aggregate statistics.
    #[test]
    fn deterministic_mode_is_reproducible(clauses in cnf_strategy(10, 36)) {
        let (base, _) = load(10, &clauses);
        let cfg = PortfolioConfig {
            deterministic: true,
            slice_conflicts: 64,
            ..pool_cfg(3)
        };
        let (r1, s1) = solve_portfolio(&mut base.clone(), &[], &cfg);
        let (r2, s2) = solve_portfolio(&mut base.clone(), &[], &cfg);
        prop_assert_eq!(r1.is_sat(), r2.is_sat());
        prop_assert_eq!(s1, s2);
    }
}

proptest! {
    // Whole-pipeline differential runs are expensive (grounding +
    // encoding per case); fewer cases, same property strength per case.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized goal tables through the full Session pipeline: a
    /// 4-thread portfolio session returns exactly the sequential
    /// verdicts for reconciliation and per-party consistency.
    #[test]
    fn session_verdicts_identical_across_thread_counts(
        services in 3usize..7,
        goals in 2usize..7,
        bans in 1usize..4,
        conflict in any::<bool>(),
        flexible in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let sc = generate(ScenarioParams {
            services,
            istio_goals: goals,
            k8s_goals: bans,
            conflict_fraction: if conflict { 1.0 } else { 0.0 },
            flexible_fraction: if flexible { 0.5 } else { 0.0 },
            seed,
            ..ScenarioParams::default()
        });
        let mut sequential = sc.session(false);
        sequential.set_threads(1);
        let mut portfolio = sc.session(false);
        portfolio.set_threads(4);
        let seq_rec = sequential.reconcile(ReconcileMode::HardBounds).unwrap();
        let par_rec = portfolio.reconcile(ReconcileMode::HardBounds).unwrap();
        prop_assert_eq!(seq_rec.success, par_rec.success, "reconcile verdicts diverged");
        if !seq_rec.success {
            // Blame sets are minimal cores over the same groups; the
            // shrink runs on the master solver either way and must
            // land on the same names.
            prop_assert_eq!(seq_rec.core, par_rec.core, "blame diverged");
        }
        for party in [sc.mv.k8s_party, sc.mv.istio_party] {
            let s = sequential.local_consistency(party).unwrap();
            let p = portfolio.local_consistency(party).unwrap();
            prop_assert_eq!(s.ok, p.ok, "consistency verdicts diverged");
        }
    }
}
