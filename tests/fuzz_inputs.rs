//! Robustness fuzzing of every external input surface: parsers must
//! reject garbage with errors, never panic, and accept-then-roundtrip
//! whatever they accept.

use muppet_domain::linkerd::{parse_linkerd_manifests, PlatformGoal};
use muppet_goals::{IstioGoal, K8sGoal};
use muppet_mesh::manifest::parse_manifests;
use muppet_sat::parse_dimacs;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// DIMACS parsing never panics on arbitrary ASCII.
    #[test]
    fn dimacs_never_panics(input in "[ -~\n]{0,300}") {
        let _ = parse_dimacs(&input);
    }

    /// Anything DIMACS accepts, it can re-emit and re-parse identically.
    #[test]
    fn dimacs_accepted_inputs_roundtrip(
        num_vars in 1usize..8,
        clause_spec in prop::collection::vec(
            prop::collection::vec((1i64..8, any::<bool>()), 1..4),
            0..6,
        ),
    ) {
        let mut text = format!("p cnf {} {}\n", num_vars, clause_spec.len());
        for clause in &clause_spec {
            for (v, pos) in clause {
                let v = ((v - 1) % num_vars as i64) + 1;
                text.push_str(&format!("{} ", if *pos { v } else { -v }));
            }
            text.push_str("0\n");
        }
        let parsed = parse_dimacs(&text).expect("well-formed by construction");
        let emitted = muppet_sat::write_dimacs(parsed.num_vars, &parsed.clauses);
        prop_assert_eq!(parse_dimacs(&emitted).expect("roundtrip"), parsed);
    }

    /// Hostile DIMACS magnitudes — header var counts and literals big
    /// enough that an unchecked `as u32` / `as i64` would silently
    /// truncate to a valid-looking index — must fail with parse
    /// errors, never a wrapped variable.
    #[test]
    fn dimacs_hostile_magnitudes_error_cleanly(
        nv in prop_oneof![
            Just(1u64 << 31),            // i32::MAX + 1
            Just(u64::from(u32::MAX)),
            Just(1u64 << 32),            // u32::MAX + 1: `as u32` wraps to 0
            Just(u64::MAX),
            (1u64 << 22) + 1..(1 << 40),
        ],
        lit in prop_oneof![
            Just(i64::from(i32::MAX)),
            Just(i64::from(i32::MIN)),
            Just(i64::MAX),
            Just(i64::MIN),
            (1i64 << 23)..(1 << 40),
        ],
    ) {
        // Oversized declared var count: rejected at the header.
        prop_assert!(matches!(
            parse_dimacs(&format!("p cnf {nv} 1\n1 0\n")),
            Err(muppet_sat::DimacsError::TooManyVars(_))
        ), "header var count {} must be rejected", nv);
        // Oversized literal under a sane header: rejected at the token.
        prop_assert!(matches!(
            parse_dimacs(&format!("p cnf 2 1\n{lit} 0\n")),
            Err(muppet_sat::DimacsError::VarOutOfRange(_))
        ), "literal {} must be rejected", lit);
    }

    /// Goal-table CSV parsing never panics on arbitrary input — all
    /// three tables: K8s bans, Istio reachability, Linkerd platform.
    #[test]
    fn goal_csv_never_panics(input in "[ -~\n,]{0,300}") {
        let _ = K8sGoal::parse_csv(&input);
        let _ = IstioGoal::parse_csv(&input);
        let _ = PlatformGoal::parse_csv(&input);
    }

    /// Manifest parsing never panics on arbitrary YAML-ish input, in
    /// either domain's dialect.
    #[test]
    fn manifest_never_panics(input in "[ -~\n]{0,400}") {
        let _ = parse_manifests(&input);
        let _ = parse_linkerd_manifests(&input);
    }

    /// The YAML parser itself never panics on arbitrary input — including
    /// inputs biased toward its own syntax (quotes, flow brackets,
    /// colons, dashes, comments, separators).
    #[test]
    fn yaml_never_panics(input in "[ -~\n]{0,400}") {
        let _ = muppet_yaml::parse(&input);
        let _ = muppet_yaml::parse_documents(&input);
    }

    /// Syntax-dense YAML fragments (much likelier to reach deep parser
    /// paths than uniform ASCII) also never panic.
    #[test]
    fn yaml_syntax_soup_never_panics(
        input in prop::collection::vec(
            prop_oneof![
                Just("- ".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(": ".to_string()),
                Just("\"".to_string()),
                Just("'".to_string()),
                Just("\\".to_string()),
                Just("#".to_string()),
                Just(",".to_string()),
                Just("\n".to_string()),
                Just("  ".to_string()),
                Just("---\n".to_string()),
                "[a-z0-9]{1,4}".prop_map(|s| s),
            ],
            0..60,
        ).prop_map(|parts| parts.concat()),
    ) {
        let _ = muppet_yaml::parse_documents(&input);
    }

    /// Whatever the YAML parser accepts, the emitter can write back out
    /// and the parser re-reads to the same value.
    #[test]
    fn yaml_accepted_inputs_roundtrip(input in "[ -~\n]{0,300}") {
        if let Ok(v) = muppet_yaml::parse(&input) {
            let emitted = muppet_yaml::emit(&v);
            prop_assert_eq!(
                muppet_yaml::parse(&emitted).expect("emitted YAML must re-parse"),
                v
            );
        }
    }

    /// Daemon protocol lines never panic on arbitrary ASCII, in either
    /// direction (the server parses requests, the client responses).
    #[test]
    fn proto_lines_never_panic(input in "[ -~\n]{0,300}") {
        let _ = muppet_daemon::Request::from_line(&input);
        let _ = muppet_daemon::Response::from_line(&input);
    }

    /// The overload protocol surface roundtrips: a shed response with
    /// any id/reason/hint survives to_line → from_line with its status
    /// and retry hint intact.
    #[test]
    fn overloaded_responses_roundtrip(
        with_id in any::<bool>(),
        id_text in "[a-zA-Z0-9 _.-]{0,24}",
        reason in "[ -~]{0,60}",
        // Hints are wall-clock milliseconds — bounded well inside the
        // f64-exact integer range the JSON layer can carry.
        hint in 0u64..86_400_000,
    ) {
        let id = with_id.then_some(id_text);
        let resp = muppet_daemon::Response::overloaded(id.clone(), reason.clone(), hint);
        let back = muppet_daemon::Response::from_line(&resp.to_line())
            .expect("emitted shed responses must re-parse");
        prop_assert!(back.overloaded);
        prop_assert!(!back.ok);
        prop_assert_eq!(back.retry_after_ms, Some(hint));
        prop_assert_eq!(back.id, id);
        prop_assert_eq!(back.error, Some(reason));
    }

    /// Adversarial `status` / `retry_after_ms` fields degrade, never
    /// fail: an ill-typed status is simply "not overloaded" and a bad
    /// hint is "no hint", because old clients must keep interoperating
    /// with new servers (and vice versa).
    #[test]
    fn ill_typed_overload_fields_degrade(
        status in prop_oneof![
            Just("17".to_string()),
            Just("true".to_string()),
            Just("null".to_string()),
            Just("[]".to_string()),
            Just("{}".to_string()),
            Just("\"busy\"".to_string()),
        ],
        hint in prop_oneof![
            Just("-1".to_string()),
            Just("1.5".to_string()),
            Just("\"soon\"".to_string()),
            Just("[]".to_string()),
        ],
    ) {
        let line = format!(
            "{{\"v\":1,\"ok\":false,\"error\":\"x\",\"status\":{status},\"retry_after_ms\":{hint}}}"
        );
        let resp = muppet_daemon::Response::from_line(&line)
            .expect("ill-typed overload fields must degrade, not error");
        prop_assert!(!resp.overloaded, "non-\"overloaded\" status must not mark a shed");
        prop_assert_eq!(resp.retry_after_ms, None);
    }

    /// Structured-but-wrong manifests produce errors, not panics: random
    /// kinds, missing names, weird selectors.
    #[test]
    fn structured_garbage_manifests_error_cleanly(
        kind in "[A-Za-z]{1,20}",
        name in "[a-z0-9-]{0,12}",
        extra_key in "[a-z]{1,8}",
        extra_val in "[a-z0-9]{0,8}",
    ) {
        let doc = format!(
            "kind: {kind}\nmetadata:\n  name: {name}\nspec:\n  {extra_key}: {extra_val}\n"
        );
        if let Ok(bundle) = parse_manifests(&doc) {
            // Only the known kinds may be accepted.
            prop_assert!(
                matches!(
                    kind.as_str(),
                    "Service" | "NetworkPolicy" | "AuthorizationPolicy" | "PeerAuthentication"
                ),
                "accepted unknown kind {kind:?}: {bundle:?}"
            );
        }
        if let Ok(bundle) = parse_linkerd_manifests(&doc) {
            prop_assert!(
                matches!(
                    kind.as_str(),
                    "Service" | "Server" | "ServerAuthorization" | "Sidecar"
                        | "PeerAuthentication"
                ),
                "linkerd accepted unknown kind {kind:?}: {bundle:?}"
            );
        }
    }
}

/// A grab-bag of historically tricky parser inputs kept as a regression
/// corpus.
#[test]
fn parser_regression_corpus() {
    // DIMACS: clause spanning lines, comment mid-file, trailing blank.
    assert!(parse_dimacs("p cnf 2 1\nc mid\n1\n-2 0\n\n").is_ok());
    // DIMACS: zero clauses declared and present.
    assert!(parse_dimacs("p cnf 3 0\n").is_ok());
    // DIMACS: the exact adversarial headers that once truncated through
    // `as u32` / `as i64` — each must be a parse error, not a wrap.
    assert!(parse_dimacs("p cnf 2147483648 1\n1 0\n").is_err()); // i32::MAX + 1
    assert!(parse_dimacs("p cnf 4294967296 1\n1 0\n").is_err()); // u32::MAX + 1 -> 0
    assert!(parse_dimacs("p cnf 2 1\n4294967297 0\n").is_err()); // wraps to var 1
    assert!(parse_dimacs("p cnf 2 1\n-9223372036854775808 0\n").is_err()); // i64::MIN
    assert!(parse_dimacs("p cnf 3 -1\n1 0\n").is_err()); // negative clause count
    assert!(parse_dimacs("p cnf 3 18446744073709551616\n").is_err()); // clause count > u64
    // Goals: header-only files are empty, not errors.
    assert!(K8sGoal::parse_csv("port,perm,selector\n").unwrap().is_empty());
    assert!(IstioGoal::parse_csv("srcService,dstService,srcPort,dstPort\n")
        .unwrap()
        .is_empty());
    // Goals: whitespace-heavy rows.
    let g = K8sGoal::parse_csv("  23 ,  DENY ,  *  \n").unwrap();
    assert_eq!(g[0].port, 23);
    // Manifests: multiple documents with stray separators.
    let m = parse_manifests("---\n---\nkind: Service\nmetadata:\n  name: a\n---\n").unwrap();
    assert_eq!(m.mesh.services().len(), 1);
    // Manifests: numeric service name stays a string.
    let m = parse_manifests("kind: Service\nmetadata:\n  name: \"123\"\n").unwrap();
    assert_eq!(m.mesh.services()[0].name, "123");

    // Daemon protocol, overload surface (DESIGN.md §14). A canonical
    // shed line parses with both the status and the hint.
    let shed = muppet_daemon::Response::from_line(
        r#"{"v":1,"ok":false,"error":"overloaded: job queue full","status":"overloaded","retry_after_ms":50}"#,
    )
    .unwrap();
    assert!(shed.overloaded && !shed.ok);
    assert_eq!(shed.retry_after_ms, Some(50));
    // A shed without a hint is still a shed.
    let shed = muppet_daemon::Response::from_line(
        r#"{"v":1,"ok":false,"error":"overloaded: server is draining","status":"overloaded"}"#,
    )
    .unwrap();
    assert!(shed.overloaded && shed.retry_after_ms.is_none());
    // Contradictory: ok=true with an overloaded status. Parse must not
    // reject — the status field wins for shed detection, and callers
    // branch on `overloaded` before `ok`.
    let odd = muppet_daemon::Response::from_line(
        r#"{"v":1,"ok":true,"status":"overloaded","result":{}}"#,
    )
    .unwrap();
    assert!(odd.overloaded);
    // Unknown future statuses pass through as plain responses.
    let fut = muppet_daemon::Response::from_line(
        r#"{"v":1,"ok":true,"status":"redirected","result":{}}"#,
    )
    .unwrap();
    assert!(!fut.overloaded);
    // The drain acknowledgement a shutdown gets back.
    let ack = muppet_daemon::Response::from_line(
        r#"{"v":1,"ok":true,"result":{"stopping":true,"draining":true,"drain_deadline_ms":5000}}"#,
    )
    .unwrap();
    assert!(ack.ok && !ack.overloaded);
    use muppet_daemon::json::Json;
    assert_eq!(ack.result.get("draining").and_then(Json::as_bool), Some(true));
    // Adversarial near-misses: truncated status, status in the wrong
    // place, hint overflow — all parse (leniently) or error cleanly,
    // never panic.
    for line in [
        r#"{"v":1,"ok":false,"status":"overload"}"#,
        r#"{"v":1,"ok":false,"result":{"status":"overloaded"}}"#,
        r#"{"v":1,"ok":false,"status":"overloaded","retry_after_ms":99999999999999999999}"#,
        r#"{"v":1,"ok":false,"status":"OVERLOADED","retry_after_ms":50}"#,
        r#"{"v":1,"status":"overloaded""#,
    ] {
        if let Ok(r) = muppet_daemon::Response::from_line(line) {
            // Only the exact lowercase status marks a shed.
            assert_eq!(
                r.overloaded,
                line.contains("\"status\":\"overloaded\"")
                    && !line.contains("\"result\":{\"status\""),
                "unexpected shed detection for {line}"
            );
        }
    }
}

/// Deeply nested structure must produce a parse error, not a stack
/// overflow (which aborts the whole process and cannot be caught).
#[test]
fn deep_nesting_errors_instead_of_overflowing() {
    // Flow sequence: `[[[[…`.
    let deep_flow = format!("key: {}", "[".repeat(20_000));
    assert!(muppet_yaml::parse(&deep_flow).is_err());
    // Flow mapping: `{a: {a: …`.
    let deep_map = format!("key: {}", "{a: ".repeat(20_000));
    assert!(muppet_yaml::parse(&deep_map).is_err());
    // Block sequence: one line of `- - - - …`.
    let deep_block = format!("{}x", "- ".repeat(20_000));
    assert!(muppet_yaml::parse(&deep_block).is_err());
    // Block mappings via increasing indentation.
    let mut deep_indent = String::new();
    for i in 0..20_000 {
        deep_indent.push_str(&" ".repeat(i));
        deep_indent.push_str("k:\n");
    }
    assert!(muppet_yaml::parse(&deep_indent).is_err());
    // Moderate nesting stays accepted.
    let ok = format!("key: {}1{}", "[".repeat(10), "]".repeat(10));
    assert!(muppet_yaml::parse(&ok).is_ok());
}
