//! End-to-end tests for `muppetd`: a real server on a real socket,
//! concurrent clients, and verdict parity with a single-threaded
//! oracle computed directly on the core library.

use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use muppet_daemon::json::Json;
use muppet_daemon::{serve, Endpoint, Op, Request, ServerConfig, SessionSpec};

/// A unique socket path under the system temp dir.
fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("muppetd-{}-{name}.sock", std::process::id()))
}

fn start(name: &str, workers: usize) -> (muppet_daemon::ServerHandle, PathBuf) {
    let path = socket_path(name);
    // These tests exercise concurrency and cancellation, not the
    // slow-loris defense (tests/daemon_overload.rs covers that): on a
    // saturated single-core CI host a multi-hundred-KB request line can
    // legitimately dribble in slower than the production read timeout,
    // so give the test servers a generous one.
    let overload = muppet_daemon::OverloadConfig {
        read_timeout_ms: 300_000,
        ..muppet_daemon::OverloadConfig::default()
    };
    let handle = serve(ServerConfig {
        socket: Some(path.clone()),
        tcp: None,
        workers,
        engine: muppet_daemon::EngineConfig::default(),
        overload,
    })
    .expect("serve");
    (handle, path)
}

/// Single-threaded oracle verdicts, computed cold on the core library
/// (no daemon, no cache, no warm state).
struct Oracle {
    strict_reconcile: bool,
    relaxed_reconcile: bool,
    conformance_success: bool,
    istio_consistent: bool,
}

fn oracle() -> Oracle {
    let strict = SessionSpec::paper_strict().load().expect("load strict");
    let relaxed = SessionSpec::paper_relaxed().load().expect("load relaxed");
    let s = strict.core.session();
    let strict_reconcile = s
        .reconcile(muppet::ReconcileMode::HardBounds)
        .expect("reconcile")
        .success;
    let istio_consistent = s
        .local_consistency(strict.core.party_id("istio").expect("party"))
        .expect("consistency")
        .ok;
    let r = relaxed.core.session();
    let relaxed_reconcile = r
        .reconcile(muppet::ReconcileMode::HardBounds)
        .expect("reconcile")
        .success;
    let tenant = relaxed.core.party_id("istio").expect("party");
    let preferred = relaxed.core.deployed(tenant).expect("deployed");
    let conformance_success = muppet::conformance::run_conformance(
        &r,
        relaxed.core.party_id("k8s").expect("party"),
        tenant,
        Some(&preferred),
    )
    .expect("conformance")
    .success;
    Oracle {
        strict_reconcile,
        relaxed_reconcile,
        conformance_success,
        istio_consistent,
    }
}

#[test]
fn sixty_four_concurrent_clients_match_oracle() {
    let want = oracle();
    // Paper sanity: the strict tables conflict, the relaxed ones don't.
    assert!(!want.strict_reconcile);
    assert!(want.relaxed_reconcile);
    let (handle, path) = start("conc", 8);

    let mut joins = Vec::new();
    for i in 0..64u32 {
        let path = path.clone();
        joins.push(thread::spawn(move || -> (u32, Result<muppet_daemon::Response, String>) {
            let req = match i % 4 {
                0 => {
                    Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict())
                }
                1 => {
                    Request::new(Op::Reconcile).with_spec(SessionSpec::paper_relaxed())
                }
                2 => {
                    Request::new(Op::CheckConformance).with_spec(SessionSpec::paper_relaxed())
                }
                _ => {
                    let mut r = Request::new(Op::CheckConsistency)
                        .with_spec(SessionSpec::paper_strict());
                    r.party = Some("istio".into());
                    r
                }
            };
            let mut req = req;
            req.id = Some(format!("client-{i}"));
            let resp = Endpoint::Unix(path).roundtrip(&req, Some(Duration::from_secs(60)));
            (i, resp)
        }));
    }
    for j in joins {
        let (i, resp) = j.join().expect("client thread");
        let resp = resp.unwrap_or_else(|e| panic!("client {i}: {e}"));
        assert!(resp.ok, "client {i}: {:?}", resp.error);
        assert_eq!(resp.id.as_deref(), Some(format!("client-{i}").as_str()));
        let verdict = match i % 4 {
            0..=2 => resp.result.get("success").and_then(Json::as_bool),
            _ => resp.result.get("ok").and_then(Json::as_bool),
        };
        let expected = match i % 4 {
            0 => want.strict_reconcile,
            1 => want.relaxed_reconcile,
            2 => want.conformance_success,
            _ => want.istio_consistent,
        };
        assert_eq!(verdict, Some(expected), "client {i} verdict mismatch");
    }

    // Stats must be coherent after the storm.
    let stats = Endpoint::Unix(path.clone())
        .roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(10)))
        .expect("stats");
    assert!(stats.ok);
    let requests = stats.result.get("requests").and_then(Json::as_u64).unwrap();
    assert!(requests >= 64, "served {requests} < 64");
    let hits = stats
        .result
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap();
    // 64 clients over 4 distinct requests: most are repeats.
    assert!(hits >= 32, "expected heavy cache reuse, got {hits} hits");
    assert_eq!(
        stats.result.get("sessions").and_then(Json::as_u64),
        Some(2),
        "exactly two distinct specs were in play"
    );

    handle.stop();
    handle.wait();
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

#[test]
fn shutdown_request_stops_the_server() {
    let (handle, path) = start("shutdown", 2);
    let resp = Endpoint::Unix(path)
        .roundtrip(&Request::new(Op::Shutdown), Some(Duration::from_secs(10)))
        .expect("shutdown");
    assert!(resp.ok);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !handle.is_stopped() && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.is_stopped(), "shutdown request must stop the server");
    handle.wait();
}

#[test]
fn tcp_listener_smoke() {
    let handle = serve(ServerConfig {
        socket: None,
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 2,
        engine: muppet_daemon::EngineConfig::default(),
        overload: muppet_daemon::OverloadConfig::default(),
    })
    .expect("serve tcp");
    let addr = handle.tcp_addr().expect("bound tcp addr");
    let req = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
    let resp = Endpoint::Tcp(addr.to_string())
        .roundtrip(&req, Some(Duration::from_secs(30)))
        .expect("tcp roundtrip");
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.result.get("success").and_then(Json::as_bool), Some(false));
    handle.stop();
    handle.wait();
}

#[test]
fn malformed_lines_get_error_responses_not_disconnects() {
    let (handle, path) = start("malformed", 2);
    let mut client = Endpoint::Unix(path).connect(Some(Duration::from_secs(10))).unwrap();
    for bad in ["this is not json", "{\"v\":1}", "{\"v\":99,\"op\":\"stats\"}", "[1,2,3]"] {
        // Reuse the protocol plumbing by writing raw lines through a
        // throwaway Request? No — these are intentionally invalid, so
        // go through send/recv on the raw client.
        client.send_raw(bad).unwrap();
        let resp = client.recv().unwrap();
        assert!(!resp.ok, "line {bad:?} must be rejected");
        assert!(resp.error.is_some());
    }
    // The connection is still usable afterwards.
    let resp = client
        .roundtrip(&Request::new(Op::Stats))
        .expect("stats after garbage");
    assert!(resp.ok);
    handle.stop();
    handle.wait();
}

/// Unwrap-audit regression: every client-reachable parse path (the
/// hardened JSON reader, request field coercion, spec decoding, session
/// handles) must answer adversarial input with a protocol error on the
/// same connection — never a panic, never a disconnect.
#[test]
fn adversarial_requests_get_protocol_errors() {
    let (handle, path) = start("adversarial", 2);
    let mut client = Endpoint::Unix(path).connect(Some(Duration::from_secs(10))).unwrap();
    // One probe per audited parse path in the daemon sources.
    let probes: Vec<(&str, String)> = vec![
        // json.rs: depth limit (64) on nested arrays.
        ("deep nesting", format!("{}1{}", "[".repeat(200), "]".repeat(200))),
        // json.rs: lone surrogate escape in a string.
        ("lone surrogate", r#"{"v":1,"op":"stats","id":"\ud800"}"#.to_string()),
        // json.rs: truncated escape at end of input.
        ("truncated escape", r#"{"v":1,"op":"stats","id":"\u00"#.to_string()),
        // proto.rs: numeric fields must be non-negative integers.
        ("negative n", r#"{"v":1,"op":"trace","n":-3}"#.to_string()),
        ("string timeout", r#"{"v":1,"op":"stats","timeout_ms":"soon"}"#.to_string()),
        ("float retries", r#"{"v":1,"op":"stats","retries":1.5}"#.to_string()),
        // spec.rs: spec must be an object with string content fields.
        ("spec wrong type", r#"{"v":1,"op":"reconcile","spec":"yaml"}"#.to_string()),
        ("spec missing fields", r#"{"v":1,"op":"reconcile","spec":{}}"#.to_string()),
        (
            "spec numeric manifests",
            r#"{"v":1,"op":"reconcile","spec":{"manifests":7,"k8s_goals":"","istio_goals":""}}"#
                .to_string(),
        ),
        // engine.rs: session handles must be 32 hex chars.
        ("bad handle", r#"{"v":1,"op":"reconcile","session":"zz"}"#.to_string()),
        (
            "unknown handle",
            r#"{"v":1,"op":"reconcile","session":"00000000000000000000000000000000"}"#.to_string(),
        ),
    ];
    for (what, line) in probes {
        client.send_raw(&line).unwrap_or_else(|e| panic!("{what}: send failed: {e}"));
        let resp = client.recv().unwrap_or_else(|e| panic!("{what}: daemon died: {e}"));
        assert!(!resp.ok, "{what}: must be rejected, got {:?}", resp.result.to_line());
        assert!(resp.error.is_some(), "{what}: error text required");
    }
    // The connection survived every probe.
    let resp = client.roundtrip(&Request::new(Op::Stats)).expect("stats after probes");
    assert!(resp.ok);
    handle.stop();
    handle.wait();
}

/// The observability surface over the wire: a solve leaves a span tree
/// the `trace` op can serve, and `stats` carries the aggregated
/// registry (cache counters, per-op latency histograms).
#[test]
fn trace_op_serves_span_trees_and_stats_carries_obs() {
    let (handle, path) = start("trace", 2);
    let ep = Endpoint::Unix(path);
    let req = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
    let solved = ep.roundtrip(&req, Some(Duration::from_secs(60))).unwrap();
    assert!(solved.ok, "{:?}", solved.error);

    let mut trace_req = Request::new(Op::Trace);
    trace_req.n = Some(16);
    let traced = ep.roundtrip(&trace_req, Some(Duration::from_secs(10))).unwrap();
    assert!(traced.ok, "{:?}", traced.error);
    assert_eq!(traced.result.get("enabled").and_then(Json::as_bool), Some(true));
    let traces = traced.result.get("traces").and_then(Json::as_arr).expect("traces array");
    assert!(!traces.is_empty(), "solve must leave at least one root trace");
    // Find the reconcile request's tree: root "request" with op attr,
    // a result_key joinable against the cache, and the solve phases
    // underneath.
    let tree = traces
        .iter()
        .find(|t| {
            t.get("attrs").and_then(|a| a.get("op")).and_then(Json::as_str)
                == Some("reconcile")
        })
        .expect("a reconcile trace");
    assert_eq!(tree.get("name").and_then(Json::as_str), Some("request"));
    let attrs = tree.get("attrs").expect("attrs");
    assert!(
        attrs.get("result_key").and_then(Json::as_str).map(str::len) == Some(32),
        "span must carry the cache fingerprint: {}",
        tree.to_line()
    );
    // Phase spans are nested somewhere under the request root.
    fn find_span<'j>(node: &'j Json, name: &str) -> Option<&'j Json> {
        if node.get("name").and_then(Json::as_str) == Some(name) {
            return Some(node);
        }
        node.get("children")
            .and_then(Json::as_arr)
            .into_iter()
            .flatten()
            .find_map(|c| find_span(c, name))
    }
    for phase in ["reconcile", "ground", "encode", "search"] {
        assert!(
            find_span(tree, phase).is_some(),
            "phase {phase:?} missing from trace: {}",
            tree.to_line()
        );
    }
    let search = find_span(tree, "search").unwrap();
    assert!(
        search.get("counters").and_then(|c| c.get("propagations")).is_some(),
        "search span must carry solver counters: {}",
        search.to_line()
    );

    // Aggregated registry in stats.
    let stats = ep.roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(10))).unwrap();
    let obs = stats.result.get("obs").expect("obs section");
    let counters = obs.get("counters").expect("obs counters");
    assert!(
        counters.get("daemon.cache.lookups").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "cache counters must aggregate into stats"
    );
    let hist = obs
        .get("histograms")
        .and_then(|h| h.get("daemon.op.reconcile.latency_us"))
        .expect("per-op latency histogram");
    assert!(hist.get("count").and_then(Json::as_u64).unwrap_or(0) >= 1);
    handle.stop();
    handle.wait();
}

#[test]
fn warm_sessions_reuse_encoded_groups_across_requests() {
    let (handle, path) = start("warm", 2);
    let ep = Endpoint::Unix(path);
    // Two reconciles of the same spec with different modes: the second
    // must reuse the warm session's encoded groups rather than
    // re-grounding from scratch.
    let mut hard = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
    hard.mode = Some("hard".into());
    let mut blame = Request::new(Op::Reconcile).with_spec(SessionSpec::paper_strict());
    blame.mode = Some("blameable".into());
    let r1 = ep.roundtrip(&hard, Some(Duration::from_secs(30))).unwrap();
    let r2 = ep.roundtrip(&blame, Some(Duration::from_secs(30))).unwrap();
    assert!(r1.ok && r2.ok);
    assert!(!r2.cached, "different mode is a different result key");
    let stats = ep
        .roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(10)))
        .unwrap();
    let reused = stats
        .result
        .get("warm_groups")
        .and_then(|w| w.get("reused"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(reused > 0, "second reconcile must reuse warm groups");
    handle.stop();
    handle.wait();
}

#[test]
fn cli_serve_and_client_subprocesses() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("muppetd-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("d.sock");
    let spec = SessionSpec::paper_strict();
    let manifests = dir.join("m.yaml");
    let k8s = dir.join("k8s.csv");
    let istio = dir.join("istio.csv");
    std::fs::File::create(&manifests)
        .unwrap()
        .write_all(spec.manifests.as_bytes())
        .unwrap();
    std::fs::File::create(&k8s).unwrap().write_all(spec.k8s_goals.as_bytes()).unwrap();
    std::fs::File::create(&istio)
        .unwrap()
        .write_all(spec.istio_goals.as_bytes())
        .unwrap();

    let cli = env!("CARGO_BIN_EXE_muppet-cli");
    let mut server = Command::new(cli)
        .args(["serve", "--socket", sock.to_str().unwrap(), "--workers", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    // Wait for the socket to accept connections.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if sock.exists()
            && Endpoint::Unix(sock.clone())
                .roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(5)))
                .is_ok()
        {
            break;
        }
        assert!(Instant::now() < deadline, "daemon did not come up");
        thread::sleep(Duration::from_millis(50));
    }

    // Strict goals conflict → the client maps success=false to exit 1.
    let out = Command::new(cli)
        .args([
            "client",
            "reconcile",
            "--socket",
            sock.to_str().unwrap(),
            "--manifests",
            manifests.to_str().unwrap(),
            "--k8s-goals",
            k8s.to_str().unwrap(),
            "--istio-goals",
            istio.to_str().unwrap(),
        ])
        .output()
        .expect("run client");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let line = String::from_utf8_lossy(&out.stdout);
    let resp = muppet_daemon::Response::from_line(line.trim()).expect("client prints JSON");
    assert!(resp.ok);
    assert_eq!(resp.result.get("success").and_then(Json::as_bool), Some(false));

    // stats over the CLI: exit 0.
    let out = Command::new(cli)
        .args(["client", "stats", "--socket", sock.to_str().unwrap()])
        .output()
        .expect("run client stats");
    assert_eq!(out.status.code(), Some(0));

    // shutdown stops the server process.
    let out = Command::new(cli)
        .args(["client", "shutdown", "--socket", sock.to_str().unwrap()])
        .output()
        .expect("run client shutdown");
    assert_eq!(out.status.code(), Some(0));
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match server.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "serve exited with {status}");
                break;
            }
            None if Instant::now() >= deadline => {
                let _ = server.kill();
                panic!("serve did not exit after shutdown");
            }
            None => thread::sleep(Duration::from_millis(50)),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that disconnects mid-solve must have its request cancelled
/// (satellite: the reader thread's per-request `CancelToken` is stacked
/// into every portfolio worker's budget, so one `cancel()` reaches all
/// of them). The scenario below runs for tens of seconds in a debug
/// build if the cancellation is lost; the drain deadline is far below
/// that. Also checks the queue accounting: a request that fans out to 4
/// portfolio workers holds exactly one in-flight slot.
#[test]
fn client_disconnect_cancels_in_flight_portfolio_solve() {
    use muppet_bench::scenario::{generate, ScenarioParams};
    let sc = generate(ScenarioParams {
        services: 40,
        istio_goals: 48,
        k8s_goals: 4,
        conflict_fraction: 0.0,
        flexible_fraction: 0.3,
        extra_ports: 8,
        ..ScenarioParams::default()
    });
    let (manifests, k8s_goals, istio_goals, extra_ports) = sc.wire_content();
    let spec = SessionSpec {
        manifests,
        k8s_goals,
        istio_goals,
        mtls: false,
        extra_ports,
        ..SessionSpec::default()
    };
    let (handle, path) = start("kill", 2);
    let mut req = Request::new(Op::Reconcile).with_spec(spec);
    req.threads = Some(4);
    let mut victim = Endpoint::Unix(path.clone())
        .connect(Some(Duration::from_secs(60)))
        .unwrap();
    victim.send(&req).unwrap();
    let ep = Endpoint::Unix(path);
    // Stats polling must itself survive a saturated host (the full
    // suite runs many test binaries at once): retry transient
    // timeouts until the caller's deadline.
    let poll_stats = |deadline: Instant| loop {
        match ep.roundtrip(&Request::new(Op::Stats), Some(Duration::from_secs(10))) {
            Ok(stats) => break stats,
            Err(e) => {
                assert!(Instant::now() < deadline, "stats roundtrip kept failing: {e}");
                thread::sleep(Duration::from_millis(50));
            }
        }
    };
    // Wait for a worker to pick the job up. Generous: on a saturated
    // single-core host, scenario generation, the large request line and
    // the debug-build JSON parse can all crawl.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = poll_stats(deadline);
        let busy = stats.result.get("in_flight").and_then(Json::as_u64).unwrap();
        if busy >= 1 {
            // One request, one slot — regardless of portfolio fan-out.
            assert_eq!(busy, 1, "fanned-out request must count as one slot");
            break;
        }
        assert!(Instant::now() < deadline, "solve never started");
        thread::sleep(Duration::from_millis(10));
    }
    // Kill the client mid-solve.
    drop(victim);
    // The worker must come back promptly: budget cancellation polls run
    // between solver propagations and between group encodings, and the
    // reader's EOF handler fires within one read. 15 s absorbs CI noise
    // but stays far below the uncancelled solve time (a minute or more
    // in a debug build).
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = poll_stats(deadline);
        let busy = stats.result.get("in_flight").and_then(Json::as_u64).unwrap();
        if busy == 0 {
            let depth = stats.result.get("queue_depth").and_then(Json::as_u64).unwrap();
            assert_eq!(depth, 0, "queue slot must be released");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect did not cancel the in-flight solve"
        );
        thread::sleep(Duration::from_millis(20));
    }
    handle.stop();
    handle.wait();
}

/// Streaming watch over a real socket: one connection opens a watch and
/// pushes deltas, a second subscribes, and a verdict-flipping delta
/// arrives at the subscriber as an unsolicited `"event"` line while
/// neutral deltas stay silent.
#[test]
fn watch_subscribers_get_verdict_flip_events() {
    let (handle, path) = start("watch", 2);
    let ep = Endpoint::Unix(path);
    let mut pusher = ep.connect(Some(Duration::from_secs(60))).unwrap();
    let opened = pusher
        .roundtrip(&Request::new(Op::Watch).with_spec(SessionSpec::paper_relaxed()))
        .unwrap();
    assert!(opened.ok, "{:?}", opened.error);
    let id = opened
        .result
        .get("watch")
        .and_then(Json::as_str)
        .expect("watch id")
        .to_string();
    assert!(opened
        .result
        .get("initial")
        .and_then(|i| i.get("verdict"))
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("sat"));

    let mut subscriber = ep.connect(Some(Duration::from_secs(60))).unwrap();
    let mut sub = Request::new(Op::Subscribe);
    sub.watch = Some(id.clone());
    let s = subscriber.roundtrip(&sub).unwrap();
    assert!(s.ok, "{:?}", s.error);

    // Re-upserting the ban row that is already present changes nothing:
    // no dirtied groups, no flip — and therefore no event line.
    let mut push = Request::new(Op::PushDelta);
    push.watch = Some(id.clone());
    push.delta = Some("upsert-ban 23 *".into());
    let quiet = pusher.roundtrip(&push).unwrap();
    assert!(quiet.ok, "{:?}", quiet.error);
    assert_eq!(quiet.result.get("flipped").and_then(Json::as_bool), Some(false));

    // Banning a port a concrete goal row needs flips the verdict; the
    // subscriber's next line must be that event (nothing was pushed for
    // the quiet delta before it).
    push.delta = Some("upsert-ban 16000 *".into());
    let flip = pusher.roundtrip(&push).unwrap();
    assert!(flip.ok, "{:?}", flip.error);
    assert_eq!(flip.result.get("flipped").and_then(Json::as_bool), Some(true));
    let line = subscriber.recv_line().expect("event line");
    let event = muppet_daemon::json::parse(line.trim()).expect("event parses");
    assert_eq!(event.get("event").and_then(Json::as_str), Some("verdict_flip"));
    assert_eq!(event.get("watch").and_then(Json::as_str), Some(id.as_str()));
    assert!(event
        .get("verdict")
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("unsat"));

    // unwatch tears the stream down; further pushes error.
    let mut un = Request::new(Op::Unwatch);
    un.watch = Some(id.clone());
    assert!(pusher.roundtrip(&un).unwrap().ok);
    let gone = pusher.roundtrip(&push).unwrap();
    assert!(!gone.ok, "push after unwatch must error");
    handle.stop();
    handle.wait();
}

/// Verdicts from the daemon must be identical whether served cold,
/// warm, or from cache — spot-checked here over the socket; the
/// exhaustive randomized version lives in `daemon_cache_props.rs`.
#[test]
fn repeat_requests_are_cached_and_identical() {
    let (handle, path) = start("cached", 2);
    let ep = Endpoint::Unix(path);
    let req = Request::new(Op::CheckConformance).with_spec(SessionSpec::paper_relaxed());
    let cold = ep.roundtrip(&req, Some(Duration::from_secs(30))).unwrap();
    assert!(cold.ok && !cold.cached);
    let warm = ep.roundtrip(&req, Some(Duration::from_secs(30))).unwrap();
    assert!(warm.ok && warm.cached);
    assert_eq!(cold.result.to_line(), warm.result.to_line());
    // Oracle parity.
    let want = oracle();
    assert_eq!(
        cold.result.get("success").and_then(Json::as_bool),
        Some(want.conformance_success)
    );
    handle.stop();
    handle.wait();
}
