//! Fault localization: debugging the "sudden failure" of Sec. 3.
//!
//! Run with `cargo run --example fault_localization`.
//!
//! The Istio administrator "experiences sudden failures because
//! reachability from the frontend to backend is broken. Particularly
//! frustrating … is the fact that they had not pushed any recent changes
//! that would impact reachability." This example plays both halves:
//!
//! 1. **The outage, observed**: the dataplane simulator shows the
//!    backend → frontend:23 flow working, then dying the moment the K8s
//!    admin pushes the port-23 ban — with the decision trace naming the
//!    policy that killed it.
//! 2. **The diagnosis, solver-aided**: the Istio admin checks their
//!    (unchanged!) goals against the envelope they received; the failing
//!    envelope predicate and the minimal blame core localize the
//!    conflict to the two clashing intentions, turning hours of
//!    cross-team debugging into a one-line answer.

use muppet::ReconcileMode;
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_logic::Instance;
use muppet_mesh::{evaluate_flow, Flow, Mesh, NetworkPolicy};

fn main() {
    let mesh = Mesh::paper_example();
    let flow = Flow::new("test-backend", "test-frontend", 26, 23);

    // ── 1. Before the push: everything works ────────────────────────
    let before = evaluate_flow(&mesh, &[], &[], &flow);
    println!("before the K8s push, backend → frontend:23:");
    for line in &before.trace {
        println!("  {line}");
    }
    assert!(before.allowed);

    // The K8s admin pushes the global ban (without telling anyone).
    let ban = NetworkPolicy::deny_port_for_all("deny-telnet", 23);
    let after = evaluate_flow(&mesh, std::slice::from_ref(&ban), &[], &flow);
    println!("\nafter the push:");
    for line in &after.trace {
        println!("  {line}");
    }
    assert!(!after.allowed);
    println!("  → the trace names the culprit policy: \"deny-telnet\"");

    // ── 2. Solver-aided diagnosis ────────────────────────────────────
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);

    // (a) The envelope the K8s provider sent. The Istio admin applies it
    // to their *current* configuration (the deployment as-is).
    let envelope = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .expect("envelope");
    let current = mv.structure_instance(); // deployment: fe exposed on 23
    let failing = envelope.check(&current, s.universe());
    println!("\nenvelope check against the Istio admin's current configuration:");
    if failing.is_empty() {
        println!("  compatible (unexpected)");
    } else {
        for &i in &failing {
            let p = &envelope.predicates[i];
            println!("  VIOLATED predicate (from {}):", p.source_goal);
            let mut printer = muppet_logic::pretty::Printer::new(s.vocab(), s.universe());
            for (v, n) in &p.var_names {
                printer.name_var(*v, n.clone());
            }
            print!("{}", printer.english_numbered(&p.formula));
            println!(
                "  (none of these hold for src = test-backend, dst = test-frontend)"
            );
        }
    }

    // (b) The blame core pinpoints which *goals* clash.
    let rec = s.reconcile(ReconcileMode::HardBounds).expect("solve");
    assert!(!rec.success);
    println!("\nminimal blame core (goal-level localization):");
    for name in &rec.core {
        println!("  - {name}");
    }
    println!(
        "\nconclusion: the outage is not an Istio regression — it is the \
         interaction\nbetween the new K8s port-23 ban and the Istio \
         reachability goal for port 23."
    );
}
