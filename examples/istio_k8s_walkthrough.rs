//! The complete Sec. 3 walkthrough, end to end, from the file formats
//! administrators actually use:
//!
//! 1. the mesh structure arrives as Kubernetes Service **YAML**
//!    (Fig. 1);
//! 2. goals arrive as **CSV** tables (Fig. 2 for K8s, Fig. 3 for Istio);
//! 3. reconciliation fails, blaming exactly the two clashing rows;
//! 4. the envelope `E_{K8s→Istio}` is produced (Fig. 5, both renderings);
//! 5. the Istio admin relaxes to the Fig. 4 table; synthesis succeeds;
//! 6. the synthesized configurations are decompiled back into
//!    NetworkPolicy / AuthorizationPolicy **YAML** manifests and
//!    verified flow-by-flow on the dataplane simulator.
//!
//! Run with `cargo run --example istio_k8s_walkthrough`.

use muppet::{NamedGoal, Party, ReconcileMode, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{Instance, PartyId};
use muppet_mesh::manifest::{emit_authorization_policy, emit_network_policy, parse_manifests};
use muppet_mesh::{evaluate_flow, Flow, MeshVocab};

/// The Fig. 1 mesh as Service manifests (what `kubectl get svc -o yaml`
/// would show).
const SERVICES_YAML: &str = "\
---
apiVersion: v1
kind: Service
metadata:
  name: test-frontend
  labels:
    app: test-frontend
spec:
  ports:
  - port: 23
---
apiVersion: v1
kind: Service
metadata:
  name: test-backend
  labels:
    app: test-backend
spec:
  ports:
  - port: 25
  - port: 12000
---
apiVersion: v1
kind: Service
metadata:
  name: test-db
  labels:
    app: test-db
spec:
  ports:
  - port: 16000
";

/// Fig. 2: the K8s admin's goal table.
const K8S_GOALS_CSV: &str = "port,perm,selector\n23,DENY,*\n";

/// Fig. 3: the Istio admin's initial goal table.
const ISTIO_GOALS_CSV: &str = "\
srcService,dstService,srcPort,dstPort
test-frontend,test-backend,24,25
test-backend,test-frontend,26,23
test-backend,test-db,14000,16000
test-db,test-backend,10000,12000
";

/// Fig. 4: the relaxed table (existential ports ∃w ∃x ∃y ∃z).
const ISTIO_RELAXED_CSV: &str = "\
srcService,dstService,srcPort,dstPort
test-frontend,test-backend,?w,?x
test-backend,test-frontend,?y,?z
test-backend,test-db,14000,16000
test-db,test-backend,10000,12000
";

fn build_session<'a>(mv: &'a MeshVocab, istio_csv: &str) -> Session<'a> {
    let k8s_rows = K8sGoal::parse_csv(K8S_GOALS_CSV).expect("fig2 parses");
    let istio_rows = IstioGoal::parse_csv(istio_csv).expect("istio goals parse");
    let mut vocab = mv.vocab.clone();
    let k8s_goals = translate_k8s_goals(&k8s_rows, mv, &mut vocab).expect("translate");
    let istio_goals = translate_istio_goals(&istio_rows, mv, &mut vocab).expect("translate");
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut s = Session::new(&mv.universe, vocab, Instance::new());
    s.add_axioms(axioms);
    s.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    s.add_party(
        Party::new(mv.istio_party, "istio-admin")
            .with_goals(istio_goals.into_iter().map(NamedGoal::from)),
    );
    s
}

fn main() {
    // ── 1. Ingest the mesh from YAML ────────────────────────────────
    let bundle = parse_manifests(SERVICES_YAML).expect("service manifests parse");
    println!("loaded {} services from YAML", bundle.mesh.services().len());
    // Port universe: mesh ports + the goal-table ports + spares.
    let mv = MeshVocab::new(
        &bundle.mesh,
        [24, 26, 10000, 14000],
        PartyId(0),
        PartyId(1),
    );

    // ── 2–3. Strict goals conflict ──────────────────────────────────
    let strict = build_session(&mv, ISTIO_GOALS_CSV);
    let rec = strict.reconcile(ReconcileMode::HardBounds).expect("solve");
    println!("\nstrict goals (Figs. 2+3): success = {}", rec.success);
    for name in &rec.core {
        println!("  conflict involves: {name}");
    }

    // ── 4. The envelope (Fig. 5) ────────────────────────────────────
    let envelope = strict
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .expect("envelope");
    println!("\n─ E_{{K8s→Istio}} (Alloy) ─");
    print!("{}", envelope.render_alloy(strict.vocab(), strict.universe()));
    println!("─ E_{{K8s→Istio}} (English) ─");
    print!(
        "{}",
        envelope.render_english(strict.vocab(), strict.universe())
    );

    // ── 5. Relax to Fig. 4 and synthesize ───────────────────────────
    let relaxed = build_session(&mv, ISTIO_RELAXED_CSV);
    let rec = relaxed.reconcile(ReconcileMode::HardBounds).expect("solve");
    println!("\nrelaxed goals (Fig. 4): success = {}", rec.success);
    assert!(rec.success, "the paper's relaxation must synthesize");

    // ── 6. Decompile to production YAML and verify on the dataplane ─
    let k8s_cfg = &rec.configs[&mv.k8s_party];
    let istio_cfg = &rec.configs[&mv.istio_party];
    let k8s_policies = mv.decompile_k8s(k8s_cfg);
    let istio_policies = mv.decompile_istio(istio_cfg);
    let updated_mesh = mv.decompile_services(istio_cfg);

    println!("\nsynthesized K8s NetworkPolicies:");
    for p in &k8s_policies {
        println!("---\n{}", emit_network_policy(p).trim_end());
    }
    println!("\nsynthesized Istio AuthorizationPolicies:");
    for p in &istio_policies {
        println!("---\n{}", emit_authorization_policy(p).trim_end());
    }
    println!("\nupdated service exposure:");
    for s in updated_mesh.services() {
        println!("  {} now listens on {:?}", s.name, s.ports);
    }

    // Dataplane check: the Fig. 1 reachability intents hold on some
    // ports, and port 23 is dead everywhere.
    println!("\ndataplane verification:");
    let pairs = [
        ("test-frontend", "test-backend"),
        ("test-backend", "test-frontend"),
        ("test-backend", "test-db"),
        ("test-db", "test-backend"),
    ];
    for (src, dst) in pairs {
        let reachable_port = updated_mesh
            .service(dst)
            .expect("exists")
            .ports
            .iter()
            .copied()
            .find(|&p| {
                evaluate_flow(
                    &updated_mesh,
                    &k8s_policies,
                    &istio_policies,
                    &Flow::new(src, dst, 0, p),
                )
                .allowed
            });
        match reachable_port {
            Some(p) => println!("  {src} → {dst}: reachable on port {p}"),
            None => println!("  {src} → {dst}: UNREACHABLE (bug!)"),
        }
        assert!(reachable_port.is_some());
    }
    for svc in updated_mesh.services() {
        for dst in updated_mesh.services() {
            let d = evaluate_flow(
                &updated_mesh,
                &k8s_policies,
                &istio_policies,
                &Flow::new(svc.name.clone(), dst.name.clone(), 0, 23),
            );
            assert!(!d.allowed, "{} → {}:23 must be blocked", svc.name, dst.name);
        }
    }
    println!("  port 23 is unreachable from everywhere: ban enforced ✓");
}
