//! Quickstart: detect a multi-party conflict and read the envelope.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Reproduces the paper's Sec. 3 story in ~60 lines of API use:
//! the K8s admin bans port 23 (Fig. 2), the Istio admin needs the
//! backend to reach the frontend on port 23 (Fig. 3), reconciliation
//! fails with a two-goal blame core, and the envelope `E_{K8s→Istio}`
//! (Fig. 5) tells the Istio admin exactly what would make them
//! compatible.

use muppet::ReconcileMode;
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_logic::Instance;

fn main() {
    // The Fig. 1 mesh: frontend, backend, database.
    let mv = vocab();
    println!("mesh services:");
    for s in mv.mesh().services() {
        println!("  {} listens on {:?}", s.name, s.ports);
    }

    // Strict goals (Figs. 2 + 3).
    let strict = session(&mv, IstioTable::Fig3);
    let rec = strict
        .reconcile(ReconcileMode::HardBounds)
        .expect("solver runs");
    println!("\nreconciliation with the strict Fig. 3 goals:");
    if rec.success {
        println!("  unexpected success");
    } else {
        println!("  UNSAT — conflicting goals (minimal core):");
        for name in &rec.core {
            println!("    - {name}");
        }
    }

    // The envelope the K8s provider would send (Fig. 5).
    let envelope = strict
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .expect("envelope computes");
    println!("\nE_{{K8s→Istio}} in Alloy-ish syntax:");
    print!("{}", envelope.render_alloy(strict.vocab(), strict.universe()));
    println!("\nE_{{K8s→Istio}} in English:");
    print!(
        "{}",
        envelope.render_english(strict.vocab(), strict.universe())
    );
    let leak = envelope.leakage(strict.universe());
    println!(
        "privacy: the envelope reveals only {:?} from the provider's side",
        leak.revealed_atoms
    );

    // Relaxed goals (Fig. 4) make the joint problem satisfiable.
    let relaxed = session(&mv, IstioTable::Fig4);
    let rec = relaxed
        .reconcile(ReconcileMode::HardBounds)
        .expect("solver runs");
    println!("\nreconciliation with the relaxed Fig. 4 goals:");
    if rec.success {
        println!("  SAT — Muppet synthesized compatible configurations:");
        for (party, config) in &rec.configs {
            let name = relaxed.party(*party).map(|p| p.name.clone()).unwrap();
            println!("    {name}: {} settings", config.total_tuples());
        }
        // Verify end to end.
        let mut combined = relaxed.structure().clone();
        for c in rec.configs.values() {
            combined = combined.union(c);
        }
        let all_hold = relaxed
            .check_goals(&combined)
            .into_iter()
            .all(|(_, holds)| holds);
        println!("  every goal verified against the delivered configs: {all_hold}");
    } else {
        println!("  unexpected failure: {:?}", rec.core);
    }
}
