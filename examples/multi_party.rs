//! More than two parties (Sec. 7, "Extending Beyond 2 Parties") and
//! beyond networking (Sec. 7, "Beyond Microservices").
//!
//! Run with `cargo run --example multi_party`.
//!
//! Three teams compose a product from feature flags — the paper's
//! observation that "many software systems are built as compositions of
//! features, where different teams produce individual components". Each
//! team owns an `enabled_<team>(Feature)` relation; features interact:
//!
//! * platform team: telemetry must be on; legacy auth must be off;
//! * app team: wants SSO, which requires the platform's legacy auth
//!   *or* the security team's OIDC provider;
//! * security team: refuses to enable OIDC until audit logging is on —
//!   which is the platform team's telemetry flag.
//!
//! The example computes the multi-source envelope `E_{{platform,app}→
//! security}` (with per-sender obligation tags) and then runs a 3-party
//! round-robin negotiation to convergence.

use std::collections::BTreeMap;

use muppet::negotiate::{run_negotiation, FnNegotiator, Negotiator, Stubborn};
use muppet::{NamedGoal, Party, ReconcileMode, Session};
use muppet_logic::{
    Domain, Formula, Instance, PartyId, Term, Universe, Vocabulary,
};

fn main() {
    // ── Domain: one sort of features, one relation per team ─────────
    let mut universe = Universe::new();
    let feature = universe.add_sort("Feature");
    let telemetry = universe.add_atom(feature, "telemetry");
    let legacy_auth = universe.add_atom(feature, "legacy-auth");
    let sso = universe.add_atom(feature, "sso");
    let oidc = universe.add_atom(feature, "oidc");
    let audit = universe.add_atom(feature, "audit-logging");

    let platform = PartyId(0);
    let app = PartyId(1);
    let security = PartyId(2);

    let mut vocab = Vocabulary::new();
    let en_platform = vocab.add_simple_rel(
        "enabled_platform",
        vec![feature],
        Domain::Party(platform),
    );
    let en_app = vocab.add_simple_rel("enabled_app", vec![feature], Domain::Party(app));
    let en_sec = vocab.add_simple_rel("enabled_security", vec![feature], Domain::Party(security));

    let on = |rel, atom| Formula::pred(rel, [Term::Const(atom)]);

    // ── Goals ────────────────────────────────────────────────────────
    let platform_goals = vec![
        NamedGoal::hard("telemetry always on", on(en_platform, telemetry)),
        NamedGoal::hard(
            "legacy auth retired",
            Formula::not(on(en_platform, legacy_auth)),
        ),
    ];
    let app_goals = vec![NamedGoal::hard(
        "SSO works",
        Formula::and([
            on(en_app, sso),
            Formula::or([on(en_platform, legacy_auth), on(en_sec, oidc)]),
        ]),
    )];
    // The security team initially refuses OIDC outright (hard), which
    // conflicts with the app team's SSO requirement given the platform's
    // legacy-auth retirement.
    let security_goals = vec![
        NamedGoal::hard("no OIDC without audit", {
            Formula::implies(on(en_sec, oidc), on(en_platform, audit))
        }),
        NamedGoal::soft("OIDC stays off", Formula::not(on(en_sec, oidc))),
    ];

    let mut session = Session::new(&universe, vocab, Instance::new());
    session.add_party(Party::new(platform, "platform-team").with_goals(platform_goals));
    session.add_party(Party::new(app, "app-team").with_goals(app_goals));
    session.add_party(Party::new(security, "security-team").with_goals(security_goals));

    // ── Conflict ─────────────────────────────────────────────────────
    let rec = session.reconcile(ReconcileMode::Blameable).expect("solve");
    println!("initial reconciliation: success = {}", rec.success);
    for c in &rec.core {
        println!("  conflict involves: {c}");
    }

    // ── Multi-source envelope E_{{platform,app}→security} ───────────
    // Each sender's fixed configuration is its local-consistency
    // witness.
    let wp = session
        .local_consistency(platform)
        .expect("lc")
        .witness
        .expect("consistent");
    let wa = session
        .local_consistency(app)
        .expect("lc")
        .witness
        .expect("consistent");
    let env = session
        .compute_multi_envelope(&[(platform, wp), (app, wa)], security)
        .expect("envelope");
    println!("\nE_{{platform,app}}→security ({} predicates):", env.predicates.len());
    let names = session.party_names();
    for p in &env.predicates {
        let sender = &names[&p.obligated_by];
        let mut printer =
            muppet_logic::pretty::Printer::new(session.vocab(), session.universe());
        for (v, n) in &p.var_names {
            printer.name_var(*v, n.clone());
        }
        println!(
            "  [obligation from {sender} / {}] {}",
            p.source_goal,
            printer.alloy(&p.formula)
        );
    }

    // ── 3-party round-robin negotiation ─────────────────────────────
    // The security team concedes its *soft* "OIDC stays off" goal when
    // the blame core names it; everyone else stands firm.
    let mut negotiators: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    negotiators.insert(platform, Box::new(Stubborn));
    negotiators.insert(app, Box::new(Stubborn));
    negotiators.insert(
        security,
        Box::new(FnNegotiator(|party: &mut Party, feedback| {
            if let Some(i) = party.goals.iter().position(|g| {
                !g.hard && feedback.core.iter().any(|c| c.contains(&g.name))
            }) {
                println!("  security-team concedes: {}", party.goals[i].name);
                party.goals.remove(i);
                true
            } else {
                false
            }
        })),
    );
    println!("\nnegotiation:");
    let report = run_negotiation(&mut session, &mut negotiators, 12).expect("negotiation");
    for line in &report.trace {
        println!("  {line}");
    }
    assert!(report.success, "3-party negotiation must converge");

    // ── Verify the delivered feature matrix ──────────────────────────
    let mut combined = Instance::new();
    for c in report.configs.values() {
        combined = combined.union(c);
    }
    println!("\ndelivered feature flags:");
    for (rel, label) in [
        (en_platform, "platform"),
        (en_app, "app"),
        (en_sec, "security"),
    ] {
        let flags: Vec<&str> = combined
            .tuples(rel)
            .map(|t| universe.atom_name(t[0]))
            .collect();
        println!("  {label}: {flags:?}");
    }
    let all_ok = session
        .check_goals(&combined)
        .into_iter()
        .all(|(_, holds)| holds);
    println!("all remaining goals verified: {all_ok}");
    assert!(all_ok);
    // The interesting chain: SSO on ⇒ OIDC on ⇒ audit logging on.
    assert!(combined.holds(en_app, &[sso]));
    assert!(combined.holds(en_sec, &[oidc]));
    assert!(combined.holds(en_platform, &[audit]));
    println!("feature chain SSO → OIDC → audit-logging is in place ✓");
}
