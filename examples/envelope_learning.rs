//! Sec. 7 extensions in action: learned envelopes and why/why-not
//! explanations.
//!
//! Run with `cargo run --example envelope_learning`.
//!
//! 1. **Learning** (*Envelopes for Stateful Systems*): treat the K8s
//!    goals as an opaque oracle and characterize the Istio-side solution
//!    space by iterated solving with prime-implicant generalization —
//!    "iterating until the solution space is fully characterized …
//!    rather than halting at the first correct candidate". The learned
//!    DNF is compared against the syntactic Alg. 3 envelope.
//! 2. **Explanation** (*Human Factors / Presentation*): apply the
//!    envelope to the current deployment and render a "why not" — which
//!    (src, dst) pairs violate it, and the verdict of every escape
//!    hatch.

use muppet::explain::explain_predicate;
use muppet::learn::{learn_envelope, Scope};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_logic::Instance;

fn main() {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);

    // ── 1. Learn the envelope over a focused scope ───────────────────
    let fe = mv.svc_atom("test-frontend").unwrap();
    let be = mv.svc_atom("test-backend").unwrap();
    let db = mv.svc_atom("test-db").unwrap();
    let p23 = mv.port_atom(23).unwrap();
    let scope = Scope::new(vec![
        (mv.listens, vec![fe, p23]),
        (mv.istio_eg_deny, vec![fe, p23]),
        (mv.istio_eg_deny, vec![be, p23]),
        (mv.istio_eg_deny, vec![db, p23]),
        (mv.istio_in_guard, vec![fe]),
        (mv.istio_in_deny, vec![fe, fe]),
        (mv.istio_in_deny, vec![fe, be]),
        (mv.istio_in_deny, vec![fe, db]),
    ]);
    println!(
        "learning E_{{K8s→Istio}} over a scope of {} candidate settings…",
        scope.len()
    );
    let learned = learn_envelope(
        &s,
        mv.k8s_party,
        &Instance::new(),
        mv.istio_party,
        &scope,
        128,
    )
    .expect("learning runs");
    println!(
        "learned {} prime-implicant cube(s) in {} solver queries (complete: {})",
        learned.cubes.len(),
        learned.queries,
        learned.complete
    );
    let printer = muppet_logic::pretty::Printer::new(s.vocab(), s.universe());
    for (i, cube) in learned.cubes.iter().enumerate() {
        println!("  cube {}: {}", i + 1, printer.alloy(&cube.to_formula()));
    }

    // Cross-check against the syntactic envelope on every scope config.
    let syntactic = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .expect("envelope");
    let mut agree = 0;
    for mask in 0..(1u32 << scope.len()) {
        let mut config = Instance::new();
        for (bit, (rel, tuple)) in scope.tuples.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                config.insert(*rel, tuple.clone());
            }
        }
        if learned.check(&config) == syntactic.check(&config, s.universe()).is_empty() {
            agree += 1;
        }
    }
    println!(
        "learned vs syntactic envelope: agree on {agree}/{} scope configurations",
        1u32 << scope.len()
    );
    assert_eq!(agree, 1u32 << scope.len());

    // ── 2. Why-not explanation for the current deployment ────────────
    println!("\napplying the envelope to the current deployment:");
    let deployment = mv.structure_instance();
    for p in &syntactic.predicates {
        let exp = explain_predicate(p, &deployment, s.vocab(), s.universe(), 3);
        print!("{}", exp.render());
    }
    println!(
        "\n(the fix options correspond to Fig. 5's disjuncts: unexpose port 23,\n\
         add ingress denies/locks on the frontend, or egress denies on the senders)"
    );
}
