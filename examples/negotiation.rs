//! Solver-aided negotiation (Fig. 9): offers, counter-offers and
//! round-robin revisions mediated by the solver.
//!
//! Run with `cargo run --example negotiation`.
//!
//! Three episodes:
//!
//! 1. **Stubborn vs stubborn** — neither party revises; the solver can
//!    only report that direct human communication is needed (the paper:
//!    "the solver mediation helps make administrators aware that such
//!    communication is necessary").
//! 2. **Cooperative goals** — the Istio admin treats its goals as soft
//!    and drops the one the blame core names; negotiation converges and
//!    the configurations are delivered.
//! 3. **Counter-offers** — the Istio admin has hard *commitments* (an
//!    egress lockdown) rather than conflicting goals; the mediator
//!    returns the minimally-edited counter-offer (Sec. 7's
//!    target-oriented presentation mode) and the admin adopts it.

use std::collections::BTreeMap;

use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
use muppet::{NamedGoal, Party, Session};
use muppet_bench::paper::vocab;
use muppet_goals::{fig2, translate_istio_goals, translate_k8s_goals, IstioGoal};
use muppet_logic::{Instance, PartyId};
use muppet_mesh::MeshVocab;

fn build_session(mv: &MeshVocab, soft_istio: bool) -> Session<'_> {
    let mut vocab = mv.vocab.clone();
    let k8s_goals = translate_k8s_goals(&fig2(), mv, &mut vocab).expect("translate");
    let istio_goals =
        translate_istio_goals(&IstioGoal::fig3(), mv, &mut vocab).expect("translate");
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut s = Session::new(&mv.universe, vocab, Instance::new());
    s.add_axioms(axioms);
    s.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    s.add_party(Party::new(mv.istio_party, "istio-admin").with_goals(
        istio_goals.into_iter().map(|g| {
            let mut g = NamedGoal::from(g);
            g.hard = !soft_istio;
            g
        }),
    ));
    s
}

fn episode(name: &str, soft_istio: bool, istio_strategy: Box<dyn Negotiator>) {
    println!("=== episode: {name} ===");
    let mv = vocab();
    let mut session = build_session(&mv, soft_istio);
    let mut negotiators: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    negotiators.insert(mv.k8s_party, Box::new(Stubborn));
    negotiators.insert(mv.istio_party, istio_strategy);
    let report = run_negotiation(&mut session, &mut negotiators, 10).expect("negotiation runs");
    for line in &report.trace {
        println!("  {line}");
    }
    println!(
        "  outcome: {} after {} round(s)",
        if report.success { "AGREED" } else { "NO AGREEMENT" },
        report.rounds
    );
    if report.success {
        let mut combined = session.structure().clone();
        for c in report.configs.values() {
            combined = combined.union(c);
        }
        let ok = session
            .check_goals(&combined)
            .into_iter()
            .all(|(_, holds)| holds);
        println!("  delivered configurations verify all remaining goals: {ok}");
    }
    println!();
}

fn counter_offer_episode() {
    use muppet::negotiate::AcceptCounterOffer;
    use muppet_goals::{translate_k8s_goals, K8sGoal};
    println!("=== episode: mediator counter-offers against hard commitments ===");
    let mv = vocab();
    let mut vocab2 = mv.vocab.clone();
    // K8s requirement it cannot enforce alone: backend:25 stays open.
    let k8s_goals = translate_k8s_goals(
        &K8sGoal::parse_csv("25,ALLOW,test-backend\n").unwrap(),
        &mv,
        &mut vocab2,
    )
    .expect("goal translates");
    let axioms = mv.well_formedness_axioms(&mut vocab2);
    let mut session = Session::new(&mv.universe, vocab2, Instance::new());
    session.add_axioms(axioms);
    session.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    session.add_party(Party::new(mv.istio_party, "istio-admin"));
    // The Istio admin's commitments: current exposure plus an egress
    // lockdown on the frontend (fe may send nothing), everything else
    // fixed off.
    let fe = mv.svc_atom("test-frontend").unwrap();
    let mut offer = muppet_logic::PartialInstance::new();
    offer.fix_from(mv.listens, &mv.structure_instance());
    offer.require(mv.istio_eg_guard, vec![fe]);
    for rel in mv.istio_rels() {
        offer.bound(rel);
    }
    session.party_mut(mv.istio_party).unwrap().offer = offer;

    let mut negotiators: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    negotiators.insert(mv.k8s_party, Box::new(Stubborn));
    negotiators.insert(mv.istio_party, Box::new(AcceptCounterOffer));
    let report = run_negotiation(&mut session, &mut negotiators, 10).expect("negotiation runs");
    for line in &report.trace {
        println!("  {line}");
    }
    println!(
        "  outcome: {} after {} round(s)",
        if report.success { "AGREED" } else { "NO AGREEMENT" },
        report.rounds
    );
    println!(
        "  the istio admin's adopted counter-offer commits {} setting(s)",
        session
            .party(mv.istio_party)
            .unwrap()
            .offer
            .bounded_rels()
            .map(|r| session.party(mv.istio_party).unwrap().offer.lower(r).count())
            .sum::<usize>()
    );
    println!();
}

fn main() {
    episode("both administrators stubborn", false, Box::new(Stubborn));
    episode(
        "istio admin drops blamed soft goals",
        true,
        Box::new(DropBlamedSoftGoals),
    );
    counter_offer_episode();
}
