//! `muppet-cli` — the tool a mesh administrator actually runs.
//!
//! Inputs are the production artifacts the paper names: Kubernetes /
//! Istio YAML manifests for structure and deployed policies, and CSV
//! goal tables (Figs. 2–4). Subcommands:
//!
//! ```text
//! muppet-cli check      --manifests m.yaml --k8s-goals k.csv --istio-goals i.csv
//!     evaluate every goal against the *deployed* configuration, with
//!     dataplane traces for the violations (fault localization)
//! muppet-cli reconcile  --manifests m.yaml --k8s-goals k.csv --istio-goals i.csv
//!     Alg. 2: can the goals be jointly satisfied? UNSAT ⇒ minimal blame
//! muppet-cli envelope   --manifests m.yaml --k8s-goals k.csv [--to k8s]
//!     Alg. 3: print E_{K8s→Istio} (or the reverse) in Alloy + English
//! muppet-cli synthesize --manifests m.yaml --k8s-goals k.csv --istio-goals i.csv
//!     synthesize and print conforming YAML policy manifests
//! muppet-cli explain    --manifests m.yaml --k8s-goals k.csv
//!     apply the envelope to the deployed configuration and print a
//!     "why not": the failing (src, dst) pairs with a verdict for every
//!     escape hatch (Sec. 7's why/why-not presentation)
//! muppet-cli gen        --scenario large-1000-sat --out dir/   (or --list)
//!     materialize a corpus scenario from `crates/scenario` into the
//!     same artifacts the subcommands above consume, plus provenance
//! ```
//!
//! Common flags: `--domain <name>` picks the registered
//! [`muppet_domain::ConfigDomain`] interpreting the inputs (default:
//! `mesh`, the paper's K8s/Istio pair; `--list-domains` shows all);
//! `--goals <file>` (repeatable, one per party slot) carries goal
//! tables for non-mesh domains; `--extra-ports 24,26,…` widens the
//! port universe (spare ports for ∃-port goals); `--mtls` enables the
//! PeerAuthentication extension where the domain supports it.

use std::process::ExitCode;

use muppet::{default_threads, Budget, ReconcileMode, Reconciliation, RetryPolicy, Session};
use muppet_domain::{ConfigDomain, DomainModel};
use muppet_goals::IstioGoal;
use muppet_logic::PartyId;
use muppet_mesh::{evaluate_flow_full, Flow};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("muppet-cli: {e}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    domain: Option<String>,
    manifests: Vec<String>,
    k8s_goals: Option<String>,
    istio_goals: Option<String>,
    /// Generic per-party goal-table files, in the domain's slot order
    /// (repeatable `--goals`). Wins over the two mesh alias flags.
    goals: Vec<String>,
    extra_ports: Vec<u16>,
    mtls: bool,
    to: Option<String>,
    timeout_ms: Option<u64>,
    conflict_budget: Option<u64>,
    retries: Option<u32>,
    threads: Option<usize>,
    // Daemon-mode flags (`serve` / `client`).
    socket: Option<String>,
    tcp: Option<String>,
    workers: Option<usize>,
    cache_cap: Option<usize>,
    party: Option<String>,
    mode: Option<String>,
    max_rounds: Option<u64>,
    // Overload / robustness flags (serve side).
    max_queue_depth: Option<usize>,
    max_inflight_per_conn: Option<usize>,
    retry_after_ms: Option<u64>,
    drain_deadline_ms: Option<u64>,
    read_timeout_ms: Option<u64>,
    // Client-side backoff flags.
    retry_attempts: Option<u32>,
    retry_base_ms: Option<u64>,
    retry_deadline_ms: Option<u64>,
    no_retry: bool,
    // Observability flags.
    trace_json: Option<String>,
    trace_n: Option<u64>,
    // `gen` flags.
    scenario: Option<String>,
    seed: Option<u64>,
    out: Option<String>,
    list: bool,
    // `watch` flags.
    deltas: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        domain: None,
        manifests: Vec::new(),
        k8s_goals: None,
        istio_goals: None,
        goals: Vec::new(),
        extra_ports: Vec::new(),
        mtls: false,
        to: None,
        timeout_ms: None,
        conflict_budget: None,
        retries: None,
        threads: None,
        socket: None,
        tcp: None,
        workers: None,
        cache_cap: None,
        party: None,
        mode: None,
        max_rounds: None,
        max_queue_depth: None,
        max_inflight_per_conn: None,
        retry_after_ms: None,
        drain_deadline_ms: None,
        read_timeout_ms: None,
        retry_attempts: None,
        retry_base_ms: None,
        retry_deadline_ms: None,
        no_retry: false,
        trace_json: None,
        trace_n: None,
        scenario: None,
        seed: None,
        out: None,
        list: false,
        deltas: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--domain" => opts.domain = Some(value("--domain")?),
            "--manifests" => opts.manifests.push(value("--manifests")?),
            "--k8s-goals" => opts.k8s_goals = Some(value("--k8s-goals")?),
            "--istio-goals" => opts.istio_goals = Some(value("--istio-goals")?),
            "--goals" => opts.goals.push(value("--goals")?),
            "--to" => opts.to = Some(value("--to")?),
            "--extra-ports" => {
                for p in value("--extra-ports")?.split(',') {
                    opts.extra_ports.push(
                        p.trim()
                            .parse()
                            .map_err(|_| format!("bad port {p:?} in --extra-ports"))?,
                    );
                }
            }
            "--mtls" => opts.mtls = true,
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms needs a number of milliseconds".to_string())?,
                )
            }
            "--conflict-budget" => {
                opts.conflict_budget = Some(
                    value("--conflict-budget")?
                        .parse()
                        .map_err(|_| "--conflict-budget needs a conflict count".to_string())?,
                )
            }
            "--retries" => {
                opts.retries = Some(
                    value("--retries")?
                        .parse()
                        .map_err(|_| "--retries needs an attempt count".to_string())?,
                )
            }
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs a worker count".to_string())?,
                )
            }
            "--socket" => opts.socket = Some(value("--socket")?),
            "--tcp" => opts.tcp = Some(value("--tcp")?),
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs a thread count".to_string())?,
                )
            }
            "--cache-cap" => {
                opts.cache_cap = Some(
                    value("--cache-cap")?
                        .parse()
                        .map_err(|_| "--cache-cap needs an entry count".to_string())?,
                )
            }
            "--max-queue-depth" => {
                opts.max_queue_depth = Some(
                    value("--max-queue-depth")?
                        .parse()
                        .map_err(|_| "--max-queue-depth needs a job count".to_string())?,
                )
            }
            "--max-inflight-per-conn" => {
                opts.max_inflight_per_conn = Some(
                    value("--max-inflight-per-conn")?
                        .parse()
                        .map_err(|_| "--max-inflight-per-conn needs a request count".to_string())?,
                )
            }
            "--retry-after-ms" => {
                opts.retry_after_ms = Some(
                    value("--retry-after-ms")?.parse().map_err(|_| {
                        "--retry-after-ms needs a number of milliseconds".to_string()
                    })?,
                )
            }
            "--drain-deadline-ms" => {
                opts.drain_deadline_ms = Some(
                    value("--drain-deadline-ms")?.parse().map_err(|_| {
                        "--drain-deadline-ms needs a number of milliseconds".to_string()
                    })?,
                )
            }
            "--read-timeout-ms" => {
                opts.read_timeout_ms = Some(
                    value("--read-timeout-ms")?.parse().map_err(|_| {
                        "--read-timeout-ms needs a number of milliseconds".to_string()
                    })?,
                )
            }
            "--retry-attempts" => {
                opts.retry_attempts = Some(
                    value("--retry-attempts")?
                        .parse()
                        .map_err(|_| "--retry-attempts needs an attempt count".to_string())?,
                )
            }
            "--retry-base-ms" => {
                opts.retry_base_ms = Some(
                    value("--retry-base-ms")?.parse().map_err(|_| {
                        "--retry-base-ms needs a number of milliseconds".to_string()
                    })?,
                )
            }
            "--retry-deadline-ms" => {
                opts.retry_deadline_ms = Some(
                    value("--retry-deadline-ms")?.parse().map_err(|_| {
                        "--retry-deadline-ms needs a number of milliseconds".to_string()
                    })?,
                )
            }
            "--no-retry" => opts.no_retry = true,
            "--trace-json" => opts.trace_json = Some(value("--trace-json")?),
            "--n" => {
                opts.trace_n = Some(
                    value("--n")?
                        .parse()
                        .map_err(|_| "--n needs a trace count".to_string())?,
                )
            }
            "--scenario" => opts.scenario = Some(value("--scenario")?),
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an unsigned integer".to_string())?,
                )
            }
            "--out" => opts.out = Some(value("--out")?),
            "--deltas" => opts.deltas = Some(value("--deltas")?),
            "--list" => opts.list = true,
            "--party" => opts.party = Some(value("--party")?),
            "--mode" => opts.mode = Some(value("--mode")?),
            "--max-rounds" => {
                opts.max_rounds = Some(
                    value("--max-rounds")?
                        .parse()
                        .map_err(|_| "--max-rounds needs a round count".to_string())?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Portfolio width: `--threads` wins, then the `MUPPET_THREADS`
/// environment variable, then the machine default (cores, capped).
/// `None` means nothing was given anywhere — callers that forward the
/// count to a daemon leave the request field unset in that case so the
/// server's own default applies.
fn requested_threads(opts: &Opts) -> Option<usize> {
    opts.threads.or_else(|| {
        std::env::var("MUPPET_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
}

fn effective_threads(opts: &Opts) -> usize {
    requested_threads(opts).unwrap_or_else(default_threads).clamp(1, 64)
}

/// The loaded inputs of a subcommand: the wire-level spec (shared with
/// the daemon, so CLI and daemon verdicts come from one pipeline) and
/// the domain-built model.
struct Loaded {
    spec: muppet_daemon::SessionSpec,
    domain: &'static dyn ConfigDomain,
    model: DomainModel,
}

fn load(opts: &Opts) -> Result<Loaded, String> {
    let spec = inline_spec(opts)?.ok_or("at least one --manifests file is required")?;
    let (domain, model) = spec.build_model()?;
    Ok(Loaded { spec, domain, model })
}

/// A recipient party from `--to`, defaulting to the domain's slot-1
/// party (for the mesh domain: `istio`, as before).
fn to_party(l: &Loaded, opts: &Opts) -> Result<PartyId, String> {
    match &opts.to {
        Some(name) => l.model.party_id(name),
        None => l
            .model
            .parties
            .get(1)
            .map(|p| p.id)
            .ok_or_else(|| "domain has no recipient party".to_string()),
    }
}

/// The full deployed configuration: structure plus every party's
/// currently-deployed snapshot (policies and owned deployment facts).
fn deployed_all(l: &Loaded) -> Result<muppet_logic::Instance, String> {
    let mut combined = l.model.structure.clone();
    for p in &l.model.parties {
        combined = combined.union(&l.domain.deployed_snapshot(&l.model, p.id)?);
    }
    Ok(combined)
}

fn build_session<'a>(l: &'a Loaded, opts: &Opts) -> Result<Session<'a>, String> {
    let mut session = l.model.session();
    // Resource governance: the deadline (if any) starts now and covers
    // every solver query this invocation runs.
    let mut budget = Budget::unlimited();
    if let Some(t) = opts.timeout_ms {
        budget = budget.with_timeout(std::time::Duration::from_millis(t));
    }
    session.set_budget(budget);
    session.set_threads(effective_threads(opts));
    if opts.conflict_budget.is_some() || opts.retries.is_some() {
        session.set_retry_policy(RetryPolicy::new(
            opts.conflict_budget.unwrap_or(u64::MAX),
            opts.retries.unwrap_or(1),
        ));
    }
    Ok(session)
}

/// Print the structured report for a reconciliation that ran out of
/// budget, and the knobs that raise it. Returns the exit code.
fn report_exhausted(rec: &Reconciliation) -> ExitCode {
    let ex = rec.exhausted.as_ref().expect("caller checked");
    println!("UNKNOWN: {ex}.");
    if !rec.core.is_empty() {
        println!("Partial (unminimized) blame before exhaustion:");
        for c in &rec.core {
            println!("  - {c}");
        }
    }
    println!(
        "Raise --timeout-ms, --conflict-budget, or --retries and re-run \
         for a definite verdict."
    );
    ExitCode::from(3)
}

/// Install the observability sinks `--trace-json` asks for. Tracing
/// stays off (one relaxed load per would-be span) unless the flag is
/// given.
fn init_obs(opts: &Opts) -> Result<(), String> {
    if let Some(path) = &opts.trace_json {
        muppet_obs::set_json_sink(std::path::Path::new(path))
            .map_err(|e| format!("cannot open --trace-json {path}: {e}"))?;
        muppet_obs::set_enabled(true);
    }
    Ok(())
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let prep = |rest: &[String]| -> Result<Opts, String> {
        let opts = parse_opts(rest)?;
        init_obs(&opts)?;
        Ok(opts)
    };
    let code = match cmd.as_str() {
        "domains" => {
            println!("{:<10} {:<24} parties", "name", "roles");
            for d in muppet_domain::registry() {
                println!("{:<10} {:<24} {}", d.name(), d.roles().join(", "), d.roles().len());
            }
            return Ok(ExitCode::SUCCESS);
        }
        "check" => check(&prep(rest)?),
        "reconcile" => reconcile(&prep(rest)?),
        "envelope" => envelope(&prep(rest)?),
        "explain" => explain(&prep(rest)?),
        "synthesize" => synthesize(&prep(rest)?),
        "gen" => gen_cmd(&prep(rest)?),
        "serve" => serve_cmd(&prep(rest)?),
        "watch" => watch_cmd(&prep(rest)?),
        "client" => {
            let Some((op, crest)) = rest.split_first() else {
                return Err("client needs an operation (try `muppet-cli help`)".into());
            };
            client_cmd(op, &prep(crest)?)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?} (try `muppet-cli help`)")),
    };
    // Flush any trace events buffered by the JSON-Lines sink.
    muppet_obs::clear_json_sink();
    code
}

const USAGE: &str = "\
muppet-cli — solver-aided multi-party configuration

USAGE:
  muppet-cli <check|reconcile|envelope|synthesize|explain> [flags]
  muppet-cli domains
      list the registered configuration domains and their party roles
  muppet-cli gen    --scenario <name> [--seed <n>] --out <dir> | gen --list
      materialize a corpus scenario (manifests.yaml + goal CSVs +
      scenario.json provenance; DIMACS .cnf for CNF-kind entries)
  muppet-cli serve  --socket <path> [--tcp <addr>] [--workers <n>] [--cache-cap <n>]
  muppet-cli client <op> (--socket <path> | --tcp <addr>) [flags]
      <op> ∈ open_session, check_consistency, reconcile, extract_envelope,
             check_conformance, negotiate_round, stats, trace, shutdown,
             watch, push_delta, subscribe, unwatch;
      file flags below build the inline session spec; responses are
      printed as one JSON line
  muppet-cli watch  (--socket <path> | --tcp <addr>) --manifests m.yaml
                    [--k8s-goals k.csv] [--istio-goals i.csv]
                    [--deltas edits.txt]
      streaming reconfiguration: open a watch on the daemon, subscribe
      to verdict_flip events, then replay one config delta per line
      from --deltas (or stdin) as push_delta requests; every response
      and event is printed as one JSON line, and the watch is closed
      on EOF (see `gen --scenario stream-policy-churn` for a delta file)

FLAGS:
  --domain <name>        registered domain interpreting the inputs
                         (default: mesh; `muppet-cli domains` lists all)
  --manifests <file>     YAML manifests (repeatable): Services and any
                         deployed policy objects the domain understands
  --k8s-goals <file>     mesh CSV goal table: port, perm, selector
  --istio-goals <file>   mesh CSV goal table: srcService, dstService,
                         srcPort, dstPort
  --goals <file>         per-party goal table, repeatable in the
                         domain's slot order (wins over the two mesh
                         alias flags above)
  --extra-ports <list>   comma-separated spare ports for ∃-port goals
  --to <party>           envelope recipient, a role or display name
                         (default: the domain's slot-1 party, e.g. istio)
  --mtls                 enable the PeerAuthentication extension
  --timeout-ms <n>       wall-clock budget for all solver work (default: none)
  --conflict-budget <n>  solver conflict cap per attempt (default: none)
  --retries <n>          total solve attempts; each retry escalates the
                         conflict cap by the Luby sequence (default: 1)
  --threads <n>          portfolio solver workers per query; 1 = plain
                         sequential CDCL (default: $MUPPET_THREADS, else
                         available cores capped at 8); on serve this sets
                         the daemon-wide default, on client it overrides
                         per request
  --socket <path>        daemon Unix socket (serve: listen; client: connect)
  --tcp <addr>           daemon TCP address, e.g. 127.0.0.1:7878
  --workers <n>          serve: worker threads (default: 4)
  --cache-cap <n>        serve: result-cache entries (default: 1024)
  --max-queue-depth <n>  serve: pending jobs admitted before shedding
                         with status \"overloaded\" (default: 256)
  --max-inflight-per-conn <n> serve: outstanding requests per connection
                         before shedding (default: 32)
  --retry-after-ms <n>   serve: backoff hint attached to shed responses
                         (default: 50)
  --drain-deadline-ms <n> serve: graceful-drain budget on shutdown; in-flight
                         work past it is cancelled (default: 5000)
  --read-timeout-ms <n>  serve: kill connections whose request line stalls
                         mid-write for this long; 0 disables (default: 30000)
  --retry-attempts <n>   client: attempts when the daemon sheds with
                         \"overloaded\" or the connection fails (default: 5)
  --retry-base-ms <n>    client: base backoff delay, doubled per attempt
                         and floored by the server's retry_after_ms hint
                         (default: 25)
  --retry-deadline-ms <n> client: total budget across all attempts and
                         backoff sleeps (default: 30000)
  --no-retry             client: fail immediately instead of backing off
  --party <name>         client: party for check_consistency (a role
                         like k8s, or a display name)
  --mode <hard|blameable> client: reconcile mode (default: hard)
  --max-rounds <n>       client: negotiation rounds (default: 4)
  --deltas <file>        watch: config edits, one `ConfigDelta` line each
                         (`add-service`, `upsert-ban`, `upsert-goal`, …);
                         omitted = read deltas from stdin
  --scenario <name>      gen: corpus entry to materialize (gen --list shows all)
  --seed <n>             gen: override the generator seed (mesh / pup-sat kinds)
  --out <dir>            gen: output directory (created if missing)
  --list                 gen: print the scenario corpus and exit
  --trace-json <file>    stream one JSON-Lines event per closed span
                         (pipeline phases with timings and solver
                         counters) to <file>
  --n <count>            client trace: span trees to return (default: 8)

EXIT CODES:
  0 = compatible / satisfiable / success
  1 = conflict detected (details on stdout)
  2 = usage or input error
  3 = budget exhausted before a verdict (raise --timeout-ms,
      --conflict-budget, or --retries)";

/// `check`: evaluate the goals against the *deployed* configuration.
fn check(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let deployed = deployed_all(&l)?;
    let results = session.check_goals(&deployed);
    let mut failures = 0;
    for (name, holds) in &results {
        println!("[{}] {name}", if *holds { "ok " } else { "FAIL" });
        if !holds {
            failures += 1;
        }
    }
    if failures == 0 {
        println!("all {} goal(s) hold under the deployed configuration", results.len());
        return Ok(ExitCode::SUCCESS);
    }
    // Fault localization (mesh domain only): show dataplane traces for
    // the broken reachability rows.
    if let Some(pay) = muppet_domain::mesh::payload(&l.model) {
        println!("\n{failures} goal(s) violated. Dataplane diagnosis:");
        let rows =
            IstioGoal::parse_csv(&l.spec.goal_texts()[1]).map_err(|e| e.to_string())?;
        for g in &rows {
            if let (muppet_goals::PortSpec::Port(dp), Some(_)) =
                (&g.dst_port, pay.bundle.mesh.service(&g.dst))
            {
                let d = evaluate_flow_full(
                    &pay.bundle.mesh,
                    &pay.bundle.k8s_policies,
                    &pay.bundle.istio_policies,
                    &pay.bundle.peer_auth,
                    &Flow::new(g.src.clone(), g.dst.clone(), 0, *dp),
                );
                if !d.allowed {
                    println!("  {} → {}:{} is blocked:", g.src, g.dst, dp);
                    for line in &d.trace {
                        println!("    {line}");
                    }
                }
            }
        }
    } else {
        println!("\n{failures} goal(s) violated.");
    }
    Ok(ExitCode::from(1))
}

/// `reconcile`: Alg. 2 with blame.
fn reconcile(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let rec = session
        .reconcile(ReconcileMode::Blameable)
        .map_err(|e| e.to_string())?;
    if rec.exhausted.is_some() {
        return Ok(report_exhausted(&rec));
    }
    if rec.success {
        println!("SAT: the goal tables are jointly satisfiable.");
        for (party, config) in &rec.configs {
            let name = session.party(*party).map(|p| p.name.clone()).unwrap();
            println!("  {name}: {} setting(s) in a witness configuration", config.total_tuples());
        }
        Ok(ExitCode::SUCCESS)
    } else {
        println!("UNSAT: the goal tables conflict. Minimal blame:");
        for c in &rec.core {
            println!("  - {c}");
        }
        Ok(ExitCode::from(1))
    }
}

/// `envelope`: Alg. 3, both renderings.
fn envelope(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let to = to_party(&l, opts)?;
    // Every other party is a sender; each sender's fixed configuration
    // is whatever its deployed policies say. Two-party domains reduce
    // to the paper's `E_{from→to}`.
    let mut senders = Vec::new();
    for from in l.model.others(to) {
        senders.push((from, l.domain.deployed(&l.model, from)?));
    }
    let env = session
        .compute_multi_envelope(&senders, to)
        .map_err(|e| e.to_string())?;
    if env.is_trivial() {
        if env.self_satisfied.is_empty() {
            println!("(the envelope is trivial: the recipient is unconstrained)");
        } else {
            println!(
                "(the envelope is trivial: the sender's deployed configuration \
                 already guarantees its goals on its own)"
            );
            for g in &env.self_satisfied {
                println!("  self-satisfied: {g}");
            }
        }
        return Ok(ExitCode::SUCCESS);
    }
    println!("── Alloy ──");
    print!("{}", env.render_alloy(session.vocab(), session.universe()));
    println!("── English ──");
    print!("{}", env.render_english(session.vocab(), session.universe()));
    let leak = env.leakage(session.universe());
    println!(
        "── privacy: reveals {} concrete setting(s): {:?}",
        leak.revealed_atoms.len(),
        leak.revealed_atoms
    );
    if !env.impossible.is_empty() {
        println!("IMPOSSIBLE goals (no recipient configuration can satisfy them):");
        for g in &env.impossible {
            println!("  - {g}");
        }
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

/// `explain`: why/why-not for the deployed configuration against the
/// sender's envelope.
fn explain(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let to = to_party(&l, opts)?;
    let mut senders = Vec::new();
    for from in l.model.others(to) {
        senders.push((from, l.domain.deployed(&l.model, from)?));
    }
    let env = session
        .compute_multi_envelope(&senders, to)
        .map_err(|e| e.to_string())?;
    if env.is_trivial() {
        println!("(the envelope is trivial; nothing to explain)");
        return Ok(ExitCode::SUCCESS);
    }
    // The recipient's deployed configuration, in its structural context.
    let recipient_config = l
        .model
        .structure
        .union(&l.domain.deployed_snapshot(&l.model, to)?);
    let mut violated = 0;
    for p in &env.predicates {
        let exp = muppet::explain::explain_predicate(
            p,
            &recipient_config,
            session.vocab(),
            session.universe(),
            5,
        );
        if !exp.holds {
            violated += 1;
        }
        print!("{}", exp.render());
    }
    Ok(if violated == 0 {
        println!("the deployed configuration satisfies the envelope");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `synthesize`: joint synthesis, emitted as YAML manifests.
fn synthesize(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let rec = session
        .reconcile(ReconcileMode::Blameable)
        .map_err(|e| e.to_string())?;
    if rec.exhausted.is_some() {
        return Ok(report_exhausted(&rec));
    }
    if !rec.success {
        println!("UNSAT: cannot synthesize. Minimal blame:");
        for c in &rec.core {
            println!("  - {c}");
        }
        return Ok(ExitCode::from(1));
    }
    let yaml = l
        .domain
        .emit_solution(&l.model, &rec.configs)
        .ok_or_else(|| {
            format!("domain {:?} has no manifest emitter; cannot synthesize", l.model.domain)
        })?;
    print!("{yaml}");
    // Sanity: the emitted configuration satisfies every goal.
    let mut combined = session.structure().clone();
    for c in rec.configs.values() {
        combined = combined.union(c);
    }
    let all_ok = session.check_goals(&combined).iter().all(|(_, h)| *h);
    if !all_ok {
        return Err("internal error: synthesized configuration fails verification".into());
    }
    eprintln!("# synthesized configuration verified against all goals");
    Ok(ExitCode::SUCCESS)
}

/// `gen`: materialize a corpus scenario (or a reseeded variant) into a
/// directory of the same artifacts the other subcommands consume —
/// `manifests.yaml`, `k8s-goals.csv`, `istio-goals.csv` — plus a
/// `scenario.json` provenance stamp (params, seed, expected verdict).
/// CNF-kind entries emit `<name>.cnf` in DIMACS instead of manifests.
fn gen_cmd(opts: &Opts) -> Result<ExitCode, String> {
    use muppet_scenario::corpus::{self, Kind};
    use muppet_scenario::paper::IstioTable;

    if opts.list {
        println!("{:<18} {:<6} {:<6} note", "name", "tier", "label");
        for e in corpus::CORPUS {
            println!("{:<18} {:<6} {:<6} {}", e.name, e.tier.name(), e.expected.label(), e.note);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let name = opts
        .scenario
        .as_deref()
        .ok_or("gen needs --scenario <name> (see --list) or --list")?;
    let entry = corpus::entry(name)
        .ok_or_else(|| format!("unknown scenario {name:?} (see `muppet-cli gen --list`)"))?;
    let out = opts.out.as_deref().ok_or("gen needs --out <dir>")?;
    let dir = std::path::Path::new(out);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out}: {e}"))?;
    let write = |file: &str, content: &str| -> Result<(), String> {
        let path = dir.join(file);
        std::fs::write(&path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))
    };

    match entry.kind {
        Kind::Mesh(mut params) => {
            if let Some(seed) = opts.seed {
                params.seed = seed;
            }
            let s = muppet_scenario::generate(params);
            let (manifests, k8s, istio, extras) = s.wire_content();
            write("manifests.yaml", &manifests)?;
            write("k8s-goals.csv", &k8s)?;
            write("istio-goals.csv", &istio)?;
            write("scenario.json", &(s.provenance_json(entry.name) + "\n"))?;
            let extras_csv: Vec<String> = extras.iter().map(|p| p.to_string()).collect();
            println!(
                "wrote {out}/{{manifests.yaml,k8s-goals.csv,istio-goals.csv,scenario.json}} \
                 ({} services, expected {})",
                s.mesh.services().len(),
                s.expected_label()
            );
            println!(
                "run: muppet-cli reconcile --manifests {out}/manifests.yaml \
                 --k8s-goals {out}/k8s-goals.csv --istio-goals {out}/istio-goals.csv \
                 --extra-ports {}",
                extras_csv.join(",")
            );
        }
        Kind::PaperStrict | Kind::PaperRelaxed => {
            if opts.seed.is_some() {
                return Err(format!("{name} is a fixed paper instance; --seed does not apply"));
            }
            let mesh = muppet_mesh::Mesh::paper_example();
            let manifests =
                muppet_mesh::manifest::emit_bundle(&muppet_mesh::manifest::ManifestBundle {
                    mesh,
                    ..Default::default()
                });
            let rows = match entry.kind {
                Kind::PaperStrict => IstioGoal::fig3(),
                _ => IstioGoal::fig4(),
            };
            let table = if matches!(entry.kind, Kind::PaperStrict) {
                IstioTable::Fig3
            } else {
                IstioTable::Fig4
            };
            write("manifests.yaml", &manifests)?;
            write("k8s-goals.csv", &muppet_scenario::k8s_goals_csv(&muppet_goals::fig2()))?;
            write("istio-goals.csv", &muppet_scenario::istio_goals_csv(&rows))?;
            write(
                "scenario.json",
                &format!(
                    "{{\"schema\":\"muppet-scenario-paper-v1\",\"name\":\"{}\",\
                     \"table\":\"{:?}\",\"expected\":\"{}\"}}\n",
                    entry.name,
                    table,
                    entry.expected.label()
                ),
            )?;
            println!(
                "wrote {out}/{{manifests.yaml,k8s-goals.csv,istio-goals.csv,scenario.json}} \
                 (paper tables, expected {})",
                entry.expected
            );
        }
        Kind::PhpRelational { .. } => {
            return Err(format!(
                "{name} is a relational (pre-CNF) instance with no file form; \
                 run it via the harness S1 lane"
            ));
        }
        Kind::Domain { domain } => {
            if opts.seed.is_some() {
                return Err(format!("{name} is a fixed domain fixture; --seed does not apply"));
            }
            let d = muppet_domain::lookup(domain)
                .ok_or_else(|| format!("corpus domain {domain:?} is not registered"))?;
            let (manifests, goals) = corpus::domain_wire(domain)
                .ok_or_else(|| format!("domain {domain:?} has no committed fixture"))?;
            write("manifests.yaml", &manifests)?;
            let mut goal_files = Vec::new();
            for (role, text) in d.roles().iter().zip(&goals) {
                let file = format!("{role}-goals.csv");
                write(&file, text)?;
                goal_files.push(file);
            }
            write(
                "scenario.json",
                &format!(
                    "{{\"schema\":\"muppet-scenario-domain-v1\",\"name\":\"{}\",\
                     \"domain\":\"{}\",\"expected\":\"{}\"}}\n",
                    entry.name,
                    domain,
                    entry.expected.label()
                ),
            )?;
            println!(
                "wrote {out}/{{manifests.yaml,{},scenario.json}} ({} domain, expected {})",
                goal_files.join(","),
                domain,
                entry.expected
            );
            let goal_flags: Vec<String> = goal_files
                .iter()
                .map(|f| format!("--goals {out}/{f}"))
                .collect();
            println!(
                "run: muppet-cli reconcile --domain {domain} --manifests {out}/manifests.yaml {}",
                goal_flags.join(" ")
            );
        }
        Kind::Stream(mut params) => {
            if let Some(seed) = opts.seed {
                params.seed = seed;
            }
            let stream = muppet_scenario::generate_stream(params);
            let (manifests, k8s, istio, extras) = stream.base.wire_content();
            write("manifests.yaml", &manifests)?;
            write("k8s-goals.csv", &k8s)?;
            write("istio-goals.csv", &istio)?;
            write("deltas.txt", &stream.deltas_text())?;
            write(
                "scenario.json",
                &format!(
                    "{{\"schema\":\"muppet-scenario-stream-v1\",\"name\":\"{}\",\
                     \"profile\":\"{}\",\"deltas\":{},\"seed\":{},\"expected\":\"{}\"}}\n",
                    entry.name,
                    params.profile.name(),
                    stream.deltas.len(),
                    params.seed,
                    entry.expected.label()
                ),
            )?;
            let extras_csv: Vec<String> = extras.iter().map(|p| p.to_string()).collect();
            println!(
                "wrote {out}/{{manifests.yaml,k8s-goals.csv,istio-goals.csv,deltas.txt,\
                 scenario.json}} ({} base services, {} deltas, final state expected {})",
                stream.base.mesh.services().len(),
                stream.deltas.len(),
                entry.expected
            );
            println!(
                "replay: muppet-cli watch --socket <sock> --manifests {out}/manifests.yaml \
                 --k8s-goals {out}/k8s-goals.csv --istio-goals {out}/istio-goals.csv \
                 --extra-ports {} --deltas {out}/deltas.txt",
                extras_csv.join(",")
            );
        }
        _ => {
            let mut kind = entry.kind;
            if let (Kind::PupSat { seed, .. }, Some(s)) = (&mut kind, opts.seed) {
                *seed = s;
            }
            let inst = corpus::cnf_instance(kind).expect("cnf kind");
            write(&format!("{}.cnf", entry.name), &inst.dimacs())?;
            write(
                "scenario.json",
                &format!(
                    "{{\"schema\":\"muppet-scenario-cnf-v1\",\"name\":\"{}\",\
                     \"expected\":\"{}\",\"num_vars\":{},\"clauses\":{}}}\n",
                    entry.name,
                    inst.expected.label(),
                    inst.num_vars,
                    inst.clauses.len()
                ),
            )?;
            println!(
                "wrote {out}/{{{}.cnf,scenario.json}} ({} vars, {} clauses, expected {})",
                entry.name,
                inst.num_vars,
                inst.clauses.len(),
                inst.expected
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `serve`: run `muppetd` in the foreground until a client sends
/// `shutdown`.
fn serve_cmd(opts: &Opts) -> Result<ExitCode, String> {
    let defaults = muppet_daemon::OverloadConfig::default();
    let config = muppet_daemon::ServerConfig {
        socket: opts.socket.as_ref().map(std::path::PathBuf::from),
        tcp: opts.tcp.clone(),
        workers: opts.workers.unwrap_or(4),
        engine: muppet_daemon::EngineConfig {
            cache_cap: opts.cache_cap.unwrap_or(1024),
            threads: effective_threads(opts),
            ..muppet_daemon::EngineConfig::default()
        },
        overload: muppet_daemon::OverloadConfig {
            max_queue_depth: opts.max_queue_depth.unwrap_or(defaults.max_queue_depth),
            max_inflight_per_conn: opts
                .max_inflight_per_conn
                .unwrap_or(defaults.max_inflight_per_conn),
            retry_after_ms: opts.retry_after_ms.unwrap_or(defaults.retry_after_ms),
            drain_deadline_ms: opts.drain_deadline_ms.unwrap_or(defaults.drain_deadline_ms),
            read_timeout_ms: opts.read_timeout_ms.unwrap_or(defaults.read_timeout_ms),
        },
    };
    let handle = muppet_daemon::serve(config)?;
    if let Some(path) = &opts.socket {
        eprintln!("muppetd: listening on {path}");
    }
    if let Some(addr) = handle.tcp_addr() {
        eprintln!("muppetd: listening on tcp {addr}");
    }
    while !handle.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    handle.wait();
    eprintln!("muppetd: stopped");
    Ok(ExitCode::SUCCESS)
}

/// Resolve `--socket` / `--tcp` into a daemon endpoint.
fn endpoint_of(opts: &Opts) -> Result<muppet_daemon::Endpoint, String> {
    match (&opts.socket, &opts.tcp) {
        (Some(path), _) => Ok(muppet_daemon::Endpoint::Unix(std::path::PathBuf::from(path))),
        (None, Some(addr)) => Ok(muppet_daemon::Endpoint::Tcp(addr.clone())),
        (None, None) => Err("needs --socket or --tcp".into()),
    }
}

/// Build the inline session spec daemon ops consume from the file
/// flags, or `None` when no `--manifests` was given.
fn inline_spec(opts: &Opts) -> Result<Option<muppet_daemon::SessionSpec>, String> {
    if opts.manifests.is_empty() {
        return Ok(None);
    }
    let mut text = String::new();
    for path in &opts.manifests {
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        text.push_str("---\n");
        text.push_str(&content);
        text.push('\n');
    }
    let read_opt = |p: &Option<String>| -> Result<String, String> {
        match p {
            Some(p) => std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}")),
            None => Ok(String::new()),
        }
    };
    let mut goals = Vec::new();
    for p in &opts.goals {
        goals.push(std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?);
    }
    Ok(Some(muppet_daemon::SessionSpec {
        domain: opts.domain.clone().unwrap_or_default(),
        manifests: text,
        k8s_goals: read_opt(&opts.k8s_goals)?,
        istio_goals: read_opt(&opts.istio_goals)?,
        goals,
        mtls: opts.mtls,
        extra_ports: opts.extra_ports.clone(),
    }))
}

/// Read protocol lines until a response arrives, printing any
/// subscription event lines (those carrying an `"event"` field;
/// responses never do) encountered on the way.
fn pump_until_response(
    client: &mut muppet_daemon::Client,
) -> Result<muppet_daemon::Response, String> {
    loop {
        let line = client.recv_line()?;
        let is_event = muppet_daemon::json::parse(&line)
            .ok()
            .is_some_and(|j| j.get("event").is_some());
        if is_event {
            println!("{}", line.trim_end());
            continue;
        }
        return muppet_daemon::Response::from_line(&line);
    }
}

/// `watch`: streaming reconfiguration against a running daemon. Opens
/// a watch session from the file flags, subscribes to `verdict_flip`
/// events on the same connection, then replays one `ConfigDelta` line
/// at a time from `--deltas <file>` (or stdin) as `push_delta`
/// requests. Every response and event is printed as one JSON line; on
/// EOF the watch is closed with `unwatch`. Rejected delta lines are
/// reported on stderr and skipped — a typo should not kill a live
/// stream. Exit code follows the final verdict: 0 sat, 1 unsat.
fn watch_cmd(opts: &Opts) -> Result<ExitCode, String> {
    use muppet_daemon::json::Json;
    use std::io::BufRead;

    let endpoint = endpoint_of(opts).map_err(|e| format!("watch {e}"))?;
    let spec = inline_spec(opts)?
        .ok_or("watch needs --manifests (the starting configuration)")?;
    let mut client = endpoint.connect(Some(std::time::Duration::from_secs(120)))?;

    let mut req = muppet_daemon::Request::new(muppet_daemon::Op::Watch);
    req.spec = Some(spec);
    req.threads = requested_threads(opts).map(|t| t.clamp(1, 64) as u64);
    client.send(&req)?;
    let resp = pump_until_response(&mut client)?;
    println!("{}", resp.to_line());
    if !resp.ok {
        return Ok(ExitCode::from(2));
    }
    let watch = resp
        .result
        .get("watch")
        .and_then(Json::as_str)
        .ok_or("daemon watch response carried no watch id")?
        .to_string();
    let mut verdict = resp
        .result
        .get("initial")
        .and_then(|i| i.get("verdict"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();

    let mut sub = muppet_daemon::Request::new(muppet_daemon::Op::Subscribe);
    sub.watch = Some(watch.clone());
    client.send(&sub)?;
    let resp = pump_until_response(&mut client)?;
    println!("{}", resp.to_line());
    if !resp.ok {
        return Ok(ExitCode::from(2));
    }

    let input: Box<dyn BufRead> = match &opts.deltas {
        Some(p) => Box::new(std::io::BufReader::new(
            std::fs::File::open(p).map_err(|e| format!("cannot read {p}: {e}"))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let mut rejected = 0u64;
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading deltas: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut push = muppet_daemon::Request::new(muppet_daemon::Op::PushDelta);
        push.watch = Some(watch.clone());
        push.delta = Some(line.to_string());
        client.send(&push)?;
        let resp = pump_until_response(&mut client)?;
        println!("{}", resp.to_line());
        if resp.ok {
            if let Some(v) = resp.result.get("verdict").and_then(Json::as_str) {
                verdict = v.to_string();
            }
        } else {
            rejected += 1;
            eprintln!(
                "muppet-cli: delta {line:?} rejected: {}",
                resp.error.as_deref().unwrap_or("unknown error")
            );
        }
    }

    let mut un = muppet_daemon::Request::new(muppet_daemon::Op::Unwatch);
    un.watch = Some(watch);
    client.send(&un)?;
    let resp = pump_until_response(&mut client)?;
    println!("{}", resp.to_line());
    if rejected > 0 {
        eprintln!("muppet-cli: {rejected} delta line(s) rejected");
    }
    Ok(if verdict.starts_with("unsat") {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// `client`: one request against a running daemon; prints the response
/// as a JSON line and maps the verdict onto the usual exit codes.
fn client_cmd(op_name: &str, opts: &Opts) -> Result<ExitCode, String> {
    let op = muppet_daemon::Op::parse(op_name)
        .ok_or_else(|| format!("unknown daemon op {op_name:?} (try `muppet-cli help`)"))?;
    let endpoint = endpoint_of(opts).map_err(|e| format!("client {e}"))?;
    let mut req = muppet_daemon::Request::new(op);
    req.spec = inline_spec(opts)?;
    req.party = opts.party.clone();
    req.mode = opts.mode.clone();
    req.to = opts.to.clone();
    req.max_rounds = opts.max_rounds;
    req.timeout_ms = opts.timeout_ms;
    req.conflict_budget = opts.conflict_budget;
    req.retries = opts.retries;
    req.threads = requested_threads(opts).map(|t| t.clamp(1, 64) as u64);
    req.n = opts.trace_n;
    let policy = muppet_daemon::RetryPolicy {
        attempts: if opts.no_retry { 1 } else { opts.retry_attempts.unwrap_or(5) },
        base_delay: std::time::Duration::from_millis(opts.retry_base_ms.unwrap_or(25)),
        deadline: std::time::Duration::from_millis(opts.retry_deadline_ms.unwrap_or(30_000)),
        ..muppet_daemon::RetryPolicy::default()
    };
    let report =
        endpoint.roundtrip_retry(&req, Some(std::time::Duration::from_secs(120)), &policy)?;
    if report.attempts > 1 {
        eprintln!(
            "muppet-cli: {} attempt(s), backed off {:?} total",
            report.attempts, report.slept
        );
    }
    let resp = report.response;
    println!("{}", resp.to_line());
    if resp.overloaded {
        // The daemon kept shedding until the retry budget ran out: no
        // verdict was reached, which is exit code 3 like any other
        // exhausted budget.
        return Ok(ExitCode::from(3));
    }
    if !resp.ok {
        let err = resp.error.unwrap_or_default();
        return Ok(ExitCode::from(if err.contains("budget exhausted") { 3 } else { 2 }));
    }
    // A definite "no" (conflict / non-conformance) exits 1, like the
    // direct subcommands; a degraded verdict exits 3.
    if !resp.result.get("exhausted").map(muppet_daemon::json::Json::is_null).unwrap_or(true) {
        return Ok(ExitCode::from(3));
    }
    let verdict = resp
        .result
        .get("success")
        .or_else(|| resp.result.get("ok"))
        .and_then(muppet_daemon::json::Json::as_bool);
    Ok(match verdict {
        Some(false) => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    })
}
