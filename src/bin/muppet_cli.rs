//! `muppet-cli` — the tool a mesh administrator actually runs.
//!
//! Inputs are the production artifacts the paper names: Kubernetes /
//! Istio YAML manifests for structure and deployed policies, and CSV
//! goal tables (Figs. 2–4). Subcommands:
//!
//! ```text
//! muppet-cli check      --manifests m.yaml --k8s-goals k.csv --istio-goals i.csv
//!     evaluate every goal against the *deployed* configuration, with
//!     dataplane traces for the violations (fault localization)
//! muppet-cli reconcile  --manifests m.yaml --k8s-goals k.csv --istio-goals i.csv
//!     Alg. 2: can the goals be jointly satisfied? UNSAT ⇒ minimal blame
//! muppet-cli envelope   --manifests m.yaml --k8s-goals k.csv [--to k8s]
//!     Alg. 3: print E_{K8s→Istio} (or the reverse) in Alloy + English
//! muppet-cli synthesize --manifests m.yaml --k8s-goals k.csv --istio-goals i.csv
//!     synthesize and print conforming YAML policy manifests
//! muppet-cli explain    --manifests m.yaml --k8s-goals k.csv
//!     apply the envelope to the deployed configuration and print a
//!     "why not": the failing (src, dst) pairs with a verdict for every
//!     escape hatch (Sec. 7's why/why-not presentation)
//! ```
//!
//! Common flags: `--extra-ports 24,26,…` widens the port universe
//! (spare ports for ∃-port goals); `--mtls` enables the
//! PeerAuthentication extension.

use std::collections::BTreeSet;
use std::process::ExitCode;

use muppet::{Budget, NamedGoal, Party, ReconcileMode, Reconciliation, RetryPolicy, Session};
use muppet_goals::{translate_istio_goals, translate_k8s_goals, IstioGoal, K8sGoal};
use muppet_logic::{Domain, Instance, PartyId};
use muppet_mesh::manifest::{
    emit_authorization_policy, emit_network_policy, emit_peer_authentication, emit_service,
    parse_manifests, ManifestBundle,
};
use muppet_mesh::{evaluate_flow_full, Flow, MeshVocab};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("muppet-cli: {e}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    manifests: Vec<String>,
    k8s_goals: Option<String>,
    istio_goals: Option<String>,
    extra_ports: Vec<u16>,
    mtls: bool,
    to: String,
    timeout_ms: Option<u64>,
    conflict_budget: Option<u64>,
    retries: Option<u32>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        manifests: Vec::new(),
        k8s_goals: None,
        istio_goals: None,
        extra_ports: Vec::new(),
        mtls: false,
        to: "istio".to_string(),
        timeout_ms: None,
        conflict_budget: None,
        retries: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--manifests" => opts.manifests.push(value("--manifests")?),
            "--k8s-goals" => opts.k8s_goals = Some(value("--k8s-goals")?),
            "--istio-goals" => opts.istio_goals = Some(value("--istio-goals")?),
            "--to" => opts.to = value("--to")?,
            "--extra-ports" => {
                for p in value("--extra-ports")?.split(',') {
                    opts.extra_ports.push(
                        p.trim()
                            .parse()
                            .map_err(|_| format!("bad port {p:?} in --extra-ports"))?,
                    );
                }
            }
            "--mtls" => opts.mtls = true,
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms needs a number of milliseconds".to_string())?,
                )
            }
            "--conflict-budget" => {
                opts.conflict_budget = Some(
                    value("--conflict-budget")?
                        .parse()
                        .map_err(|_| "--conflict-budget needs a conflict count".to_string())?,
                )
            }
            "--retries" => {
                opts.retries = Some(
                    value("--retries")?
                        .parse()
                        .map_err(|_| "--retries needs an attempt count".to_string())?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if opts.manifests.is_empty() {
        return Err("at least one --manifests file is required".into());
    }
    Ok(opts)
}

struct Loaded {
    bundle: ManifestBundle,
    mv: MeshVocab,
    k8s_goals: Vec<K8sGoal>,
    istio_goals: Vec<IstioGoal>,
}

fn load(opts: &Opts) -> Result<Loaded, String> {
    let mut text = String::new();
    for path in &opts.manifests {
        let content = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        text.push_str("---\n");
        text.push_str(&content);
        text.push('\n');
    }
    let bundle = parse_manifests(&text).map_err(|e| e.to_string())?;
    if bundle.mesh.services().is_empty() {
        return Err("no Service documents found in the manifests".into());
    }
    let k8s_goals = match &opts.k8s_goals {
        Some(p) => K8sGoal::parse_csv(
            &std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
        )
        .map_err(|e| e.to_string())?,
        None => Vec::new(),
    };
    let istio_goals = match &opts.istio_goals {
        Some(p) => IstioGoal::parse_csv(
            &std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
        )
        .map_err(|e| e.to_string())?,
        None => Vec::new(),
    };
    let mut ports: BTreeSet<u16> =
        muppet_goals::collect_goal_ports(&k8s_goals, &istio_goals);
    ports.extend(&opts.extra_ports);
    // Ports mentioned by deployed policies must be in the universe too.
    for p in &bundle.k8s_policies {
        for r in &p.rules {
            ports.extend(&r.ports);
        }
    }
    for p in &bundle.istio_policies {
        for r in &p.rules {
            ports.extend(&r.ports);
        }
    }
    let mv = MeshVocab::new_with_features(
        &bundle.mesh,
        ports,
        PartyId(0),
        PartyId(1),
        opts.mtls,
    );
    Ok(Loaded {
        bundle,
        mv,
        k8s_goals,
        istio_goals,
    })
}

fn build_session<'a>(l: &'a Loaded, opts: &Opts) -> Result<Session<'a>, String> {
    let mut vocab = l.mv.vocab.clone();
    let k8s = translate_k8s_goals(&l.k8s_goals, &l.mv, &mut vocab).map_err(|e| e.to_string())?;
    let istio =
        translate_istio_goals(&l.istio_goals, &l.mv, &mut vocab).map_err(|e| e.to_string())?;
    let axioms = l.mv.well_formedness_axioms(&mut vocab);
    let mut session = Session::new(&l.mv.universe, vocab, l.mv.sidecar_instance());
    session.add_axioms(axioms);
    session.add_party(
        Party::new(l.mv.k8s_party, "k8s-admin")
            .with_goals(k8s.into_iter().map(NamedGoal::from)),
    );
    session.add_party(
        Party::new(l.mv.istio_party, "istio-admin")
            .with_goals(istio.into_iter().map(NamedGoal::from)),
    );
    // Resource governance: the deadline (if any) starts now and covers
    // every solver query this invocation runs.
    let mut budget = Budget::unlimited();
    if let Some(t) = opts.timeout_ms {
        budget = budget.with_timeout(std::time::Duration::from_millis(t));
    }
    session.set_budget(budget);
    if opts.conflict_budget.is_some() || opts.retries.is_some() {
        session.set_retry_policy(RetryPolicy::new(
            opts.conflict_budget.unwrap_or(u64::MAX),
            opts.retries.unwrap_or(1),
        ));
    }
    Ok(session)
}

/// Print the structured report for a reconciliation that ran out of
/// budget, and the knobs that raise it. Returns the exit code.
fn report_exhausted(rec: &Reconciliation) -> ExitCode {
    let ex = rec.exhausted.as_ref().expect("caller checked");
    println!("UNKNOWN: {ex}.");
    if !rec.core.is_empty() {
        println!("Partial (unminimized) blame before exhaustion:");
        for c in &rec.core {
            println!("  - {c}");
        }
    }
    println!(
        "Raise --timeout-ms, --conflict-budget, or --retries and re-run \
         for a definite verdict."
    );
    ExitCode::from(3)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => check(&parse_opts(rest)?),
        "reconcile" => reconcile(&parse_opts(rest)?),
        "envelope" => envelope(&parse_opts(rest)?),
        "explain" => explain(&parse_opts(rest)?),
        "synthesize" => synthesize(&parse_opts(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?} (try `muppet-cli help`)")),
    }
}

const USAGE: &str = "\
muppet-cli — solver-aided multi-party configuration

USAGE:
  muppet-cli <check|reconcile|envelope|synthesize|explain> [flags]

FLAGS:
  --manifests <file>     YAML manifests (repeatable): Services and any
                         deployed NetworkPolicy / AuthorizationPolicy /
                         PeerAuthentication objects
  --k8s-goals <file>     CSV goal table: port, perm, selector
  --istio-goals <file>   CSV goal table: srcService, dstService, srcPort, dstPort
  --extra-ports <list>   comma-separated spare ports for ∃-port goals
  --to <k8s|istio>       envelope recipient (default: istio)
  --mtls                 enable the PeerAuthentication extension
  --timeout-ms <n>       wall-clock budget for all solver work (default: none)
  --conflict-budget <n>  solver conflict cap per attempt (default: none)
  --retries <n>          total solve attempts; each retry escalates the
                         conflict cap by the Luby sequence (default: 1)

EXIT CODES:
  0 = compatible / satisfiable / success
  1 = conflict detected (details on stdout)
  2 = usage or input error
  3 = budget exhausted before a verdict (raise --timeout-ms,
      --conflict-budget, or --retries)";

/// `check`: evaluate the goals against the *deployed* configuration.
fn check(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let deployed = l
        .mv
        .structure_instance()
        .union(&l.mv.compile_k8s(&l.bundle.k8s_policies).map_err(|e| e.to_string())?)
        .union(
            &l.mv
                .compile_istio(&l.bundle.istio_policies)
                .map_err(|e| e.to_string())?,
        )
        .union(
            &l.mv
                .compile_peer_auth(&l.bundle.peer_auth)
                .map_err(|e| e.to_string())?,
        );
    let results = session.check_goals(&deployed);
    let mut failures = 0;
    for (name, holds) in &results {
        println!("[{}] {name}", if *holds { "ok " } else { "FAIL" });
        if !holds {
            failures += 1;
        }
    }
    if failures == 0 {
        println!("all {} goal(s) hold under the deployed configuration", results.len());
        return Ok(ExitCode::SUCCESS);
    }
    // Fault localization: show dataplane traces for the broken
    // reachability rows.
    println!("\n{failures} goal(s) violated. Dataplane diagnosis:");
    for g in &l.istio_goals {
        if let (muppet_goals::PortSpec::Port(dp), Some(_)) =
            (&g.dst_port, l.bundle.mesh.service(&g.dst))
        {
            let d = evaluate_flow_full(
                &l.bundle.mesh,
                &l.bundle.k8s_policies,
                &l.bundle.istio_policies,
                &l.bundle.peer_auth,
                &Flow::new(g.src.clone(), g.dst.clone(), 0, *dp),
            );
            if !d.allowed {
                println!("  {} → {}:{} is blocked:", g.src, g.dst, dp);
                for line in &d.trace {
                    println!("    {line}");
                }
            }
        }
    }
    Ok(ExitCode::from(1))
}

/// `reconcile`: Alg. 2 with blame.
fn reconcile(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let rec = session
        .reconcile(ReconcileMode::Blameable)
        .map_err(|e| e.to_string())?;
    if rec.exhausted.is_some() {
        return Ok(report_exhausted(&rec));
    }
    if rec.success {
        println!("SAT: the goal tables are jointly satisfiable.");
        for (party, config) in &rec.configs {
            let name = session.party(*party).map(|p| p.name.clone()).unwrap();
            println!("  {name}: {} setting(s) in a witness configuration", config.total_tuples());
        }
        Ok(ExitCode::SUCCESS)
    } else {
        println!("UNSAT: the goal tables conflict. Minimal blame:");
        for c in &rec.core {
            println!("  - {c}");
        }
        Ok(ExitCode::from(1))
    }
}

/// `envelope`: Alg. 3, both renderings.
fn envelope(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let (from, to) = match opts.to.as_str() {
        "istio" => (l.mv.k8s_party, l.mv.istio_party),
        "k8s" => (l.mv.istio_party, l.mv.k8s_party),
        other => return Err(format!("--to must be istio or k8s, got {other:?}")),
    };
    // The sender's fixed configuration is whatever its deployed policies
    // say.
    let c_from = if from == l.mv.k8s_party {
        l.mv.compile_k8s(&l.bundle.k8s_policies).map_err(|e| e.to_string())?
    } else {
        l.mv
            .compile_istio(&l.bundle.istio_policies)
            .map_err(|e| e.to_string())?
    };
    let env = session
        .compute_envelope(from, to, &c_from)
        .map_err(|e| e.to_string())?;
    if env.is_trivial() {
        if env.self_satisfied.is_empty() {
            println!("(the envelope is trivial: the recipient is unconstrained)");
        } else {
            println!(
                "(the envelope is trivial: the sender's deployed configuration \
                 already guarantees its goals on its own)"
            );
            for g in &env.self_satisfied {
                println!("  self-satisfied: {g}");
            }
        }
        return Ok(ExitCode::SUCCESS);
    }
    println!("── Alloy ──");
    print!("{}", env.render_alloy(session.vocab(), session.universe()));
    println!("── English ──");
    print!("{}", env.render_english(session.vocab(), session.universe()));
    let leak = env.leakage(session.universe());
    println!(
        "── privacy: reveals {} concrete setting(s): {:?}",
        leak.revealed_atoms.len(),
        leak.revealed_atoms
    );
    if !env.impossible.is_empty() {
        println!("IMPOSSIBLE goals (no recipient configuration can satisfy them):");
        for g in &env.impossible {
            println!("  - {g}");
        }
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

/// `explain`: why/why-not for the deployed configuration against the
/// sender's envelope.
fn explain(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let (from, to) = match opts.to.as_str() {
        "istio" => (l.mv.k8s_party, l.mv.istio_party),
        "k8s" => (l.mv.istio_party, l.mv.k8s_party),
        other => return Err(format!("--to must be istio or k8s, got {other:?}")),
    };
    let c_from = if from == l.mv.k8s_party {
        l.mv.compile_k8s(&l.bundle.k8s_policies).map_err(|e| e.to_string())?
    } else {
        l.mv
            .compile_istio(&l.bundle.istio_policies)
            .map_err(|e| e.to_string())?
    };
    let env = session
        .compute_envelope(from, to, &c_from)
        .map_err(|e| e.to_string())?;
    if env.is_trivial() {
        println!("(the envelope is trivial; nothing to explain)");
        return Ok(ExitCode::SUCCESS);
    }
    // The recipient's deployed configuration.
    let recipient_config = if to == l.mv.istio_party {
        l.mv.structure_instance().union(
            &l.mv
                .compile_istio(&l.bundle.istio_policies)
                .map_err(|e| e.to_string())?,
        )
    } else {
        l.mv.compile_k8s(&l.bundle.k8s_policies).map_err(|e| e.to_string())?
    };
    let mut violated = 0;
    for p in &env.predicates {
        let exp = muppet::explain::explain_predicate(
            p,
            &recipient_config,
            session.vocab(),
            session.universe(),
            5,
        );
        if !exp.holds {
            violated += 1;
        }
        print!("{}", exp.render());
    }
    Ok(if violated == 0 {
        println!("the deployed configuration satisfies the envelope");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `synthesize`: joint synthesis, emitted as YAML manifests.
fn synthesize(opts: &Opts) -> Result<ExitCode, String> {
    let l = load(opts)?;
    let session = build_session(&l, opts)?;
    let rec = session
        .reconcile(ReconcileMode::Blameable)
        .map_err(|e| e.to_string())?;
    if rec.exhausted.is_some() {
        return Ok(report_exhausted(&rec));
    }
    if !rec.success {
        println!("UNSAT: cannot synthesize. Minimal blame:");
        for c in &rec.core {
            println!("  - {c}");
        }
        return Ok(ExitCode::from(1));
    }
    let k8s_cfg = rec.configs[&l.mv.k8s_party].clone();
    let istio_cfg = rec.configs[&l.mv.istio_party].clone();
    let updated_mesh = l.mv.decompile_services(&istio_cfg);
    for svc in updated_mesh.services() {
        println!("---");
        print!("{}", emit_service(svc));
    }
    for p in l.mv.decompile_k8s(&k8s_cfg) {
        println!("---");
        print!("{}", emit_network_policy(&p));
    }
    for p in l.mv.decompile_istio(&istio_cfg) {
        println!("---");
        print!("{}", emit_authorization_policy(&p));
    }
    for p in l.mv.decompile_peer_auth(&istio_cfg) {
        println!("---");
        print!("{}", emit_peer_authentication(&p));
    }
    // Sanity: the emitted configuration satisfies every goal.
    let combined = session
        .structure()
        .union(&k8s_cfg)
        .union(&istio_cfg);
    let all_ok = session.check_goals(&combined).iter().all(|(_, h)| *h);
    let istio_domain = istio_cfg.restrict_to_domain(session.vocab(), Domain::Party(l.mv.istio_party));
    debug_assert_eq!(istio_domain, istio_cfg);
    if !all_ok {
        return Err("internal error: synthesized configuration fails verification".into());
    }
    eprintln!("# synthesized configuration verified against all goals");
    Ok(ExitCode::SUCCESS)
}

// `Instance` is used in type positions above; keep the import honest.
#[allow(dead_code)]
fn _type_uses(_: Instance) {}
