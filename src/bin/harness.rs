//! The experiment harness: regenerates every paper artifact as a text
//! row, in one run.
//!
//! ```text
//! cargo run --release --bin muppet-harness            # all experiments
//! cargo run --release --bin muppet-harness -- --csv   # CSV output
//! cargo run --release --bin muppet-harness -- e4      # one experiment
//! ```
//!
//! Resource governance flags (applied to every session-based
//! experiment): `--timeout-ms <n>` caps each session's wall clock,
//! `--conflict-budget <n>` caps solver conflicts per attempt, and
//! `--retries <n>` allows that many Luby-escalated attempts. When a
//! governed experiment's budget runs out it emits a structured
//! "budget exhausted" row (phase + work counters) instead of results.
//!
//! Observability (DESIGN.md §12): `--trace-json <path>` streams one
//! JSON-Lines event per closed span to a file, and the `O1` lane runs
//! the paper scenarios traced, validates span trees against the
//! schema, gates the disabled-tracing overhead at ≤ 2%, and emits
//! `BENCH_obs.json` with per-phase breakdowns.
//!
//! Experiment ids follow `DESIGN.md` §4 and `EXPERIMENTS.md`:
//! E1 conflict detection, E2 relaxation synthesis, E3 envelope shape,
//! E4 latency sweep (the Sec. 5 "< 1 s" claim), E5 baseline comparison,
//! E6 conformance workflow, E7 minimal edits, E8 negotiation rounds,
//! A1–A3 ablations. `S1` is the scale lane (DESIGN.md §15): the
//! committed scenario corpus end to end — verdicts gated against
//! committed labels on up-to-2500-service generated meshes
//! (`MUPPET_SCALE=full` for the full large + hard tiers), per-phase
//! timings in `BENCH_scale.json`, and a byte-identical regeneration
//! gate. `W1` is the streaming-reconfiguration lane (DESIGN.md §16):
//! it replays a committed edit stream through one warm multi-shot
//! `StreamSession` and a cold re-solve-from-scratch oracle in
//! lockstep, gating byte-identical verdicts at every delta plus a 5x
//! amortized warm-vs-cold speedup floor, and emits `BENCH_stream.json`.
//! `R1` is the overload/chaos lane (DESIGN.md §14):
//! it floods a real socket daemon past its admission limits with
//! misbehaving clients (plus injected solver faults under
//! `--features fault-inject`) and gates on verdict integrity, shed
//! accounting and drain latency, emitting `BENCH_robustness.json`.
//! `K1` is the SAT-kernel speed lane (DESIGN.md §17): the hard-tier
//! CNF corpus solved under the legacy pre-change kernel profile vs the
//! tuned defaults (verdict parity on every entry, a 0.8x wall-clock
//! floor on the gated UNSAT instance), plus the committed minimal-edit
//! scenario solved core-guided vs linear (byte-identical outcomes, a
//! 2x speedup floor), emitting `BENCH_kernel.json` before any gate.

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Duration;

use muppet::conformance::run_conformance;
use muppet::negotiate::{run_negotiation, DropBlamedSoftGoals, Negotiator, Stubborn};
use muppet::{baseline, Budget, ExhaustionReport, ReconcileMode, Reconciliation, RetryPolicy, Session};
use muppet_bench::paper::{session, vocab, IstioTable};
use muppet_bench::scenario::{generate, ScenarioParams};
use muppet_bench::timing::{ms, timed_median, Table};
use muppet_logic::{Formula, Instance};

const REPS: usize = 5;

/// Resource-governance knobs parsed from the command line, applied to
/// every session-based experiment via [`govern`].
#[derive(Clone, Copy, Default)]
struct Gov {
    timeout_ms: Option<u64>,
    conflict_budget: Option<u64>,
    retries: Option<u32>,
    threads: Option<usize>,
}

static GOV: OnceLock<Gov> = OnceLock::new();

/// One harness lane: fills its rows into the shared result table.
type Experiment = fn(&mut Table);

fn gov() -> Gov {
    GOV.get().copied().unwrap_or_default()
}

/// Apply the governance flags to a freshly built session. The deadline
/// (if any) starts now and covers every query the session runs.
fn govern(s: &mut Session<'_>) {
    let g = gov();
    let mut budget = Budget::unlimited();
    if let Some(t) = g.timeout_ms {
        budget = budget.with_timeout(Duration::from_millis(t));
    }
    s.set_budget(budget);
    if let Some(n) = g.threads {
        s.set_threads(n);
    }
    if g.conflict_budget.is_some() || g.retries.is_some() {
        s.set_retry_policy(RetryPolicy::new(
            g.conflict_budget.unwrap_or(u64::MAX),
            g.retries.unwrap_or(1),
        ));
    }
}

/// Structured exhaustion row: where the budget died and what it cost.
fn exhausted_row(t: &mut Table, exp: &str, instance: &str, ex: &ExhaustionReport) {
    row(
        t,
        exp,
        instance,
        "budget exhausted",
        format!(
            "phase {} after {} attempt(s); {}",
            ex.phase, ex.attempts, ex.stats
        ),
        "raise --timeout-ms / --conflict-budget / --retries",
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let mut g = Gov::default();
    let mut trace_json: Option<String> = None;
    let mut filter: Vec<&String> = Vec::new();
    let usage = |msg: String| -> ! {
        eprintln!("muppet-harness: {msg}");
        eprintln!(
            "usage: muppet-harness [--csv] [--timeout-ms <n>] [--conflict-budget <n>] \
             [--retries <n>] [--threads <n>] [--trace-json <path>] [experiment-id-prefix...]"
        );
        std::process::exit(2);
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(format!("{flag} needs a value")))
                .clone()
        };
        let num = |flag: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| usage(format!("{flag} needs a number")))
        };
        match a.as_str() {
            "--csv" => {}
            "--timeout-ms" => g.timeout_ms = Some(num("--timeout-ms", value("--timeout-ms"))),
            "--conflict-budget" => {
                g.conflict_budget = Some(num("--conflict-budget", value("--conflict-budget")))
            }
            "--retries" => g.retries = Some(num("--retries", value("--retries")) as u32),
            "--threads" => g.threads = Some(num("--threads", value("--threads")) as usize),
            "--trace-json" => trace_json = Some(value("--trace-json")),
            other if other.starts_with("--") => usage(format!("unknown flag {other:?}")),
            _ => filter.push(a),
        }
    }
    if g.threads.is_none() {
        g.threads = std::env::var("MUPPET_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok());
    }
    GOV.set(g).ok();
    if let Some(path) = &trace_json {
        if let Err(e) = muppet_obs::set_json_sink(std::path::Path::new(path)) {
            usage(format!("--trace-json {path}: {e}"));
        }
        muppet_obs::set_enabled(true);
    }
    let want = |id: &str| {
        filter.is_empty()
            || filter
                .iter()
                .any(|f| id.to_lowercase().starts_with(&f.to_lowercase()))
    };

    let mut table = Table::new(&["exp", "instance", "metric", "value", "paper-expectation"]);

    // Every experiment runs under catch_unwind so one failing lane
    // still leaves a machine-readable record of the rest.
    let experiments: &[(&str, Experiment)] = &[
        ("E1", e1),
        ("E2", e2),
        ("E3", e3),
        ("E4", e4),
        ("E5", e5),
        ("E6", e6),
        ("E7", e7),
        ("E8", e8),
        ("A1", a1),
        ("A2", a2),
        ("A3", a3),
        ("A4", a4),
        ("X1", x1),
        ("X2", x2),
        ("D1", d1),
        ("P1", p1),
        ("O1", o1),
        ("S1", s1),
        ("N1", n1),
        ("W1", w1),
        ("R1", r1),
        ("K1", k1),
        ("M1", m1),
    ];
    let mut runs: Vec<(String, f64, &'static str)> = Vec::new();
    for (id, f) in experiments {
        if !want(id) {
            continue;
        }
        let start = std::time::Instant::now();
        let status = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(&mut table)
        })) {
            Ok(()) => "ok",
            Err(_) => "panicked",
        };
        runs.push((id.to_string(), start.elapsed().as_secs_f64() * 1e3, status));
    }

    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    write_bench_e2e(&table, &runs, g);
    // Flush the --trace-json sink before exiting either way.
    muppet_obs::clear_json_sink();
    if runs.iter().any(|(_, _, s)| *s == "panicked") {
        std::process::exit(1);
    }
}

/// Always emit `BENCH_e2e.json`: per-experiment wall-clock + verdict
/// plus the full result table, machine-readable for CI trend lines.
fn write_bench_e2e(table: &Table, runs: &[(String, f64, &'static str)], g: Gov) {
    use muppet_daemon::json::Json;
    let experiments = Json::Arr(
        runs.iter()
            .map(|(id, wall_ms, status)| {
                Json::obj([
                    ("id", Json::str(id)),
                    ("wall_ms", Json::Num(*wall_ms)),
                    ("status", Json::str(*status)),
                ])
            })
            .collect(),
    );
    let headers = Json::strs(table.headers());
    let rows = Json::Arr(table.rows().iter().map(Json::strs).collect());
    let opt_num = |v: Option<u64>| match v {
        Some(n) => Json::num(n),
        None => Json::Null,
    };
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-e2e-v1")),
        (
            "governance",
            Json::obj([
                ("timeout_ms", opt_num(g.timeout_ms)),
                ("conflict_budget", opt_num(g.conflict_budget)),
                ("retries", opt_num(g.retries.map(u64::from))),
            ]),
        ),
        ("experiments", experiments),
        (
            "table",
            Json::obj([("headers", headers), ("rows", rows)]),
        ),
    ]);
    if let Err(e) = std::fs::write("BENCH_e2e.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_e2e.json: {e}");
    }
}

fn row(t: &mut Table, exp: &str, instance: &str, metric: &str, value: String, paper: &str) {
    t.row(&[
        exp.to_string(),
        instance.to_string(),
        metric.to_string(),
        value,
        paper.to_string(),
    ]);
}

/// E1 — Figs. 1–3: the strict goal tables conflict; the core blames
/// exactly the ban and the backend→frontend:23 goal.
fn e1(t: &mut Table) {
    let mv = vocab();
    let mut s = session(&mv, IstioTable::Fig3);
    govern(&mut s);
    let (rec, d) = timed_median(REPS, || s.reconcile(ReconcileMode::Blameable).unwrap());
    if let Some(ex) = &rec.exhausted {
        exhausted_row(t, "E1", "fig2+fig3", ex);
        return;
    }
    assert!(!rec.success);
    row(t, "E1", "fig2+fig3", "reconcile verdict", "UNSAT".into(), "UNSAT (conflict)");
    row(
        t,
        "E1",
        "fig2+fig3",
        "minimal core size",
        rec.core.len().to_string(),
        "2 (ban vs goal row 2)",
    );
    row(t, "E1", "fig2+fig3", "time (ms)", ms(d), "< 1000");
}

/// E2 — Fig. 4: relaxation makes synthesis succeed; every goal verifies
/// against the delivered configurations.
fn e2(t: &mut Table) {
    let mv = vocab();
    let mut s = session(&mv, IstioTable::Fig4);
    govern(&mut s);
    let (rec, d) = timed_median(REPS, || s.reconcile(ReconcileMode::HardBounds).unwrap());
    if let Some(ex) = &rec.exhausted {
        exhausted_row(t, "E2", "fig2+fig4", ex);
        return;
    }
    assert!(rec.success);
    let mut combined = s.structure().clone();
    for c in rec.configs.values() {
        combined = combined.union(c);
    }
    let verified = s.check_goals(&combined).into_iter().all(|(_, h)| h);
    row(t, "E2", "fig2+fig4", "synthesis verdict", "SAT".into(), "SAT (relaxed goals)");
    row(
        t,
        "E2",
        "fig2+fig4",
        "goals verified",
        verified.to_string(),
        "true",
    );
    row(t, "E2", "fig2+fig4", "time (ms)", ms(d), "< 1000");
}

/// E3 — Fig. 5: the envelope has exactly the paper's five disjunct
/// families and reveals only port 23.
fn e3(t: &mut Table) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let (env, d) = timed_median(REPS, || {
        s.compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap()
    });
    let mut inner: &Formula = &env.predicates[0].formula;
    let mut quantifiers = 0;
    while let Formula::Forall(_, _, body) = inner {
        quantifiers += 1;
        inner = body;
    }
    let disjuncts = match inner {
        Formula::Or(ds) => ds.len(),
        _ => 1,
    };
    row(t, "E3", "E_{k8s->istio}", "predicates", env.predicates.len().to_string(), "1");
    row(
        t,
        "E3",
        "E_{k8s->istio}",
        "universal quantifiers",
        quantifiers.to_string(),
        "2 (src; dst)",
    );
    row(t, "E3", "E_{k8s->istio}", "disjunct families", disjuncts.to_string(), "5 (Fig. 5)");
    row(
        t,
        "E3",
        "E_{k8s->istio}",
        "atoms revealed",
        format!("{:?}", env.leakage(s.universe()).revealed_atoms),
        "only port 23",
    );
    row(t, "E3", "E_{k8s->istio}", "time (ms)", ms(d), "< 1000");
}

/// E4 — Sec. 5: the latency sweep. Modest (paper-scale) rows must stay
/// under 1 second.
fn e4(t: &mut Table) {
    for &n in &[3usize, 6, 12, 24, 48] {
        let scenario = generate(ScenarioParams {
            services: n,
            istio_goals: n,
            k8s_goals: 1,
            conflict_fraction: 0.0,
            ..ScenarioParams::default()
        });
        let mut sess = scenario.session(false);
        govern(&mut sess);
        let reps = if n >= 24 { 3 } else { REPS };
        let inst = format!("{n} services");
        let expect = if n <= 8 {
            "< 1000 (modest)"
        } else {
            "graceful growth"
        };

        let (r, d) = timed_median(reps, || {
            sess.local_consistency(scenario.mv.istio_party).unwrap()
        });
        if let Some(ex) = &r.exhausted {
            exhausted_row(t, "E4", &inst, ex);
            continue;
        }
        assert!(r.ok);
        row(t, "E4", &inst, "local consistency (ms)", ms(d), expect);
        let (r, d) = timed_median(reps, || sess.reconcile(ReconcileMode::HardBounds).unwrap());
        if let Some(ex) = &r.exhausted {
            exhausted_row(t, "E4", &inst, ex);
            continue;
        }
        assert!(r.success);
        row(t, "E4", &inst, "reconcile+synthesize (ms)", ms(d), expect);
        row(
            t,
            "E4",
            &inst,
            "free tuple vars / conflicts",
            format!("{} / {}", r.stats.free_tuple_vars, r.stats.conflicts),
            "grows with |Svc|²·|Port|",
        );
        let (_, d) = timed_median(reps, || {
            sess.compute_envelope(
                scenario.mv.k8s_party,
                scenario.mv.istio_party,
                &Instance::new(),
            )
            .unwrap()
        });
        row(t, "E4", &inst, "envelope (ms)", ms(d), expect);
        if n <= 8 {
            assert!(d < Duration::from_secs(1), "modest scenario over budget");
        }
    }
    // A multi-tenant variant: 12 services over 3 namespaces with
    // namespace-scoped bans (the Sec. 1 motivation shape).
    let scenario = generate(ScenarioParams {
        services: 12,
        istio_goals: 12,
        k8s_goals: 3,
        namespaces: 3,
        conflict_fraction: 0.0,
        ..ScenarioParams::default()
    });
    let mut sess = scenario.session(false);
    govern(&mut sess);
    let (r, d) = timed_median(3, || sess.reconcile(ReconcileMode::HardBounds).unwrap());
    if let Some(ex) = &r.exhausted {
        exhausted_row(t, "E4", "12 services, 3 namespaces", ex);
        return;
    }
    assert!(r.success);
    row(
        t,
        "E4",
        "12 services, 3 namespaces",
        "reconcile+synthesize (ms)",
        ms(d),
        "graceful growth",
    );
}

/// E5 — Fig. 6 baseline: same verdicts, no localization, and the cost
/// premium Muppet pays for blame.
fn e5(t: &mut Table) {
    let mv = vocab();
    let mut s = session(&mv, IstioTable::Fig3);
    govern(&mut s);
    let (b, db) = timed_median(REPS, || baseline::monolithic_synthesis(&s).unwrap());
    let (m, dm) = timed_median(REPS, || s.reconcile(ReconcileMode::Blameable).unwrap());
    if let Some(ex) = &m.exhausted {
        exhausted_row(t, "E5", "fig2+fig3", ex);
        return;
    }
    assert_eq!(b.success, m.success);
    row(t, "E5", "fig2+fig3", "baseline verdict", "UNSAT".into(), "UNSAT; no information");
    row(t, "E5", "fig2+fig3", "baseline core", "(none)".into(), "opaque failure");
    row(
        t,
        "E5",
        "fig2+fig3",
        "muppet core",
        format!("{} goals", m.core.len()),
        "2 goals blamed",
    );
    row(t, "E5", "fig2+fig3", "baseline time (ms)", ms(db), "-");
    row(t, "E5", "fig2+fig3", "muppet time (ms)", ms(dm), "small premium for blame");
}

/// E6 — Fig. 7 conformance workflow episodes.
fn e6(t: &mut Table) {
    let mv = vocab();
    let mut strict = session(&mv, IstioTable::Fig3);
    govern(&mut strict);
    let strict = strict;
    let preferred = mv.structure_instance();
    let (report, d) = timed_median(REPS, || {
        run_conformance(&strict, mv.k8s_party, mv.istio_party, Some(&preferred)).unwrap()
    });
    assert!(!report.success);
    row(t, "E6", "strict tenant", "outcome", "rejected".into(), "tenant must revise");
    row(
        t,
        "E6",
        "strict tenant",
        "counter-offer distance",
        report.counter_offer_distance.unwrap().to_string(),
        "1 edit",
    );
    row(t, "E6", "strict tenant", "time (ms)", ms(d), "< 1000");

    let mut relaxed = session(&mv, IstioTable::Fig4);
    govern(&mut relaxed);
    let relaxed = relaxed;
    let (report, d) = timed_median(REPS, || {
        run_conformance(&relaxed, mv.k8s_party, mv.istio_party, None).unwrap()
    });
    assert!(report.success);
    row(t, "E6", "relaxed tenant", "outcome", "conforming config".into(), "success");
    row(t, "E6", "relaxed tenant", "time (ms)", ms(d), "< 1000");
}

/// E7 — Fig. 8 minimal edits: distance of the counter-offer vs free
/// resynthesis.
fn e7(t: &mut Table) {
    let mv = vocab();
    let mut s = session(&mv, IstioTable::Fig3);
    govern(&mut s);
    let s = s;
    let env = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();
    let target = mv.structure_instance();
    let ((out, dist), d) = timed_median(REPS, || {
        s.minimal_edit(mv.istio_party, &env, &target).unwrap()
    });
    if let muppet_solver::Outcome::Unknown { phase, stats, .. } = &out {
        row(
            t,
            "E7",
            "paper deployment",
            "budget exhausted",
            format!("phase {phase}; {stats}"),
            "raise --timeout-ms / --conflict-budget / --retries",
        );
        return;
    }
    assert!(out.is_sat());
    row(t, "E7", "paper deployment", "minimal edit distance", dist.to_string(), "1 tuple");
    row(t, "E7", "paper deployment", "target-oriented time (ms)", ms(d), "< 1000");

    let s4 = session(&mv, IstioTable::Fig4);
    let (out, d) = timed_median(REPS, || {
        s4.synthesize_against(mv.istio_party, &env).unwrap()
    });
    let free_dist = out
        .solution()
        .map(|sol| {
            sol.restrict_to_domain(s4.vocab(), muppet_logic::Domain::Party(mv.istio_party))
                .distance(&target)
        })
        .unwrap_or(0);
    row(
        t,
        "E7",
        "paper deployment",
        "free synthesis distance",
        free_dist.to_string(),
        ">= minimal edit",
    );
    row(t, "E7", "paper deployment", "free synthesis time (ms)", ms(d), "-");
}

/// E8 — Fig. 9 negotiation: rounds to convergence vs conflict count.
fn e8(t: &mut Table) {
    for &bans in &[1usize, 2, 3] {
        let scenario = generate(ScenarioParams {
            services: 6,
            istio_goals: 8,
            k8s_goals: bans,
            conflict_fraction: 1.0,
            seed: 7,
            ..ScenarioParams::default()
        });
        let conflicts = scenario.conflicting_ports().len();
        let (report, d) = timed_median(3, || {
            let mut sess = scenario.session(true);
            govern(&mut sess);
            let mut negs: BTreeMap<muppet_logic::PartyId, Box<dyn Negotiator>> = BTreeMap::new();
            negs.insert(scenario.mv.k8s_party, Box::new(Stubborn));
            negs.insert(scenario.mv.istio_party, Box::new(DropBlamedSoftGoals));
            run_negotiation(&mut sess, &mut negs, 40).unwrap()
        });
        assert!(report.success);
        let inst = format!("{bans} ban(s); {conflicts} conflict(s)");
        row(
            t,
            "E8",
            &inst,
            "rounds to agreement",
            report.rounds.to_string(),
            "grows with conflicts",
        );
        row(t, "E8", &inst, "time (ms)", ms(d), "< 1000 per episode");
    }
}

/// A4 — symmetry-breaking ablation. Two honest measurements: on
/// easily-satisfiable mesh scenarios the lex-leader overhead is pure
/// loss; on symmetric UNSAT search (relational pigeonhole, where every
/// atom is interchangeable) it collapses the conflict count — the same
/// trade Kodkod documents.
fn a4(t: &mut Table) {
    use muppet_solver::{FormulaGroup, Outcome, Query};

    // Easy-SAT mesh scenario: SB is overhead.
    let scenario = generate(ScenarioParams {
        services: 12,
        istio_goals: 12,
        k8s_goals: 1,
        conflict_fraction: 0.0,
        flexible_fraction: 0.5,
        extra_ports: 8,
        ..ScenarioParams::default()
    });
    let mut sess = scenario.session(false);
    let (r, d_off) = timed_median(3, || sess.reconcile(ReconcileMode::HardBounds).unwrap());
    assert!(r.success);
    sess.set_symmetry_breaking(true);
    let (r, d_on) = timed_median(3, || sess.reconcile(ReconcileMode::HardBounds).unwrap());
    assert!(r.success);
    row(t, "A4", "easy-SAT mesh (12 svc)", "SB off (ms)", ms(d_off), "-");
    row(t, "A4", "easy-SAT mesh (12 svc)", "SB on (ms)", ms(d_on), "overhead on easy SAT");

    // Symmetric UNSAT: relational pigeonhole PHP(9,8), from the shared
    // corpus fixture (same instance `php-9-8` gates in the S1 lane).
    let (u, v, sits, formulas) = muppet_bench::paper::php_relational(9, 8);
    let run = |sb: bool| {
        let mut q = Query::new(&v, &u);
        q.free_rel(sits)
            .set_symmetry_breaking(sb)
            .set_minimize_cores(false)
            .add_group(FormulaGroup::new("php", formulas.clone()));
        match q.solve().unwrap() {
            Outcome::Unsat { stats, .. } => stats.conflicts,
            other => panic!("PHP(9,8) must be unsat, got {other:?}"),
        }
    };
    let ((c_off, c_on), d) = timed_median(1, || (run(false), run(true)));
    let _ = d;
    row(t, "A4", "PHP(9,8) UNSAT", "conflicts, SB off", c_off.to_string(), "large");
    row(
        t,
        "A4",
        "PHP(9,8) UNSAT",
        "conflicts, SB on",
        c_on.to_string(),
        "far fewer (symmetry pruned)",
    );
}

/// X1 — Sec. 7 extension: learned envelopes (opaque-goal oracle) agree
/// with the syntactic Alg. 3 envelope.
fn x1(t: &mut Table) {
    use muppet::learn::{learn_envelope, Scope};
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let fe = mv.svc_atom("test-frontend").unwrap();
    let be = mv.svc_atom("test-backend").unwrap();
    let db = mv.svc_atom("test-db").unwrap();
    let p23 = mv.port_atom(23).unwrap();
    let scope = Scope::new(vec![
        (mv.listens, vec![fe, p23]),
        (mv.istio_eg_deny, vec![fe, p23]),
        (mv.istio_eg_deny, vec![be, p23]),
        (mv.istio_eg_deny, vec![db, p23]),
        (mv.istio_in_guard, vec![fe]),
        (mv.istio_in_deny, vec![fe, fe]),
        (mv.istio_in_deny, vec![fe, be]),
        (mv.istio_in_deny, vec![fe, db]),
    ]);
    let (learned, d) = timed_median(3, || {
        learn_envelope(&s, mv.k8s_party, &Instance::new(), mv.istio_party, &scope, 128)
            .unwrap()
    });
    assert!(learned.complete);
    let syntactic = s
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();
    let mut agree = 0u32;
    for mask in 0..(1u32 << scope.len()) {
        let mut config = Instance::new();
        for (bit, (rel, tuple)) in scope.tuples.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                config.insert(*rel, tuple.clone());
            }
        }
        if learned.check(&config) == syntactic.check(&config, s.universe()).is_empty() {
            agree += 1;
        }
    }
    row(t, "X1", "8-tuple scope", "prime implicant cubes", learned.cubes.len().to_string(), "few, general");
    row(t, "X1", "8-tuple scope", "solver queries", learned.queries.to_string(), "≪ 2^8 configs");
    row(
        t,
        "X1",
        "8-tuple scope",
        "agreement with Alg. 3",
        format!("{agree}/256"),
        "256/256 (both are the envelope)",
    );
    row(t, "X1", "8-tuple scope", "time (ms)", ms(d), "< 1000");
}

/// X2 — Sec. 7 extension: mTLS/PeerAuthentication adds a sixth escape
/// hatch to the Fig. 5 envelope.
fn x2(t: &mut Table) {
    use muppet::{NamedGoal, Party, Session};
    use muppet_goals::{translate_k8s_goals, K8sGoal};
    use muppet_mesh::{Mesh, MeshVocab, Service};
    let mut mesh = Mesh::paper_example();
    mesh.add_service(Service::new("legacy-batch", [9000]).without_sidecar());
    let mv = MeshVocab::new_with_features(
        &mesh,
        [24, 26, 10000, 14000],
        muppet_logic::PartyId(0),
        muppet_logic::PartyId(1),
        true,
    );
    let mut vocab = mv.vocab.clone();
    let k8s_goals =
        translate_k8s_goals(&K8sGoal::parse_csv("23,DENY,*\n").unwrap(), &mv, &mut vocab)
            .unwrap();
    let axioms = mv.well_formedness_axioms(&mut vocab);
    let mut session = Session::new(&mv.universe, vocab, mv.sidecar_instance());
    session.add_axioms(axioms);
    session.add_party(
        Party::new(mv.k8s_party, "k8s-admin")
            .with_goals(k8s_goals.into_iter().map(NamedGoal::from)),
    );
    session.add_party(Party::new(mv.istio_party, "istio-admin"));
    let (env, d) = timed_median(REPS, || {
        session
            .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
            .unwrap()
    });
    let mut inner = &env.predicates[0].formula;
    while let Formula::Forall(_, _, body) = inner {
        inner = body;
    }
    let disjuncts = match inner {
        Formula::Or(ds) => ds.len(),
        _ => 1,
    };
    row(t, "X2", "mTLS extension on", "disjunct families", disjuncts.to_string(), "6 (Fig. 5 + mTLS)");
    row(t, "X2", "mTLS extension on", "time (ms)", ms(d), "< 1000");
}

/// A1 — envelope simplification ablation.
fn a1(t: &mut Table) {
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig3);
    let senders = [(mv.k8s_party, Instance::new())];
    let on = s
        .compute_multi_envelope_opt(&senders, mv.istio_party, true)
        .unwrap();
    let off = s
        .compute_multi_envelope_opt(&senders, mv.istio_party, false)
        .unwrap();
    let lk_on = on.leakage(s.universe());
    let lk_off = off.leakage(s.universe());
    row(t, "A1", "simplify=on", "formula size", lk_on.formula_size.to_string(), "smaller");
    row(t, "A1", "simplify=off", "formula size", lk_off.formula_size.to_string(), "larger");
    row(
        t,
        "A1",
        "simplify=on",
        "atoms revealed",
        lk_on.revealed_atoms.len().to_string(),
        "<= unsimplified",
    );
    row(
        t,
        "A1",
        "simplify=off",
        "atoms revealed",
        lk_off.revealed_atoms.len().to_string(),
        "-",
    );
}

/// A2 — core minimization ablation on a many-goal conflict.
fn a2(t: &mut Table) {
    use muppet_solver::{FormulaGroup, Outcome, Query};
    let scenario = generate(ScenarioParams {
        services: 8,
        istio_goals: 10,
        k8s_goals: 2,
        conflict_fraction: 1.0,
        seed: 11,
        ..ScenarioParams::default()
    });
    let sess = scenario.session(false);
    let groups: Vec<FormulaGroup> = sess
        .parties()
        .iter()
        .flat_map(|p| {
            p.goals
                .iter()
                .map(|g| FormulaGroup::new(g.name.clone(), vec![g.formula.clone()]))
        })
        .collect();
    let free: Vec<_> = scenario
        .mv
        .k8s_rels()
        .into_iter()
        .chain(scenario.mv.istio_rels())
        .collect();
    let run = |minimize: bool| {
        let mut q = Query::new(sess.vocab(), sess.universe());
        q.free_rels(free.clone()).set_minimize_cores(minimize);
        q.add_group(FormulaGroup::new("axioms", sess.axioms().to_vec()));
        for g in &groups {
            q.add_group(g.clone());
        }
        match q.solve().unwrap() {
            Outcome::Unsat { core, .. } => core.len(),
            other => panic!("expected conflict, got {other:?}"),
        }
    };
    let (min_size, d_min) = timed_median(3, || run(true));
    let (raw_size, d_raw) = timed_median(3, || run(false));
    assert!(min_size <= raw_size);
    row(t, "A2", "10-goal conflict", "minimized core size", min_size.to_string(), "minimal");
    row(t, "A2", "10-goal conflict", "first core size", raw_size.to_string(), ">= minimized");
    row(t, "A2", "10-goal conflict", "minimized time (ms)", ms(d_min), "slower");
    row(t, "A2", "10-goal conflict", "first-core time (ms)", ms(d_raw), "faster");
}

/// A3 — bounds tightness ablation: free-variable counts and solve time.
fn a3(t: &mut Table) {
    use muppet_logic::PartialInstance;
    use muppet_solver::{FormulaGroup, Query};
    let mv = vocab();
    let s = session(&mv, IstioTable::Fig4);
    let rec = s.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success);
    let mut tight = PartialInstance::new();
    for rel in mv.istio_rels().into_iter().chain(mv.k8s_rels()) {
        tight.bound(rel);
        for cfg in rec.configs.values() {
            for tuple in cfg.tuples(rel) {
                tight.permit(rel, tuple.clone());
            }
        }
    }
    let groups: Vec<FormulaGroup> = s
        .parties()
        .iter()
        .flat_map(|p| {
            p.goals
                .iter()
                .map(|g| FormulaGroup::new(g.name.clone(), vec![g.formula.clone()]))
        })
        .collect();
    let run = |bounds: PartialInstance| {
        let mut q = Query::new(s.vocab(), s.universe());
        q.free_rels(mv.istio_rels().into_iter().chain(mv.k8s_rels()))
            .set_bounds(bounds);
        q.add_group(FormulaGroup::new("axioms", s.axioms().to_vec()));
        for g in &groups {
            q.add_group(g.clone());
        }
        match q.solve().unwrap() {
            muppet_solver::Outcome::Sat { stats, .. } => stats.free_tuple_vars,
            _ => panic!("expected SAT"),
        }
    };
    let (vars_loose, d_loose) = timed_median(REPS, || run(PartialInstance::new()));
    let (vars_tight, d_tight) = timed_median(REPS, || run(tight.clone()));
    row(t, "A3", "holes (unbounded)", "free tuple vars", vars_loose.to_string(), "large");
    row(t, "A3", "tight upper bounds", "free tuple vars", vars_tight.to_string(), "small");
    row(t, "A3", "holes (unbounded)", "time (ms)", ms(d_loose), "-");
    row(t, "A3", "tight upper bounds", "time (ms)", ms(d_tight), "<= unbounded");
}

/// D1 — daemon mode: warm sessions + the content-addressed result
/// cache. Drives the `muppetd` engine in-process (no sockets, so the
/// numbers isolate the caching layers), measures a cold conformance
/// solve against cached hits, and emits `BENCH_daemon.json`.
fn d1(t: &mut Table) {
    use muppet_daemon::json::Json;
    use muppet_daemon::{Engine, EngineConfig, Op, Request, SessionSpec};

    let engine = Engine::new(EngineConfig::default());
    let spec = SessionSpec::paper_relaxed();

    // Cold: load + ground + encode + solve.
    let t0 = std::time::Instant::now();
    let cold = engine.handle(&Request::new(Op::CheckConformance).with_spec(spec.clone()), None);
    let cold_us = t0.elapsed().as_micros().max(1) as u64;
    assert!(cold.ok, "daemon conformance failed: {:?}", cold.error);
    assert!(!cold.cached);

    // Cached: the identical request, median of several hits.
    let mut hits = Vec::new();
    for _ in 0..9 {
        let t1 = std::time::Instant::now();
        let hit = engine.handle(&Request::new(Op::CheckConformance).with_spec(spec.clone()), None);
        hits.push(t1.elapsed().as_micros().max(1) as u64);
        assert!(hit.cached, "repeat request must hit the cache");
    }
    hits.sort_unstable();
    let hit_us = hits[hits.len() / 2];
    let speedup = cold_us as f64 / hit_us as f64;

    // Warm-session effect: a reconcile on the same session reuses the
    // already-loaded core (no re-parse), and repeat reconciles reuse
    // encoded groups.
    let strict = SessionSpec::paper_strict();
    let r1 = engine.handle(&Request::new(Op::Reconcile).with_spec(strict.clone()), None);
    assert!(r1.ok && r1.result.get("success").and_then(Json::as_bool) == Some(false));
    let r2 = engine.handle(&Request::new(Op::Reconcile).with_spec(spec.clone()), None);
    assert!(r2.ok && r2.result.get("success").and_then(Json::as_bool) == Some(true));

    // Cached-hit throughput over a short burst.
    let burst = 500u64;
    let t2 = std::time::Instant::now();
    for _ in 0..burst {
        let hit = engine.handle(&Request::new(Op::CheckConformance).with_spec(spec.clone()), None);
        assert!(hit.cached);
    }
    let burst_s = t2.elapsed().as_secs_f64().max(1e-9);
    let rps = burst as f64 / burst_s;

    let stats = engine.stats_json();
    row(t, "D1", "paper (fig4)", "cold conformance (ms)", format!("{:.3}", cold_us as f64 / 1e3), "-");
    row(t, "D1", "paper (fig4)", "cached hit (ms)", format!("{:.3}", hit_us as f64 / 1e3), "-");
    row(t, "D1", "paper (fig4)", "cache speedup", format!("{speedup:.0}x"), ">= 10x");
    row(t, "D1", "paper (fig4)", "cached throughput (req/s)", format!("{rps:.0}"), "-");
    assert!(
        speedup >= 10.0,
        "cache hit must be >= 10x faster than cold: cold {cold_us}us vs hit {hit_us}us"
    );

    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-daemon-v1")),
        ("cold_us", Json::num(cold_us)),
        ("cached_us_median", Json::num(hit_us)),
        ("speedup", Json::Num(speedup)),
        ("cached_rps", Json::Num(rps)),
        ("stats", stats),
    ]);
    if let Err(e) = std::fs::write("BENCH_daemon.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_daemon.json: {e}");
    }
}

/// R1 — the robustness / chaos lane (DESIGN.md §14). Runs a real
/// socket daemon with deliberately tiny overload limits and drives it
/// past them while misbehaving clients share the socket:
///
/// - *good* clients issue conformance checks through the retrying
///   [`muppet_daemon::Endpoint::roundtrip_retry`] path and must all
///   reach the sequential-oracle verdict (zero wrong verdicts, ever);
/// - *flooding* clients pipeline far past the per-connection cap
///   without reading, and every pipelined request must still receive
///   exactly one response (shed or terminal), correlated by id;
/// - *vanishing* clients disconnect with requests in flight
///   (exercising per-connection cancel tokens);
/// - *malformed* clients send garbage frames and partial lines;
/// - a *stalling* client writes half a request line and hangs, and the
///   server must kill it at the read timeout (slow-loris);
/// - with `--features fault-inject`, global failpoints force solver
///   exhaustion and worker panics mid-burst.
///
/// Finally the server drains: `stop()` plus `wait()` must return
/// within the drain deadline (+ scheduling slack) even with work in
/// flight. Emits `BENCH_robustness.json` before gating so the
/// artifact exists even on a failed gate.
fn r1(t: &mut Table) {
    use muppet_daemon::json::Json;
    use muppet_daemon::{
        serve, Endpoint, Engine, EngineConfig, Op, OverloadConfig, Request, RetryPolicy,
        ServerConfig, SessionSpec,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const GOOD_CLIENTS: usize = 4;
    const VARIANTS: usize = 8;
    const FLOODERS: usize = 2;
    const PIPELINED: usize = 8;

    // Distinct extra ports give distinct fingerprints, so every variant
    // is a real cold solve the first time the daemon sees it — cache
    // hits would sidestep the queue and nothing would ever overload.
    let variant = |port: u16| -> SessionSpec {
        let mut s = SessionSpec::paper_relaxed();
        s.extra_ports.push(port);
        s
    };
    let variants: Vec<SessionSpec> = (0..VARIANTS).map(|i| variant(40_000 + i as u16)).collect();

    // Sequential oracle: the same engine code, in-process, one request
    // at a time, no admission control in the way.
    let oracle = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
    let expected: Vec<bool> = variants
        .iter()
        .map(|s| {
            let r = oracle.handle(&Request::new(Op::CheckConformance).with_spec(s.clone()), None);
            assert!(r.ok, "oracle conformance failed: {:?}", r.error);
            r.result
                .get("success")
                .and_then(Json::as_bool)
                .expect("oracle verdict")
        })
        .collect();

    // Tiny limits so a test-sized burst genuinely trips admission.
    let overload = OverloadConfig {
        max_queue_depth: 4,
        max_inflight_per_conn: 2,
        retry_after_ms: 10,
        drain_deadline_ms: 3_000,
        read_timeout_ms: 500,
    };
    let sock = std::env::temp_dir().join(format!("muppet-r1-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let handle = serve(ServerConfig {
        socket: Some(sock.clone()),
        tcp: None,
        workers: 2,
        engine: EngineConfig { threads: 1, ..EngineConfig::default() },
        overload,
    })
    .expect("serve");
    let ep = Endpoint::Unix(sock.clone());
    let io_timeout = Some(Duration::from_secs(30));

    let wrong = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let attempts_total = Arc::new(AtomicU64::new(0));
    let unanswered = Arc::new(AtomicU64::new(0));
    let shed_seen = Arc::new(AtomicU64::new(0));

    // Phase 1: everyone at once.
    let mut threads = Vec::new();
    for c in 0..GOOD_CLIENTS {
        let (ep, variants, expected) = (ep.clone(), variants.clone(), expected.clone());
        let (wrong, completed, attempts_total) =
            (wrong.clone(), completed.clone(), attempts_total.clone());
        threads.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                attempts: 12,
                base_delay: Duration::from_millis(5),
                deadline: Duration::from_secs(30),
                jitter_seed: Some(c as u64 + 1),
                ..RetryPolicy::default()
            };
            for (i, spec) in variants.iter().enumerate() {
                let req = Request::new(Op::CheckConformance).with_spec(spec.clone());
                let report = ep
                    .roundtrip_retry(&req, io_timeout, &policy)
                    .expect("good client transport error");
                attempts_total.fetch_add(report.attempts as u64, Ordering::Relaxed);
                let resp = report.response;
                if resp.overloaded {
                    // Retry budget ran out while the daemon was
                    // shedding: no verdict, but also no wrong verdict.
                    continue;
                }
                completed.fetch_add(1, Ordering::Relaxed);
                let verdict = resp.result.get("success").and_then(Json::as_bool);
                if !resp.ok || verdict != Some(expected[i]) {
                    wrong.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for f in 0..FLOODERS {
        let (ep, unanswered, shed_seen) = (ep.clone(), unanswered.clone(), shed_seen.clone());
        let spec_base = 41_000 + (f * PIPELINED) as u16;
        threads.push(std::thread::spawn(move || {
            // Pipeline far past the per-connection cap without reading;
            // every request must still get exactly one response.
            let mut client = ep.connect(io_timeout).expect("flooder connect");
            let mut want: std::collections::BTreeMap<String, ()> = Default::default();
            for k in 0..PIPELINED {
                let mut req =
                    Request::new(Op::CheckConformance).with_spec(variant(spec_base + k as u16));
                req.id = Some(format!("flood-{f}-{k}"));
                want.insert(req.id.clone().unwrap(), ());
                client.send(&req).expect("flooder send");
            }
            for _ in 0..PIPELINED {
                match client.recv() {
                    Ok(resp) => {
                        if resp.overloaded {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                resp.retry_after_ms.is_some(),
                                "shed responses must carry retry_after_ms"
                            );
                        }
                        if let Some(id) = resp.id {
                            want.remove(&id);
                        }
                    }
                    Err(_) => break,
                }
            }
            unanswered.fetch_add(want.len() as u64, Ordering::Relaxed);
        }));
    }
    // Vanishing clients: requests in flight, then a dead socket.
    for v in 0..2u16 {
        let ep = ep.clone();
        threads.push(std::thread::spawn(move || {
            if let Ok(mut client) = ep.connect(io_timeout) {
                let mut req = Request::new(Op::CheckConformance).with_spec(variant(42_000 + v));
                req.id = Some(format!("vanish-{v}"));
                let _ = client.send(&req);
                // Drop without reading: the reader must cancel the
                // in-flight request and the worker must not write to a
                // dead socket in any harmful way.
            }
        }));
    }
    // Malformed frames: parse failures must answer, not kill the server.
    {
        let ep = ep.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = ep.connect(io_timeout).expect("malformed connect");
            for frame in ["{\"op\":", "nonsense", "[1,2,3]", "{\"op\":\"no_such_op\"}"] {
                client.send_raw(frame).expect("malformed send");
                let resp = client.recv().expect("malformed frames still get responses");
                assert!(!resp.ok, "garbage must not succeed: {frame}");
            }
        }));
    }
    for th in threads {
        th.join().expect("chaos thread panicked");
    }

    // Phase 2: slow-loris. Half a request line, then silence — the
    // server must kill the connection at the read timeout instead of
    // pinning a reader thread forever.
    let stall_killed = {
        use std::io::{Read as _, Write as _};
        let mut raw = std::os::unix::net::UnixStream::connect(&sock).expect("stall connect");
        raw.write_all(b"{\"op\":\"stats\"").expect("stall write");
        raw.flush().ok();
        raw.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let t0 = std::time::Instant::now();
        let mut buf = Vec::new();
        // The server writes one failure line, then closes; read_to_end
        // returns once the close lands.
        let got = raw.read_to_end(&mut buf);
        let line = String::from_utf8_lossy(&buf).to_string();
        got.is_ok()
            && line.contains("read timeout")
            && t0.elapsed() < Duration::from_secs(4)
    };

    // Phase 3: injected solver faults (needs --features fault-inject).
    #[cfg(feature = "fault-inject")]
    let (fault_exhausted_terminal, fault_panic_terminal) = {
        use muppet_solver::fault::{ArmedGlobal, Mode};
        use muppet_solver::Phase;
        let exhausted = {
            let _g = ArmedGlobal::new(Phase::Search, 2, Mode::Exhaust);
            let mut all_terminal = true;
            for i in 0..3u16 {
                let req = Request::new(Op::CheckConformance).with_spec(variant(43_000 + i));
                // Any response is fine — exhausted, error, or success —
                // as long as one terminal line comes back.
                all_terminal &= ep.roundtrip(&req, io_timeout).is_ok();
            }
            all_terminal
        };
        let panicked = {
            let _g = ArmedGlobal::new(Phase::Ground, 1, Mode::Panic);
            let req = Request::new(Op::CheckConformance).with_spec(variant(43_100));
            // Grounding runs on a daemon worker thread; the injected
            // panic must surface as an error response, not a hang.
            matches!(ep.roundtrip(&req, io_timeout), Ok(r) if !r.ok)
        };
        // Disarmed again: the daemon still answers correctly.
        let r = ep
            .roundtrip(
                &Request::new(Op::CheckConformance).with_spec(variants[0].clone()),
                io_timeout,
            )
            .expect("post-fault roundtrip");
        assert_eq!(
            r.result.get("success").and_then(Json::as_bool),
            Some(expected[0]),
            "daemon must recover fully once faults are disarmed"
        );
        (exhausted, panicked)
    };
    #[cfg(not(feature = "fault-inject"))]
    let (fault_exhausted_terminal, fault_panic_terminal) = (true, true);

    // Overload counters as the daemon reports them (`stats` op).
    let stats = ep
        .roundtrip(&Request::new(Op::Stats), io_timeout)
        .expect("stats roundtrip");
    let overload_stats =
        stats.result.get("overload").cloned().unwrap_or(Json::Null);

    // Phase 4: graceful drain with work still in flight. Park fresh
    // requests in the queue, never read them, then stop: wait() must
    // come back within the drain deadline plus scheduling slack.
    let mut parked = ep.connect(io_timeout).expect("drain connect");
    for i in 0..2u16 {
        let mut req = Request::new(Op::CheckConformance).with_spec(variant(44_000 + i));
        req.id = Some(format!("drain-{i}"));
        parked.send(&req).expect("drain send");
    }
    let t_drain = std::time::Instant::now();
    handle.stop();
    handle.wait();
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
    drop(parked);
    let _ = std::fs::remove_file(&sock);

    let total_good = (GOOD_CLIENTS * VARIANTS) as u64;
    let wrong = wrong.load(Ordering::Relaxed);
    let completed = completed.load(Ordering::Relaxed);
    let attempts = attempts_total.load(Ordering::Relaxed);
    let unanswered = unanswered.load(Ordering::Relaxed);
    let sheds = shed_seen.load(Ordering::Relaxed);
    let drain_budget_ms = (overload.drain_deadline_ms + 2_000) as f64;

    let inst = "paper conformance variants under chaos";
    row(t, "R1", inst, "good-client requests", total_good.to_string(), "-");
    row(t, "R1", inst, "completed with a verdict", completed.to_string(), "-");
    row(t, "R1", inst, "wrong verdicts", wrong.to_string(), "0");
    row(t, "R1", inst, "retry attempts (total)", attempts.to_string(), ">= requests");
    row(t, "R1", inst, "pipelined requests unanswered", unanswered.to_string(), "0");
    row(t, "R1", inst, "sheds observed by flooders", sheds.to_string(), ">= 1");
    row(t, "R1", inst, "slow-loris killed at timeout", stall_killed.to_string(), "true");
    row(t, "R1", inst, "fault: exhaustion stays terminal", fault_exhausted_terminal.to_string(), "true");
    row(t, "R1", inst, "fault: worker panic answered", fault_panic_terminal.to_string(), "true");
    row(t, "R1", inst, "drain wall (ms)", format!("{drain_ms:.0}"), &format!("<= {drain_budget_ms:.0}"));

    // The artifact is written before any gate fires, so CI trend lines
    // survive a red run.
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-robustness-v1")),
        ("instance", Json::str(inst)),
        (
            "limits",
            Json::obj([
                ("max_queue_depth", Json::num(overload.max_queue_depth as u64)),
                ("max_inflight_per_conn", Json::num(overload.max_inflight_per_conn as u64)),
                ("retry_after_ms", Json::num(overload.retry_after_ms)),
                ("drain_deadline_ms", Json::num(overload.drain_deadline_ms)),
                ("read_timeout_ms", Json::num(overload.read_timeout_ms)),
            ]),
        ),
        ("good_requests", Json::num(total_good)),
        ("completed", Json::num(completed)),
        ("wrong_verdicts", Json::num(wrong)),
        ("retry_attempts", Json::num(attempts)),
        ("pipelined_unanswered", Json::num(unanswered)),
        ("sheds_seen_by_flooders", Json::num(sheds)),
        ("stall_killed", Json::Bool(stall_killed)),
        ("fault_exhaustion_terminal", Json::Bool(fault_exhausted_terminal)),
        ("fault_panic_terminal", Json::Bool(fault_panic_terminal)),
        ("fault_inject_compiled", Json::Bool(cfg!(feature = "fault-inject"))),
        ("drain_ms", Json::Num(drain_ms)),
        ("drain_budget_ms", Json::Num(drain_budget_ms)),
        ("overload_stats", overload_stats),
    ]);
    if let Err(e) = std::fs::write("BENCH_robustness.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_robustness.json: {e}");
    }

    assert_eq!(wrong, 0, "chaos must never produce a wrong verdict");
    assert!(
        completed >= total_good.saturating_sub(2),
        "almost every retried request must reach a verdict: {completed}/{total_good}"
    );
    assert_eq!(unanswered, 0, "every pipelined request must be answered");
    assert!(sheds >= 1, "the flood must trip admission control at least once");
    assert!(stall_killed, "the stalling connection must die at the read timeout");
    assert!(fault_exhausted_terminal && fault_panic_terminal, "faults must stay terminal");
    assert!(
        drain_ms <= drain_budget_ms,
        "drain took {drain_ms:.0} ms, budget {drain_budget_ms:.0} ms"
    );
}

/// P1 — the portfolio lane. Three honest measurements, always written
/// to `BENCH_portfolio.json`:
///
/// 1. *Verdict parity*: the hardest UNSAT reconcile in the suite runs
///    sequentially and with a 4-worker portfolio; the rendered verdicts
///    (success, minimal blame core, degradation marker, configs) must
///    be byte-identical.
/// 2. *Search behaviour*: a symmetric UNSAT CNF (pigeonhole) solved by
///    `solve_portfolio` at 1 and 4 workers, with wall clock and clause-
///    sharing counters. The speedup field reports whatever the host
///    actually delivers — on a single hardware thread, 4 workers are
///    legitimately *slower* (diversification without parallelism).
/// 3. *Determinism*: two lockstep-mode runs must agree on verdict,
///    winner and every aggregate counter.
fn p1(t: &mut Table) {
    use muppet_daemon::json::Json;
    use muppet_portfolio::{solve_portfolio, PortfolioConfig};

    // 1. Verdict parity on a fully-conflicted (UNSAT) scenario.
    // Blameable mode so the minimal core is part of the verdict.
    let scenario = generate(ScenarioParams {
        services: 12,
        istio_goals: 14,
        k8s_goals: 3,
        conflict_fraction: 1.0,
        seed: 11,
        ..ScenarioParams::default()
    });
    let render = |rec: &Reconciliation| {
        format!(
            "success={} core={:?} exhausted={} configs={:?}",
            rec.success,
            rec.core,
            rec.exhausted.is_some(),
            rec.configs,
        )
    };
    let run = |threads: usize| {
        let mut sess = scenario.session(false);
        govern(&mut sess);
        sess.set_threads(threads);
        timed_median(3, || sess.reconcile(ReconcileMode::Blameable).unwrap())
    };
    let (seq, d_seq) = run(1);
    let (par, d_par) = run(4);
    assert!(!seq.success, "parity scenario must be UNSAT");
    let identical = render(&seq) == render(&par);
    assert!(identical, "thread counts diverged:\n  1: {}\n  4: {}", render(&seq), render(&par));
    let rec_speedup = d_seq.as_secs_f64() / d_par.as_secs_f64().max(1e-9);
    row(t, "P1", "UNSAT reconcile (12 svc)", "verdicts byte-identical", identical.to_string(), "true");
    row(t, "P1", "UNSAT reconcile (12 svc)", "threads=1 (ms)", ms(d_seq), "-");
    row(t, "P1", "UNSAT reconcile (12 svc)", "threads=4 (ms)", ms(d_par), "host-dependent");
    let pf = par.stats.portfolio;

    // 2. Portfolio search on symmetric UNSAT CNF: pigeonhole PHP(8,7),
    // the shared corpus instance `hard-php-8-7`.
    let base = muppet_bench::scenario::hard::php_cnf(8, 7).solver();
    let search = |threads: usize| {
        timed_median(3, || {
            let mut s = base.clone();
            let (r, summary) = solve_portfolio(&mut s, &[], &PortfolioConfig::with_threads(threads));
            assert!(r.is_unsat(), "PHP(8,7) must be UNSAT");
            summary
        })
    };
    let (_, d_s1) = search(1);
    let (sum4, d_s4) = search(4);
    let search_speedup = d_s1.as_secs_f64() / d_s4.as_secs_f64().max(1e-9);
    row(t, "P1", "PHP(8,7) UNSAT", "threads=1 (ms)", ms(d_s1), "-");
    row(t, "P1", "PHP(8,7) UNSAT", "threads=4 (ms)", ms(d_s4), ">= 1.5x faster on >= 4 cores");
    row(
        t,
        "P1",
        "PHP(8,7) UNSAT",
        "shared clauses exported/imported",
        format!("{} / {}", sum4.exported, sum4.imported),
        "> 0 (pool is live)",
    );

    // 3. Deterministic lockstep mode: bitwise-reproducible statistics.
    let det_cfg = PortfolioConfig {
        deterministic: true,
        slice_conflicts: 256,
        ..PortfolioConfig::with_threads(3)
    };
    let det = || {
        let mut s = base.clone();
        let (r, summary) = solve_portfolio(&mut s, &[], &det_cfg);
        assert!(r.is_unsat());
        summary
    };
    let (da, db) = (det(), det());
    assert_eq!(da, db, "deterministic mode must reproduce exactly");
    row(t, "P1", "PHP(8,7) deterministic", "two runs identical", (da == db).to_string(), "true");

    let threads_obj = |s: &muppet::PortfolioSummary| {
        Json::obj([
            ("workers", Json::num(u64::from(s.workers))),
            (
                "winner",
                s.winner.map(|w| Json::num(u64::from(w))).unwrap_or(Json::Null),
            ),
            ("exported", Json::num(s.exported)),
            ("imported", Json::num(s.imported)),
            ("restarts", Json::num(s.restarts)),
            ("conflicts", Json::num(s.conflicts)),
        ])
    };
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-portfolio-v1")),
        ("host_cores", Json::num(std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1))),
        (
            "reconcile_parity",
            Json::obj([
                ("instance", Json::str("12 services, fully conflicted, blameable")),
                ("verdicts_identical", Json::Bool(identical)),
                ("verdict", Json::str(render(&seq))),
                ("threads1_ms", Json::Num(d_seq.as_secs_f64() * 1e3)),
                ("threads4_ms", Json::Num(d_par.as_secs_f64() * 1e3)),
                ("speedup", Json::Num(rec_speedup)),
                (
                    "portfolio",
                    pf.as_ref().map(threads_obj).unwrap_or(Json::Null),
                ),
            ]),
        ),
        (
            "search",
            Json::obj([
                ("instance", Json::str("PHP(8,7)")),
                ("threads1_ms", Json::Num(d_s1.as_secs_f64() * 1e3)),
                ("threads4_ms", Json::Num(d_s4.as_secs_f64() * 1e3)),
                ("speedup", Json::Num(search_speedup)),
                ("threads4", threads_obj(&sum4)),
            ]),
        ),
        (
            "deterministic",
            Json::obj([
                ("instance", Json::str("PHP(8,7), 3 workers, lockstep")),
                ("reproducible", Json::Bool(da == db)),
                ("summary", threads_obj(&da)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write("BENCH_portfolio.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_portfolio.json: {e}");
    }
}

/// O1 — the observability lane (DESIGN.md §12). Four honest checks,
/// always written to `BENCH_obs.json`:
///
/// 1. *Traced scenarios*: the paper tables run end-to-end with
///    tracing on and a [`muppet_obs::PhaseAccumulator`] registered;
///    the profiler must see every solve phase (`ground` → `encode` →
///    `search`) and the per-phase totals become the breakdown table.
/// 2. *Schema validation*: every span tree in the ring round-trips
///    through the daemon's hardened JSON parser and carries the
///    `name`/`start_us`/`elapsed_us`/`counters`/`attrs` fields at
///    every node.
/// 3. *Overhead gate*: the disabled-tracing span call is
///    micro-benched (it must cost one relaxed atomic load); the
///    implied per-solve overhead against an untraced paper reconcile
///    must stay ≤ 2%.
/// 4. The per-phase breakdown lands in `BENCH_obs.json`.
fn o1(t: &mut Table) {
    use muppet_daemon::json::{parse, Json};
    use muppet_obs::PhaseAccumulator;

    let was_enabled = muppet_obs::tracing_enabled();
    muppet_obs::clear_profilers();
    let acc = PhaseAccumulator::new();
    muppet_obs::on_span_close(acc.callback());
    muppet_obs::set_enabled(true);

    // 1. Traced scenario set: the paper tables, end to end.
    let mv = vocab();
    let mut strict = session(&mv, IstioTable::Fig3);
    govern(&mut strict);
    let rec = strict.reconcile(ReconcileMode::Blameable).unwrap();
    assert!(!rec.success, "strict paper tables must conflict");
    let mut relaxed = session(&mv, IstioTable::Fig4);
    govern(&mut relaxed);
    let rec = relaxed.reconcile(ReconcileMode::HardBounds).unwrap();
    assert!(rec.success, "relaxed paper tables must synthesize");
    let lc = relaxed.local_consistency(mv.istio_party).unwrap();
    assert!(lc.ok);
    strict
        .compute_envelope(mv.k8s_party, mv.istio_party, &Instance::new())
        .unwrap();

    // 2. Schema validation through the daemon's own JSON parser.
    let traces = muppet_obs::recent_traces(muppet_obs::ring_capacity());
    assert!(!traces.is_empty(), "traced run must record span trees");
    fn validate(node: &Json, validated: &mut u64) {
        for key in ["name", "start_us", "elapsed_us", "counters", "attrs"] {
            assert!(node.get(key).is_some(), "span node missing {key:?}");
        }
        assert!(node.get("name").unwrap().as_str().is_some(), "name is a string");
        assert!(node.get("elapsed_us").unwrap().as_u64().is_some(), "elapsed_us is integral");
        *validated += 1;
        if let Some(children) = node.get("children").and_then(Json::as_arr) {
            for child in children {
                validate(child, validated);
            }
        }
    }
    let mut spans_validated = 0u64;
    for tree in &traces {
        let parsed = parse(&tree.to_json()).expect("span tree must serialize to valid JSON");
        validate(&parsed, &mut spans_validated);
    }
    let spans_per_solve = traces
        .iter()
        .find(|tr| tr.name == "reconcile")
        .map(|tr| tr.span_count() as u64)
        .expect("ring must hold a reconcile trace");

    let totals = acc.drain();
    muppet_obs::clear_profilers();
    for phase in ["reconcile", "ground", "encode", "search"] {
        assert!(totals.contains_key(phase), "profiler must see phase {phase:?}");
    }

    // 3. Overhead gate: with tracing disabled a span call is one
    // relaxed atomic load + an inert guard drop.
    muppet_obs::set_enabled(false);
    let probes = 4_000_000u64;
    let t0 = std::time::Instant::now();
    for _ in 0..probes {
        drop(std::hint::black_box(muppet_obs::span("overhead-probe")));
    }
    let disabled_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
    let mut sess = session(&mv, IstioTable::Fig4);
    govern(&mut sess);
    let (rec, d_solve) =
        timed_median(REPS, || sess.reconcile(ReconcileMode::HardBounds).unwrap());
    assert!(rec.success);
    let overhead_pct =
        spans_per_solve as f64 * disabled_ns / (d_solve.as_secs_f64() * 1e9).max(1.0) * 100.0;
    assert!(
        overhead_pct <= 2.0,
        "disabled-tracing overhead {overhead_pct:.4}% breaks the 2% budget: \
         {spans_per_solve} spans x {disabled_ns:.1}ns against a {:.1}ms solve",
        d_solve.as_secs_f64() * 1e3
    );
    muppet_obs::set_enabled(was_enabled);

    for (name, p) in &totals {
        row(
            t,
            "O1",
            "paper scenarios",
            &format!("phase {name}"),
            format!("{}x / {}us total / {}us max", p.count, p.total_us, p.max_us),
            "per-phase breakdown",
        );
    }
    row(
        t,
        "O1",
        "span schema",
        "trees / spans validated",
        format!("{} / {spans_validated}", traces.len()),
        "all ring trees parse",
    );
    row(
        t,
        "O1",
        "overhead",
        "disabled span (ns)",
        format!("{disabled_ns:.1}"),
        "one relaxed atomic load",
    );
    row(
        t,
        "O1",
        "overhead",
        "implied per-solve (%)",
        format!("{overhead_pct:.4}"),
        "<= 2",
    );

    let phases = Json::Obj(
        totals
            .iter()
            .map(|(name, p)| {
                (
                    (*name).to_string(),
                    Json::obj([
                        ("count", Json::num(p.count)),
                        ("total_us", Json::num(p.total_us)),
                        ("max_us", Json::num(p.max_us)),
                    ]),
                )
            })
            .collect(),
    );
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-obs-v1")),
        ("phases", phases),
        (
            "traces",
            Json::obj([
                ("trees", Json::num(traces.len() as u64)),
                ("spans_validated", Json::num(spans_validated)),
                ("ring_capacity", Json::num(muppet_obs::ring_capacity() as u64)),
            ]),
        ),
        (
            "overhead",
            Json::obj([
                ("disabled_span_ns", Json::Num(disabled_ns)),
                ("spans_per_solve", Json::num(spans_per_solve)),
                ("solve_ms", Json::Num(d_solve.as_secs_f64() * 1e3)),
                ("overhead_pct", Json::Num(overhead_pct)),
                ("budget_pct", Json::Num(2.0)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write("BENCH_obs.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_obs.json: {e}");
    }
}

/// S1 — the scale lane (DESIGN.md §15). Runs the committed scenario
/// corpus end to end and gates every observed verdict against its
/// committed label: always the `smoke` + `paper` tiers plus the two
/// headline 1000-service `large` entries; the full `large` and `hard`
/// tiers when `MUPPET_SCALE=full`. Mesh entries run the whole
/// ground → encode → search pipeline with the obs profiler attached,
/// so `BENCH_scale.json` carries per-phase timings for every scenario.
/// The lane also regenerates the headline scenario twice and gates
/// byte-identical output (manifests, goal tables, provenance JSON).
/// `BENCH_scale.json` is always written before any gate fires.
fn s1(t: &mut Table) {
    use muppet_bench::scenario::corpus::{self, Kind, Tier};
    use muppet_daemon::json::Json;
    use muppet_obs::PhaseAccumulator;

    let full = std::env::var("MUPPET_SCALE").map(|v| v == "full").unwrap_or(false);
    let headline = ["large-1000-sat", "large-1000-unsat"];
    let selected: Vec<&corpus::CorpusEntry> = corpus::CORPUS
        .iter()
        .filter(|e| match e.tier {
            Tier::Smoke | Tier::Paper => true,
            Tier::Large => full || headline.contains(&e.name),
            Tier::Hard => full,
        })
        .collect();

    let was_enabled = muppet_obs::tracing_enabled();
    let mut scenarios: Vec<Json> = Vec::new();
    let mut mismatches: Vec<String> = Vec::new();
    let mut largest_phases: Option<(String, BTreeMap<&'static str, muppet_obs::PhaseTotals>)> =
        None;
    let mut largest_services = 0usize;
    for entry in &selected {
        muppet_obs::clear_profilers();
        let acc = PhaseAccumulator::new();
        muppet_obs::on_span_close(acc.callback());
        muppet_obs::set_enabled(true);
        let start = std::time::Instant::now();
        let got = corpus::solver_verdict(entry);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let totals = acc.drain();
        muppet_obs::clear_profilers();
        muppet_obs::set_enabled(was_enabled);

        let ok = got == entry.expected;
        if !ok {
            mismatches.push(format!(
                "{}: expected {}, got {got}",
                entry.name, entry.expected
            ));
        }
        row(
            t,
            "S1",
            entry.name,
            "verdict",
            format!("{got} in {wall_ms:.0} ms"),
            entry.expected.label(),
        );
        if let Kind::Mesh(params) = entry.kind {
            if params.services > largest_services {
                largest_services = params.services;
                largest_phases = Some((entry.name.to_string(), totals.clone()));
            }
        }
        let phases = Json::Obj(
            totals
                .iter()
                .map(|(name, p)| {
                    (
                        (*name).to_string(),
                        Json::obj([
                            ("count", Json::num(p.count)),
                            ("total_us", Json::num(p.total_us)),
                            ("max_us", Json::num(p.max_us)),
                        ]),
                    )
                })
                .collect(),
        );
        scenarios.push(Json::obj([
            ("name", Json::str(entry.name)),
            ("tier", Json::str(entry.tier.name())),
            ("expected", Json::str(entry.expected.label())),
            ("got", Json::str(got.label())),
            ("ok", Json::Bool(ok)),
            ("wall_ms", Json::Num(wall_ms)),
            ("phases", phases),
        ]));
    }

    // Determinism gate: the headline scenario regenerated from scratch
    // must be byte-identical — manifests, goal tables and provenance.
    let head = corpus::entry("large-1000-sat").expect("headline entry exists");
    let Kind::Mesh(params) = head.kind else {
        panic!("headline entry must be a mesh scenario")
    };
    let a = muppet_bench::scenario::generate(params);
    let b = muppet_bench::scenario::generate(params);
    let regen_identical = a.wire_content() == b.wire_content()
        && a.provenance_json(head.name) == b.provenance_json(head.name);
    row(
        t,
        "S1",
        head.name,
        "regeneration byte-identical",
        regen_identical.to_string(),
        "true (seeded determinism)",
    );

    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-scale-v1")),
        ("mode", Json::str(if full { "full" } else { "headline" })),
        ("regeneration_identical", Json::Bool(regen_identical)),
        ("scenarios", Json::Arr(scenarios)),
    ]);
    if let Err(e) = std::fs::write("BENCH_scale.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_scale.json: {e}");
    }

    // Gates fire only after BENCH_scale.json is on disk.
    assert!(mismatches.is_empty(), "corpus label mismatches: {mismatches:?}");
    assert!(regen_identical, "same seed + params must regenerate byte-identically");
    let (largest_name, phases) = largest_phases.expect("lane must run a mesh scenario");
    assert!(
        largest_services >= 1000,
        "scale lane must solve a >= 1000-service mesh (got {largest_services})"
    );
    for phase in ["ground", "encode", "search"] {
        let p = match phases.get(phase) {
            Some(p) => p,
            None => panic!("{largest_name}: no {phase} phase recorded"),
        };
        row(
            t,
            "S1",
            &largest_name,
            &format!("phase {phase}"),
            format!("{}x / {}us total / {}us max", p.count, p.total_us, p.max_us),
            "per-phase breakdown",
        );
    }
}

/// N1 — the incremental-engine lane (DESIGN.md §13). The paper's
/// K8s/Istio negotiation (Fig. 2 vs Fig. 3, the mesh admin's rows soft
/// so blamed ones can be conceded) runs as repeated episodes the way
/// the daemon replays `NegotiateRound`: the **warm** path feeds every
/// episode through one `PreparedStore`, the **cold** path compiles a
/// fresh engine for every query. Two gates, always written to
/// `BENCH_incremental.json`:
///
/// 1. *Byte identity*: every episode's verdict, round count, delivered
///    configs and full trace (the counter-offer sequence) must be
///    identical between the two paths.
/// 2. *Work ratio*: the cold path must re-encode >= 3x more CNF groups
///    than the warm path, measured as deltas of the global
///    `engine.groups.encoded` counter around each phase.
fn n1(t: &mut Table) {
    use muppet::negotiate::{run_negotiation_cold, run_negotiation_with_store};
    use muppet_daemon::json::Json;
    use muppet_solver::PreparedStore;

    const EPISODES: usize = 4;
    const MAX_ROUNDS: usize = 8;

    let mv = vocab();
    // The daemon's NegotiateRound shape (Fig. 9 roles): the cluster
    // admin holds firm, the mesh admin's strict Fig. 3 rows are soft.
    let build = || {
        let mut s = session(&mv, IstioTable::Fig3);
        govern(&mut s);
        if let Ok(p) = s.party_mut(mv.istio_party) {
            for g in &mut p.goals {
                g.hard = false;
            }
        }
        s
    };
    let negs = || {
        let mut n: BTreeMap<muppet_logic::PartyId, Box<dyn Negotiator>> = BTreeMap::new();
        n.insert(mv.k8s_party, Box::new(Stubborn));
        n.insert(mv.istio_party, Box::new(DropBlamedSoftGoals));
        n
    };
    let encoded = || {
        muppet_obs::registry()
            .snapshot()
            .counter("engine.groups.encoded")
            .unwrap_or(0)
    };
    let ground_hits = || {
        muppet_obs::registry()
            .snapshot()
            .counter("engine.ground_cache.hits")
            .unwrap_or(0)
    };

    // Warm: one store across all episodes, the daemon's lifetime shape.
    let mut store = PreparedStore::new();
    let warm_before = (encoded(), ground_hits());
    let t0 = std::time::Instant::now();
    let warm_reports: Vec<_> = (0..EPISODES)
        .map(|_| {
            let mut s = build();
            run_negotiation_with_store(&mut s, &mut negs(), MAX_ROUNDS, &mut store).unwrap()
        })
        .collect();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_encoded = encoded() - warm_before.0;
    let warm_ground_hits = ground_hits() - warm_before.1;

    // Cold: identical episodes, every query on a fresh engine.
    let cold_before = encoded();
    let t1 = std::time::Instant::now();
    let cold_reports: Vec<_> = (0..EPISODES)
        .map(|_| {
            let mut s = build();
            run_negotiation_cold(&mut s, &mut negs(), MAX_ROUNDS).unwrap()
        })
        .collect();
    let cold_ms = t1.elapsed().as_secs_f64() * 1e3;
    let cold_encoded = encoded() - cold_before;

    // Gate 1: byte-identical verdicts and counter-offer sequences.
    let render = |r: &muppet::negotiate::NegotiationReport| {
        format!(
            "success={} rounds={} configs={:?} trace={:?}",
            r.success, r.rounds, r.configs, r.trace
        )
    };
    let mut identical = true;
    for (w, c) in warm_reports.iter().zip(&cold_reports) {
        if render(w) != render(c) {
            identical = false;
        }
        assert!(w.success, "paper negotiation must converge");
    }
    assert!(
        identical,
        "warm and cold negotiations diverged:\n  warm: {}\n  cold: {}",
        render(&warm_reports[0]),
        render(&cold_reports[0]),
    );

    // Gate 2: the cold path re-encodes >= 3x more groups.
    let ratio = cold_encoded as f64 / (warm_encoded.max(1)) as f64;
    let inst = format!("paper fig2/fig3, {EPISODES} episodes");
    row(t, "N1", &inst, "verdicts + traces byte-identical", identical.to_string(), "true");
    row(t, "N1", &inst, "rounds per episode", warm_reports[0].rounds.to_string(), "-");
    row(t, "N1", &inst, "groups encoded (warm)", warm_encoded.to_string(), "-");
    row(t, "N1", &inst, "groups encoded (cold)", cold_encoded.to_string(), "-");
    row(t, "N1", &inst, "cold/warm encode ratio", format!("{ratio:.1}x"), ">= 3x");
    row(t, "N1", &inst, "ground-cache hits (warm)", warm_ground_hits.to_string(), "-");
    row(t, "N1", &inst, "warm wall (ms)", format!("{warm_ms:.1}"), "-");
    row(t, "N1", &inst, "cold wall (ms)", format!("{cold_ms:.1}"), "-");
    assert!(
        ratio >= 3.0,
        "cold path must re-encode >= 3x more groups than warm: cold {cold_encoded} vs warm {warm_encoded}"
    );

    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-incremental-v1")),
        ("instance", Json::str("paper fig2 vs fig3, istio rows soft")),
        ("episodes", Json::num(EPISODES as u64)),
        ("rounds_per_episode", Json::num(warm_reports[0].rounds as u64)),
        ("verdicts_identical", Json::Bool(identical)),
        ("verdict", Json::str(render(&warm_reports[0]))),
        (
            "warm",
            Json::obj([
                ("groups_encoded", Json::num(warm_encoded)),
                ("ground_cache_hits", Json::num(warm_ground_hits)),
                ("wall_ms", Json::Num(warm_ms)),
            ]),
        ),
        (
            "cold",
            Json::obj([
                ("groups_encoded", Json::num(cold_encoded)),
                ("wall_ms", Json::Num(cold_ms)),
            ]),
        ),
        ("encode_ratio", Json::Num(ratio)),
        ("gate_ratio", Json::Num(3.0)),
    ]);
    if let Err(e) = std::fs::write("BENCH_incremental.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_incremental.json: {e}");
    }
}

/// W1 — the streaming-reconfiguration lane (DESIGN.md §16). Replays
/// the committed `stream-policy-churn` edit stream (250 ban
/// upserts/retractions over a fixed 24-service mesh) through two
/// engines in lockstep:
///
/// - **warm**: one [`muppet_stream::StreamSession`] ingests every
///   delta multi-shot — unchanged CNF groups are reused by content
///   fingerprint and grounding hits the subformula cache;
/// - **cold oracle**: after every delta the accumulated configuration
///   state is rebuilt and re-solved from scratch (fresh vocabulary,
///   fresh grounding, fresh encoding, fresh solver).
///
/// Two gates, applied only after `BENCH_stream.json` is on disk:
///
/// 1. *Byte identity*: the warm verdict line (canonical lex-min model
///    or ordered-deletion minimal core) equals the cold oracle's at
///    the initial state and after every one of the >= 200 deltas;
/// 2. *Amortized speedup*: total cold wall over total warm wall must
///    be >= 5x — multi-shot solving has to beat re-solving from
///    scratch by a wide margin, not a rounding error.
fn w1(t: &mut Table) {
    use muppet_bench::scenario::corpus::{self, Kind};
    use muppet_daemon::json::Json;
    use muppet_stream::{verdict_line, StreamSession, StreamSpec};

    // The bounded-offer churn entry: tight offers keep the free tuple
    // count under the solver's canonicalization cap, so warm and cold
    // SAT answers are both canonical (byte-comparable) — and grounding
    // plus encoding dominate each cold solve, which is exactly the work
    // the multi-shot session amortizes.
    let entry = corpus::entry("stream-bounded-churn").expect("committed stream entry");
    let Kind::Stream(params) = entry.kind else {
        panic!("stream-bounded-churn must be a stream corpus entry")
    };
    assert!(params.deltas >= 200, "the speedup gate needs a >= 200-delta stream");
    let stream = muppet_bench::scenario::generate_stream(params);

    // Warm: one multi-shot session across the whole stream.
    let t0 = std::time::Instant::now();
    let (mut warm, initial) =
        StreamSession::new(StreamSpec::from(&stream.base)).expect("initial state solves");
    let mut warm_verdicts: Vec<String> = vec![initial.verdict.clone()];
    let mut flips = 0u64;
    let mut max_delta_us = initial.elapsed_us;
    for d in &stream.deltas {
        let s = warm.push(d).expect("committed stream replays warm");
        flips += u64::from(s.flipped);
        max_delta_us = max_delta_us.max(s.elapsed_us);
        warm_verdicts.push(s.verdict);
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (encoded, reused) = warm.group_counters();
    let (gc_hits, gc_misses) = warm.ground_cache_counters();
    let hit_rate = warm.ground_cache_hit_rate().unwrap_or(0.0);

    // Cold oracle: the identical state sequence, each solved from
    // scratch. Same session construction and thread count as the warm
    // path, so any divergence is the multi-shot engine's fault.
    let mut cold_spec = StreamSpec::from(&stream.base);
    let cold_solve = |spec: &StreamSpec| -> String {
        let mv = spec.vocab();
        let mut s = spec.session(&mv).expect("cold session builds");
        s.set_threads(1);
        let rec = s.reconcile(ReconcileMode::HardBounds).expect("cold reconcile");
        assert!(rec.exhausted.is_none(), "cold oracle must not exhaust");
        verdict_line(&rec)
    };
    let t1 = std::time::Instant::now();
    let mut cold_verdicts: Vec<String> = vec![cold_solve(&cold_spec)];
    for d in &stream.deltas {
        d.apply_parts(
            &mut cold_spec.mesh,
            &mut cold_spec.k8s_goals,
            &mut cold_spec.istio_goals,
        )
        .expect("committed stream replays cold");
        cold_verdicts.push(cold_solve(&cold_spec));
    }
    let cold_ms = t1.elapsed().as_secs_f64() * 1e3;

    let solves = warm_verdicts.len();
    let identical = warm_verdicts
        .iter()
        .zip(&cold_verdicts)
        .filter(|(w, c)| w == c)
        .count();
    let first_divergence = warm_verdicts
        .iter()
        .zip(&cold_verdicts)
        .position(|(w, c)| w != c);
    let speedup = cold_ms / warm_ms.max(1e-9);
    let warm_amortized_us = warm_ms * 1e3 / solves as f64;
    let cold_amortized_us = cold_ms * 1e3 / solves as f64;

    let inst = format!("{} ({} deltas)", entry.name, stream.deltas.len());
    row(t, "W1", &inst, "verdicts byte-identical", format!("{identical}/{solves}"), "all");
    row(t, "W1", &inst, "amortized speedup", format!("{speedup:.1}x"), ">= 5x");
    row(
        t,
        "W1",
        &inst,
        "warm amortized per delta (ms)",
        format!("{:.2}", warm_amortized_us / 1e3),
        "-",
    );
    row(
        t,
        "W1",
        &inst,
        "cold amortized per delta (ms)",
        format!("{:.2}", cold_amortized_us / 1e3),
        "-",
    );
    row(t, "W1", &inst, "warm max delta (ms)", format!("{:.2}", max_delta_us as f64 / 1e3), "-");
    row(t, "W1", &inst, "verdict flips observed", flips.to_string(), "-");
    row(
        t,
        "W1",
        &inst,
        "groups encoded / reused",
        format!("{encoded} / {reused}"),
        "reuse dominates",
    );
    row(
        t,
        "W1",
        &inst,
        "ground-cache hit rate",
        format!("{:.3}", hit_rate),
        "-",
    );

    // The artifact is written before any gate fires, so CI trend lines
    // survive a red run.
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-stream-v1")),
        ("entry", Json::str(entry.name)),
        ("profile", Json::str(params.profile.name())),
        ("deltas", Json::num(stream.deltas.len() as u64)),
        ("solves", Json::num(solves as u64)),
        ("verdicts_identical", Json::num(identical as u64)),
        (
            "first_divergence_seq",
            match first_divergence {
                Some(i) => Json::num(i as u64),
                None => Json::Null,
            },
        ),
        ("verdict_flips", Json::num(flips)),
        (
            "warm",
            Json::obj([
                ("wall_ms", Json::Num(warm_ms)),
                ("amortized_us_per_delta", Json::Num(warm_amortized_us)),
                ("max_delta_us", Json::num(max_delta_us)),
                ("groups_encoded", Json::num(encoded)),
                ("groups_reused", Json::num(reused)),
                (
                    "ground_cache",
                    Json::obj([
                        ("hits", Json::num(gc_hits)),
                        ("misses", Json::num(gc_misses)),
                        ("hit_rate", Json::Num(hit_rate)),
                    ]),
                ),
            ]),
        ),
        (
            "cold",
            Json::obj([
                ("wall_ms", Json::Num(cold_ms)),
                ("amortized_us_per_delta", Json::Num(cold_amortized_us)),
            ]),
        ),
        ("amortized_speedup", Json::Num(speedup)),
        ("gate_speedup", Json::Num(5.0)),
    ]);
    if let Err(e) = std::fs::write("BENCH_stream.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_stream.json: {e}");
    }

    assert_eq!(
        identical,
        solves,
        "warm and cold verdicts diverged first at seq {:?}:\n  warm: {}\n  cold: {}",
        first_divergence,
        first_divergence.map(|i| warm_verdicts[i].as_str()).unwrap_or(""),
        first_divergence.map(|i| cold_verdicts[i].as_str()).unwrap_or(""),
    );
    assert!(
        speedup >= 5.0,
        "multi-shot solving must amortize >= 5x over cold re-solves: \
         warm {warm_ms:.0} ms vs cold {cold_ms:.0} ms over {solves} solves"
    );
}

/// K1 — the SAT-kernel speed lane (DESIGN.md §17).
///
/// **Part A** solves every hard-tier CNF corpus entry sequentially
/// under two in-binary kernel profiles: the legacy pre-change kernel
/// ([`muppet_sat::Solver::set_legacy_kernel`] — flat reduction, Luby
/// schedule, no inprocessing, one-step minimization, fixed decay: the
/// pre-upgrade oracle) and the tuned defaults (tiered clause DB,
/// inprocessing with geometric backoff, recursive minimization, decay
/// ramp). Work counters are deterministic per profile; wall clock is
/// not, so timings are best-of-3. Both profiles must reproduce the
/// committed verdict on every entry, and on `hard-pup-unsat-5` — the
/// refutation the speed program is gated on — the tuned kernel must
/// finish in ≤ 0.8x the legacy wall time.
///
/// **Part B** solves the committed minimal-edit scenario
/// (`minedit(400, 50, 8)`: optimal distance 50 by construction, 800
/// free tuples, one-of-16 goals) with the core-guided (OLL) and
/// linear-search `solve_target` strategies. Two measurements: a
/// *timed* pass with the canonical walk disabled (it costs the same in
/// both arms and would only blur the optimization-search comparison)
/// gating core-guided at ≥ 2x less deterministic solver work
/// (propagations) than linear, wall clock reported best-of-3; and a
/// *parity* pass with unconditional canonicalization gating
/// byte-identical solutions at the constructed optimum.
///
/// `BENCH_kernel.json` — per-entry walls + verdicts + kernel work
/// counters (conflicts, inprocessing passes, subsumed / strengthened /
/// vivified clauses, tier churn) and per-phase minedit timings — is
/// always written before any gate fires.
fn k1(t: &mut Table) {
    use muppet_bench::scenario::corpus::{self, Tier};
    use muppet_bench::scenario::minedit::minedit;
    use muppet_daemon::json::Json;
    use muppet_obs::PhaseAccumulator;
    use muppet_sat::{SolveResult, Solver, SolverStats};
    use muppet_solver::TargetStrategy;

    const BEST_OF: usize = 3;
    const GATED: &str = "hard-pup-unsat-5";
    const WALL_CEILING: f64 = 0.8;
    const OLL_FLOOR: f64 = 2.0;

    // ---- Part A: hard-tier CNF corpus, legacy vs tuned kernel ----
    let stats_json = |s: &SolverStats| {
        Json::obj([
            ("conflicts", Json::num(s.conflicts)),
            ("propagations", Json::num(s.propagations)),
            ("restarts", Json::num(s.restarts)),
            ("learned", Json::num(s.learned_clauses)),
            ("deleted", Json::num(s.deleted_clauses)),
            ("inprocessings", Json::num(s.inprocessings)),
            ("subsumed", Json::num(s.subsumed_clauses)),
            ("strengthened", Json::num(s.strengthened_clauses)),
            ("vivified", Json::num(s.vivified_clauses)),
            ("tier_demotions", Json::num(s.tier_demotions)),
            ("tier_promotions", Json::num(s.tier_promotions)),
        ])
    };
    let mut entries: Vec<Json> = Vec::new();
    let mut parity_failures: Vec<String> = Vec::new();
    let mut gated_ratio: Option<f64> = None;
    for entry in corpus::entries(Tier::Hard) {
        let inst = corpus::cnf_instance(entry.kind).expect("hard tier is CNF-backed");
        let profile = |legacy: bool| -> (f64, bool, SolverStats) {
            let mut best: Option<(f64, bool, SolverStats)> = None;
            for _ in 0..BEST_OF {
                let mut s: Solver = inst.solver();
                if legacy {
                    s.set_legacy_kernel();
                }
                let start = std::time::Instant::now();
                let sat = matches!(s.solve(), SolveResult::Sat(_));
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                if best.as_ref().is_none_or(|(w, _, _)| wall_ms < *w) {
                    best = Some((wall_ms, sat, s.stats));
                }
            }
            best.expect("BEST_OF > 0")
        };
        let (legacy_ms, legacy_sat, legacy_stats) = profile(true);
        let (tuned_ms, tuned_sat, tuned_stats) = profile(false);
        for (kernel, sat) in [("legacy", legacy_sat), ("tuned", tuned_sat)] {
            if !entry.expected.matches_success(sat) {
                parity_failures.push(format!(
                    "{} under the {kernel} kernel: expected {}, got {}",
                    entry.name,
                    entry.expected,
                    if sat { "sat" } else { "unsat" },
                ));
            }
        }
        let ratio = tuned_ms / legacy_ms.max(1e-9);
        if entry.name == GATED {
            gated_ratio = Some(ratio);
        }
        row(
            t,
            "K1",
            entry.name,
            "tuned vs legacy kernel",
            format!(
                "{tuned_ms:.0} ms vs {legacy_ms:.0} ms (ratio {ratio:.2}, \
                 {} vs {} conflicts)",
                tuned_stats.conflicts, legacy_stats.conflicts
            ),
            if entry.name == GATED {
                "ratio <= 0.8 (speed gate)"
            } else {
                "verdict parity"
            },
        );
        entries.push(Json::obj([
            ("name", Json::str(entry.name)),
            ("expected", Json::str(entry.expected.label())),
            ("verdict_parity", Json::Bool(
                entry.expected.matches_success(legacy_sat)
                    && entry.expected.matches_success(tuned_sat),
            )),
            ("legacy_wall_ms", Json::Num(legacy_ms)),
            ("tuned_wall_ms", Json::Num(tuned_ms)),
            ("ratio", Json::Num(ratio)),
            ("gated", Json::Bool(entry.name == GATED)),
            ("legacy", stats_json(&legacy_stats)),
            ("tuned", stats_json(&tuned_stats)),
        ]));
    }

    // ---- Part B: minedit, core-guided vs linear solve_target ----
    let sc = minedit(400, 50, 8);
    const MINEDIT: &str = "minedit-400-50x8";
    let was_enabled = muppet_obs::tracing_enabled();
    // Timed pass: canonical walk off (it costs the same in both arms),
    // so wall + work counters measure the optimization search alone.
    // Work counters are deterministic; wall is best-of-3.
    let timed_run = |strategy: TargetStrategy| {
        let mut best: Option<(f64, usize, u64, u64, Json)> = None;
        for _ in 0..BEST_OF {
            let (mut q, active) = sc.engine();
            q.set_target_strategy(strategy);
            q.set_canonical_cap(0);
            muppet_obs::clear_profilers();
            let acc = PhaseAccumulator::new();
            muppet_obs::on_span_close(acc.callback());
            muppet_obs::set_enabled(true);
            let start = std::time::Instant::now();
            let (out, d) = q.solve_target(&active, &sc.target, Budget::unlimited());
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let totals = acc.drain();
            muppet_obs::clear_profilers();
            muppet_obs::set_enabled(was_enabled);
            let stats = out.stats();
            let (props, confl) = (stats.propagations, stats.conflicts);
            assert!(out.is_sat(), "minedit must be satisfiable");
            let phases = Json::Obj(
                totals
                    .iter()
                    .map(|(name, p)| {
                        (
                            (*name).to_string(),
                            Json::obj([
                                ("count", Json::num(p.count)),
                                ("total_us", Json::num(p.total_us)),
                                ("max_us", Json::num(p.max_us)),
                            ]),
                        )
                    })
                    .collect(),
            );
            if best.as_ref().is_none_or(|(w, _, _, _, _)| wall_ms < *w) {
                best = Some((wall_ms, d, props, confl, phases));
            }
        }
        best.expect("BEST_OF > 0")
    };
    let (oll_ms, oll_d, oll_props, oll_confl, oll_phases) =
        timed_run(TargetStrategy::CoreGuided);
    let (lin_ms, lin_d, lin_props, lin_confl, lin_phases) =
        timed_run(TargetStrategy::Linear);
    let wall_speedup = lin_ms / oll_ms.max(1e-9);
    let work_speedup = lin_props as f64 / oll_props.max(1) as f64;
    // Parity pass: unconditional canonicalization (800 free tuples is
    // past the default cap), so both strategies must land on the same
    // byte-identical distance-minimal model.
    let parity_run = |strategy: TargetStrategy| {
        let (mut q, active) = sc.engine();
        q.set_target_strategy(strategy);
        q.set_canonical_cap(usize::MAX);
        let (out, d) = q.solve_target(&active, &sc.target, Budget::unlimited());
        format!("{:?} at distance {d}", out.solution())
    };
    let identical =
        parity_run(TargetStrategy::CoreGuided) == parity_run(TargetStrategy::Linear);
    row(
        t,
        "K1",
        MINEDIT,
        "core-guided vs linear",
        format!(
            "{oll_ms:.0} ms / {oll_props} props vs {lin_ms:.0} ms / {lin_props} \
             props ({work_speedup:.1}x work, {wall_speedup:.1}x wall), \
             distance {oll_d} vs {lin_d}, canonical-identical {identical}"
        ),
        "work >= 2x, distance 50, byte-identical",
    );

    // BENCH_kernel.json lands before any gate fires, so a red gate
    // still leaves the full measurement on disk.
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-kernel-v1")),
        ("best_of", Json::num(BEST_OF as u64)),
        ("entries", Json::Arr(entries)),
        (
            "minedit",
            Json::obj([
                ("name", Json::str(MINEDIT)),
                ("optimum", Json::num(sc.optimum as u64)),
                (
                    "core_guided",
                    Json::obj([
                        ("wall_ms", Json::Num(oll_ms)),
                        ("distance", Json::num(oll_d as u64)),
                        ("propagations", Json::num(oll_props)),
                        ("conflicts", Json::num(oll_confl)),
                        ("phases", oll_phases),
                    ]),
                ),
                (
                    "linear",
                    Json::obj([
                        ("wall_ms", Json::Num(lin_ms)),
                        ("distance", Json::num(lin_d as u64)),
                        ("propagations", Json::num(lin_props)),
                        ("conflicts", Json::num(lin_confl)),
                        ("phases", lin_phases),
                    ]),
                ),
                ("wall_speedup", Json::Num(wall_speedup)),
                ("work_speedup", Json::Num(work_speedup)),
                ("identical", Json::Bool(identical)),
            ]),
        ),
        (
            "gates",
            Json::obj([
                ("wall_ceiling", Json::Num(WALL_CEILING)),
                ("oll_floor", Json::Num(OLL_FLOOR)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write("BENCH_kernel.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_kernel.json: {e}");
    }

    // Gates fire only after BENCH_kernel.json is on disk.
    assert!(
        parity_failures.is_empty(),
        "hard-tier verdicts diverged: {parity_failures:?}"
    );
    let ratio = gated_ratio.expect("gated entry must be in the hard tier");
    assert!(
        ratio <= WALL_CEILING,
        "tuned kernel must finish {GATED} in <= {WALL_CEILING}x the legacy \
         wall time, measured {ratio:.2}x"
    );
    assert_eq!(oll_d, sc.optimum, "core-guided missed the constructed optimum");
    assert_eq!(lin_d, sc.optimum, "linear search missed the constructed optimum");
    assert!(identical, "strategies must canonicalize to the same model");
    assert!(
        work_speedup >= OLL_FLOOR,
        "core-guided solve_target must do >= {OLL_FLOOR}x less solver work than \
         linear on minedit, measured {work_speedup:.1}x ({oll_props} vs {lin_props} \
         propagations)"
    );
}

/// M1 — the ConfigDomain plugin lane (DESIGN.md §18). Two parts:
///
/// * **Part A** drives the committed `linkerd-shop` corpus scenario
///   end-to-end through the daemon engine: `open_session` (registry
///   dispatch on the spec's `domain` field), per-party consistency,
///   blameable reconciliation (the committed verdict is unsat, with
///   blame naming both administrators), and a negotiation round that
///   must converge once the Linkerd side's soft rows drop.
/// * **Part B** runs an N=3 round-robin negotiation (Fig. 9
///   generalized) to its fixpoint: converge, then re-negotiate and
///   verify the second run is a one-round no-op.
///
/// `BENCH_domains.json` is always written before any gate fires.
fn m1(t: &mut Table) {
    use muppet_bench::scenario::corpus;
    use muppet_daemon::json::Json;
    use muppet_daemon::{Engine, EngineConfig, Op, Request, SessionSpec};

    const INST: &str = "linkerd-shop";

    // ---- Part A: the Linkerd domain through the daemon ----
    let entry = corpus::entry(INST).expect("linkerd corpus entry is committed");
    let engine = Engine::new(EngineConfig::default());
    let spec = SessionSpec::linkerd_example();

    let t0 = std::time::Instant::now();
    let open = engine.handle(&Request::new(Op::OpenSession).with_spec(spec.clone()), None);
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(open.ok, "open_session failed: {:?}", open.error);
    let domain = open
        .result
        .get("domain")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();

    let consistent = |party: &str| -> bool {
        let mut req = Request::new(Op::CheckConsistency).with_spec(spec.clone());
        req.party = Some(party.to_string());
        let resp = engine.handle(&req, None);
        assert!(resp.ok, "consistency({party}) failed: {:?}", resp.error);
        resp.result.get("ok").and_then(Json::as_bool) == Some(true)
    };
    let platform_ok = consistent("platform");
    let linkerd_ok = consistent("linkerd");

    let t1 = std::time::Instant::now();
    let mut rec_req = Request::new(Op::Reconcile).with_spec(spec.clone());
    rec_req.mode = Some("blameable".to_string());
    let rec = engine.handle(&rec_req, None);
    let rec_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(rec.ok, "reconcile failed: {:?}", rec.error);
    let rec_success = rec.result.get("success").and_then(Json::as_bool) == Some(true);
    let core_len = match rec.result.get("core") {
        Some(Json::Arr(items)) => items.len(),
        _ => 0,
    };
    let core_text = rec
        .result
        .get("core")
        .map(Json::to_line)
        .unwrap_or_default();
    let blames_both =
        core_text.contains("platform-admin") && core_text.contains("linkerd-admin");

    let t2 = std::time::Instant::now();
    let mut neg_req = Request::new(Op::NegotiateRound).with_spec(spec.clone());
    neg_req.max_rounds = Some(12);
    let neg = engine.handle(&neg_req, None);
    let neg_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert!(neg.ok, "negotiate_round failed: {:?}", neg.error);
    let neg_success = neg.result.get("success").and_then(Json::as_bool) == Some(true);
    let neg_rounds = neg
        .result
        .get("rounds")
        .and_then(Json::as_u64)
        .unwrap_or(0);

    row(t, "M1", INST, "domain (open_session)", domain.clone(), "linkerd");
    row(
        t,
        "M1",
        INST,
        "per-party consistency",
        format!("platform {platform_ok}, linkerd {linkerd_ok}"),
        "both true",
    );
    row(
        t,
        "M1",
        INST,
        "reconcile verdict",
        format!(
            "{} in {rec_ms:.0} ms, core {core_len} goals, blames both {blames_both}",
            if rec_success { "sat" } else { "unsat" }
        ),
        &format!("{} (committed label), blame both admins", entry.expected.label()),
    );
    row(
        t,
        "M1",
        INST,
        "negotiation (soft linkerd rows)",
        format!(
            "{} after {neg_rounds} round(s) in {neg_ms:.0} ms",
            if neg_success { "converged" } else { "stuck" }
        ),
        "converges",
    );

    // ---- Part B: N=3 round-robin negotiation to fixpoint ----
    use muppet::{NamedGoal, Party};
    use muppet_logic::{Domain, PartyId, Term, Universe, Vocabulary};
    use std::collections::BTreeMap;

    let mut universe = Universe::new();
    let sort = universe.add_sort("F");
    let x = universe.add_atom(sort, "x");
    let mut vocab = Vocabulary::new();
    let parties = [PartyId(0), PartyId(1), PartyId(2)];
    let rels = [
        vocab.add_simple_rel("en_a", vec![sort], Domain::Party(parties[0])),
        vocab.add_simple_rel("en_b", vec![sort], Domain::Party(parties[1])),
        vocab.add_simple_rel("en_c", vec![sort], Domain::Party(parties[2])),
    ];
    let lit = |r: usize| Formula::pred(rels[r], [Term::Const(x)]);
    let mut s = Session::new(&universe, vocab.clone(), Instance::new());
    govern(&mut s);
    s.add_party(Party::new(parties[0], "A").with_goals([NamedGoal::hard("require c-x", lit(2))]));
    s.add_party(Party::new(parties[1], "B").with_goals([NamedGoal::hard(
        "c-x implies b-x",
        Formula::implies(lit(2), lit(1)),
    )]));
    s.add_party(
        Party::new(parties[2], "C")
            .with_goals([NamedGoal::soft("forbid b-x", Formula::not(lit(1)))]),
    );
    let mut negs: BTreeMap<PartyId, Box<dyn Negotiator>> = BTreeMap::new();
    negs.insert(parties[0], Box::new(Stubborn));
    negs.insert(parties[1], Box::new(Stubborn));
    negs.insert(parties[2], Box::new(DropBlamedSoftGoals));
    let t3 = std::time::Instant::now();
    let first = run_negotiation(&mut s, &mut negs, 12).expect("3-party negotiation runs");
    let neg3_ms = t3.elapsed().as_secs_f64() * 1e3;
    // Fixpoint: negotiating again from the converged goal state must
    // agree immediately (one round, nothing revised).
    let second = run_negotiation(&mut s, &mut negs, 12).expect("fixpoint negotiation runs");
    row(
        t,
        "M1",
        "three-party",
        "round-robin convergence",
        format!(
            "{} after {} round(s) in {neg3_ms:.0} ms; re-run {} in {} round(s)",
            if first.success { "converged" } else { "stuck" },
            first.rounds,
            if second.success { "agreed" } else { "stuck" },
            second.rounds
        ),
        "converges; re-run is a 1-round fixpoint",
    );

    // BENCH_domains.json lands before any gate fires.
    let doc = Json::obj([
        ("schema", Json::str("muppet-bench-domains-v1")),
        (
            "linkerd",
            Json::obj([
                ("entry", Json::str(entry.name)),
                ("expected", Json::str(entry.expected.label())),
                ("domain", Json::str(&domain)),
                ("open_ms", Json::Num(open_ms)),
                ("platform_consistent", Json::Bool(platform_ok)),
                ("linkerd_consistent", Json::Bool(linkerd_ok)),
                ("reconcile_success", Json::Bool(rec_success)),
                ("reconcile_ms", Json::Num(rec_ms)),
                ("core_goals", Json::num(core_len as u64)),
                ("blames_both_admins", Json::Bool(blames_both)),
                ("negotiate_success", Json::Bool(neg_success)),
                ("negotiate_rounds", Json::num(neg_rounds)),
                ("negotiate_ms", Json::Num(neg_ms)),
            ]),
        ),
        (
            "three_party",
            Json::obj([
                ("success", Json::Bool(first.success)),
                ("rounds", Json::num(first.rounds as u64)),
                ("wall_ms", Json::Num(neg3_ms)),
                ("fixpoint_success", Json::Bool(second.success)),
                ("fixpoint_rounds", Json::num(second.rounds as u64)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write("BENCH_domains.json", doc.to_line() + "\n") {
        eprintln!("muppet-harness: cannot write BENCH_domains.json: {e}");
    }

    // Gates (after the bench file is on disk).
    assert_eq!(domain, "linkerd", "open_session must dispatch through the registry");
    assert!(platform_ok && linkerd_ok, "each party must be self-consistent");
    assert!(
        entry.expected.matches_success(rec_success),
        "daemon verdict must match the committed corpus label"
    );
    assert!(blames_both, "blame must name both administrators: {core_text}");
    assert!(neg_success, "soft Linkerd rows must negotiate to convergence");
    assert!(first.success, "3-party round-robin must converge");
    assert!(
        second.success && second.rounds == 1,
        "converged state must be a fixpoint (got {} round(s))",
        second.rounds
    );
}
