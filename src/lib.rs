//! # muppet-repro — workspace umbrella crate
//!
//! Re-exports the full Muppet reproduction stack so integration tests,
//! examples and the experiment harness can use one dependency. See the
//! individual crates for documentation:
//!
//! * [`muppet`] — the paper's contribution (envelopes, Algs. 1–3,
//!   conformance/negotiation workflows).
//! * [`muppet_mesh`] — the K8s/Istio microservices domain.
//! * [`muppet_goals`] — CSV goal tables and translation.
//! * [`muppet_solver`] / [`muppet_logic`] / [`muppet_sat`] — the
//!   model-finding stack.
//! * [`muppet_yaml`] — manifest ingestion.
//! * [`muppet_bench`] — scenario generation and harness helpers.

#![forbid(unsafe_code)]

pub use muppet;
pub use muppet_bench;
pub use muppet_goals;
pub use muppet_logic;
pub use muppet_mesh;
pub use muppet_sat;
pub use muppet_solver;
pub use muppet_yaml;
