#!/usr/bin/env bash
# The full local gate: everything CI runs, in the same order.
#
# Offline-friendly by design: the workspace has no registry
# dependencies (rand/proptest/criterion are vendored under
# third_party/), so `--offline` always works and is forced here to
# catch accidental registry deps early.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test -q --workspace --offline
# Daemon end-to-end: real sockets, 64 concurrent clients, randomized
# cache-soundness properties.
run cargo test -q --offline --test daemon --test daemon_cache_props
# Daemon bench lane: asserts the >= 10x cached-vs-cold speedup and
# emits BENCH_daemon.json / BENCH_e2e.json.
run cargo run --release --offline -q --bin muppet-harness -- d1
# Portfolio lane: differential properties (4-thread verdicts == the
# sequential ones), the D1/E2E harness slice at --threads 4, and the
# P1 bench which asserts byte-identical reconcile verdicts across
# thread counts and always emits BENCH_portfolio.json.
run cargo test -q --offline --test portfolio_properties
run cargo run --release --offline -q --bin muppet-harness -- --threads 4 d1 e1 e4
run cargo run --release --offline -q --bin muppet-harness -- p1
test -s BENCH_portfolio.json || { echo "BENCH_portfolio.json missing"; exit 1; }
# Observability lane: traced paper scenarios with per-phase breakdowns,
# span-schema validation of the trace ring, and the <= 2% disabled-
# tracing overhead gate — all asserted inside O1, which also emits
# BENCH_obs.json. The --trace-json sink must stream well-formed
# span events (one JSON object per closed span).
run cargo run --release --offline -q --bin muppet-harness -- --trace-json BENCH_trace.jsonl o1
test -s BENCH_obs.json || { echo "BENCH_obs.json missing"; exit 1; }
lines=$(wc -l < BENCH_trace.jsonl)
valid=$(grep -c '"name":.*"path":.*"depth":.*"start_us":.*"elapsed_us":.*"counters":.*"attrs":' BENCH_trace.jsonl || true)
if [ "$lines" -lt 1 ] || [ "$lines" -ne "$valid" ]; then
    echo "BENCH_trace.jsonl: only $valid of $lines lines match the span-event schema"
    exit 1
fi
# Scale lane (DESIGN.md §15): the committed scenario corpus end to end
# — smoke + paper tiers plus the headline 1000-service large entries,
# every verdict gated against its committed label, same-seed
# regeneration gated byte-identical, per-phase (ground/encode/search)
# timings always written to BENCH_scale.json before the gates fire.
# Set MUPPET_SCALE=full to also run the 2500-service and hard-tier
# entries (adds ~1 min).
run cargo test -q --offline --test scenario_props --test scenario_corpus
run cargo run --release --offline -q --bin muppet-harness -- s1
test -s BENCH_scale.json || { echo "BENCH_scale.json missing"; exit 1; }
# Incremental-engine lane: warm vs cold negotiation on the paper
# scenario — byte-identical verdicts/counter-offers, and the cold path
# must re-encode >= 3x more CNF groups. Emits BENCH_incremental.json.
run cargo run --release --offline -q --bin muppet-harness -- n1
test -s BENCH_incremental.json || { echo "BENCH_incremental.json missing"; exit 1; }
# Differential properties: warm == cold on negotiation + conformance.
run cargo test -q --offline --test incremental_diff
# Streaming-reconfiguration lane (DESIGN.md §16): differential
# proptests (warm StreamSession replay == cold snapshot solves, 1 and 4
# threads), then the W1 harness lane replaying a committed ≥200-delta
# edit stream against the cold oracle — byte-identical verdicts and a
# >= 5x amortized warm speedup, recorded in BENCH_stream.json (written
# before the gates fire, so trend lines survive a red run).
run cargo test -q --offline --test stream_props
run cargo run --release --offline -q --bin muppet-harness -- w1
test -s BENCH_stream.json || { echo "BENCH_stream.json missing"; exit 1; }
# Robustness lane (DESIGN.md §14): bounded admission, load shedding
# with retry hints, the slow-loris read timeout, graceful drain and the
# client retry path — first as deterministic integration tests, then as
# the R1 chaos harness with solver failpoints compiled in (injected
# exhaustion + worker panics). R1 gates on zero wrong verdicts vs the
# sequential oracle, full response accounting, at least one shed, and
# the drain deadline; it always emits BENCH_robustness.json.
run cargo test -q --offline --test daemon_overload
run cargo run --release --offline -q --features fault-inject --bin muppet-harness -- r1
test -s BENCH_robustness.json || { echo "BENCH_robustness.json missing"; exit 1; }
# SAT-kernel speed lane (DESIGN.md §17): differential kernel
# properties (core-guided == linear solve_target at 1 and 4 threads;
# inprocessing + the tiered clause DB invisible next to the flat
# baseline kernel), then the K1 harness lane — the hard-tier CNF
# corpus under the legacy pre-change kernel profile vs the tuned
# defaults (verdict parity on every entry, <= 0.8x wall on the gated
# refutation) and the committed minimal-edit scenario (core-guided
# solve_target >= 2x less solver work than linear, byte-identical
# canonical models). BENCH_kernel.json existence is checked before the
# perf numbers are trusted; the lane writes it before its gates fire.
run cargo test -q --offline -p muppet-solver --test kernel_props
run cargo run --release --offline -q --bin muppet-harness -- k1
test -s BENCH_kernel.json || { echo "BENCH_kernel.json missing"; exit 1; }
# ConfigDomain plugin lane (DESIGN.md §18): N-party differential gate
# (the generalized engine must stay byte-identical to the committed
# pre-refactor N=2 golden at 1 and 4 threads), N∈{2..5} round-robin
# order-invariance proptests, the Linkerd manifest round-trip /
# adversarial-input properties, then the M1 harness lane — the
# committed linkerd-shop scenario end to end through the daemon
# (registry dispatch, per-party consistency, blameable unsat verdict
# naming both admins, soft-row negotiation to convergence) and an N=3
# round-robin negotiation run to its fixpoint. M1 writes
# BENCH_domains.json before its gates fire.
run cargo test -q --offline --test nparty_differential --test nparty_props
run cargo test -q --offline -p muppet-domain
run cargo run --release --offline -q --bin muppet-harness -- m1
test -s BENCH_domains.json || { echo "BENCH_domains.json missing"; exit 1; }
# fault-inject is a non-default feature; make sure it keeps compiling.
run cargo build -q --offline -p muppet-solver --features fault-inject
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

echo "All checks passed."
