//! Deterministic RNG and run configuration for the proptest shim.

/// Run configuration. Only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over a string — used to derive a per-test seed from its path.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// xoshiro256++ generator seeded through SplitMix64.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        if span == 0 {
            // Full u64 range.
            return self.next_u64();
        }
        lo + self.below(span)
    }
}
