//! Value-generation strategies (generation-only, no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: `generate` draws one
/// value directly from the RNG, and failures are reported un-shrunk.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Build recursive structures: each of `depth` layers flips between
    /// staying at the shallower strategy and applying `f` once more, so
    /// generated values mix depths up to `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = f(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are interpreted as (a small subset of) regexes.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
    (A, B, C, D, E, G, H)
    (A, B, C, D, E, G, H, I)
    (A, B, C, D, E, G, H, I, J)
    (A, B, C, D, E, G, H, I, J, K)
    (A, B, C, D, E, G, H, I, J, K, L)
    (A, B, C, D, E, G, H, I, J, K, L, M)
}
