//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides a deterministic, generation-only implementation of the
//! proptest API surface this workspace uses: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`,
//! `prop_oneof!`, `Just`, `any::<T>()`, `prop::collection::vec`,
//! tuple/range strategies, and a small regex-subset string generator.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports the generated inputs via the
//!   panic message instead of a minimized counterexample;
//! - no persistence: `.proptest-regressions` files are ignored;
//! - seeds derive from the test's module path and name, so runs are
//!   fully deterministic across processes.

pub mod strategy;
pub mod arbitrary;
pub mod collection;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a zero-argument test that runs the body over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
