//! `any::<T>()` — canonical strategies for common types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        // ~25% None, matching real proptest's default weighting spirit.
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(9) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}
