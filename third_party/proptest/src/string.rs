//! Tiny regex-subset string generator backing `&str` strategies.
//!
//! Supported syntax: literal characters, `.`, escapes (`\n`, `\t`,
//! `\r`, `\\`, `\-`, `\]`, ...), character classes with ranges
//! (`[a-z0-9_-]`), and the quantifiers `{m}`, `{m,n}`, `{m,}`, `*`,
//! `+`, `?`. Anything else (alternation, groups, anchors) panics at
//! generation time — add support here if a test needs it.

use crate::test_runner::TestRng;

struct Elem {
    set: Vec<char>,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let elems = parse(pattern)
        .unwrap_or_else(|e| panic!("unsupported regex {pattern:?} in proptest shim: {e}"));
    let mut out = String::new();
    for elem in &elems {
        let n = rng.range_inclusive(elem.min as u64, elem.max as u64) as usize;
        for _ in 0..n {
            out.push(elem.set[rng.below(elem.set.len() as u64) as usize]);
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Result<Vec<Elem>, String> {
    let mut chars = pattern.chars().peekable();
    let mut elems = Vec::new();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => vec![unescape(chars.next().ok_or("dangling escape")?)],
            '.' => (' '..='~').collect(),
            '(' | ')' | '|' | '^' | '$' | '{' | '*' | '+' | '?' => {
                return Err(format!("unsupported metacharacter {c:?}"));
            }
            other => vec![other],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                parse_quantifier(&mut chars)?
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        if set.is_empty() {
            return Err("empty character class".into());
        }
        elems.push(Elem { set, min, max });
    }
    Ok(elems)
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<Vec<char>, String> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next().ok_or("unterminated character class")?;
        match c {
            ']' => {
                if let Some(p) = prev {
                    out.push(p);
                }
                return Ok(out);
            }
            '\\' => {
                if let Some(p) = prev.take() {
                    out.push(p);
                }
                prev = Some(unescape(chars.next().ok_or("dangling escape in class")?));
            }
            '-' => match (prev.take(), chars.peek().copied()) {
                (Some(lo), Some(hi_raw)) if hi_raw != ']' => {
                    chars.next();
                    let hi = if hi_raw == '\\' {
                        unescape(chars.next().ok_or("dangling escape in class")?)
                    } else {
                        hi_raw
                    };
                    if lo > hi {
                        return Err(format!("inverted range {lo:?}-{hi:?}"));
                    }
                    for u in lo as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(u) {
                            out.push(ch);
                        }
                    }
                }
                (p, _) => {
                    // Literal '-' (at class start or end).
                    if let Some(p) = p {
                        out.push(p);
                    }
                    out.push('-');
                }
            },
            other => {
                if let Some(p) = prev.take() {
                    out.push(p);
                }
                prev = Some(other);
            }
        }
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), String> {
    let mut min_digits = String::new();
    let mut max_digits: Option<String> = None;
    loop {
        let c = chars.next().ok_or("unterminated quantifier")?;
        match c {
            '}' => break,
            ',' if max_digits.is_none() => max_digits = Some(String::new()),
            d if d.is_ascii_digit() => match &mut max_digits {
                Some(s) => s.push(d),
                None => min_digits.push(d),
            },
            other => return Err(format!("bad quantifier character {other:?}")),
        }
    }
    let min: usize = min_digits.parse().map_err(|_| "bad quantifier minimum")?;
    let max = match max_digits {
        None => min,
        Some(s) if s.is_empty() => min + 8,
        Some(s) => s.parse().map_err(|_| "bad quantifier maximum")?,
    };
    if max < min {
        return Err("quantifier maximum below minimum".into());
    }
    Ok((min, max))
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_used_by_the_workspace() {
        let mut rng = TestRng::from_seed(99);
        for _ in 0..200 {
            let s = generate("[ -~\n]{0,300}", &mut rng);
            assert!(s.len() <= 300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));

            let s = generate("[a-z][a-z0-9_-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));

            let s = generate("[A-Za-z]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }
}
