//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`). It performs a
//! simple warmup + timed-iterations measurement and prints the median
//! per-iteration time — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Upper bound on measured iterations per benchmark (keeps `cargo
/// bench` runtimes sane without criterion's adaptive sampling).
const MAX_ITERS: u64 = 30;
/// Soft time budget per benchmark.
const TIME_BUDGET: Duration = Duration::from_secs(3);

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed-size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration, then timed iterations under a budget.
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..MAX_ITERS {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{label:<60} median {:>10.3} ms over {} iters",
        median.as_secs_f64() * 1e3,
        b.samples.len()
    );
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
