//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides the (small) slice of the `rand` 0.10 API the workspace
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `RngExt` extension trait with `random_range` / `random_bool`.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! well-studied, deterministic construction that is more than adequate
//! for test-case and scenario generation (it makes no cryptographic
//! claims, and neither do the call sites).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods for drawing typed random values.
pub trait RngExt: RngCore {
    /// Uniform sample from `range`. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → value in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3i64..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(1usize..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
